//! Bounded augmenting-walk maintenance of the integral allocation.
//!
//! The Appendix-B boosting argument says an allocation with no augmenting
//! walk of length `≤ 2k−1` has size `≥ k/(k+1) · OPT`. The static
//! pipeline establishes that certificate once (`core::boosting`); this
//! module maintains it under updates:
//!
//! * [`Matching::try_augment_from_left`] — forward BFS from a newly free
//!   left vertex, exploring at most `k−1` matched hops (the `O(τ)`-ball
//!   around the update site).
//! * [`Matching::reclaim_into`] — backward BFS from freshly freed right
//!   capacity, pulling in a free left vertex through an alternating walk
//!   of the same bounded length.
//! * [`Matching::sweep`] — repeated passes of the forward search over all
//!   free left vertices until a pass augments nothing. The final clean
//!   pass certifies the walk-freeness invariant against one fixed
//!   matching, restoring the `k/(k+1)` guarantee exactly.
//!
//! All searches run on [`DeltaGraph`] adjacency directly — no CSR
//! materialization — and reuse stamped visit buffers so repeated calls
//! allocate nothing.
//!
//! # Disjoint parallel repairs
//!
//! The searches are written against two separable pieces of state: the
//! per-vertex match cells (`MatchSlots`) and a per-caller scratch space
//! (`SearchScratch`). The serial [`Matching`] methods borrow both from
//! `&mut self`; the sharded serve loop's threaded wave executor instead
//! shares one `MatchSlots` across worker threads (each with its own
//! scratch) to repair *footprint-disjoint* updates concurrently. The
//! aliasing proof is exactly the conflict scheduler's footprint argument:
//! a bounded search from an update site reads and writes match cells only
//! of rights inside its footprint and of lefts whose entire neighborhood
//! lies inside it, so vertex-disjoint footprints touch disjoint cells.
//! Spelled out: a forward search expands rights hop by hop from the
//! update's seeds and flips edges only along the discovered walk; the
//! only *foreign* cell it ever reads is the mate of a left adjacent to an
//! expanded right — and that expanded right witnesses the read from
//! *inside* the footprint, so any concurrent writer of that left's cell
//! would have to own the same right, contradicting disjointness. Hence
//! the unsynchronized shared access in `MatchSlots` never races, and
//! same-wave repairs commute: no repair can observe another's writes, so
//! every interleaving — including the serial one — produces the identical
//! engine state. That commutation is what the sharded ≡ serial property
//! (`tests/properties.rs`) and the thread-count-independence tests pin.
//!
//! # Example
//!
//! ```
//! use sparse_alloc_dynamic::Matching;
//! use sparse_alloc_graph::{BipartiteBuilder, DeltaGraph};
//!
//! // u0 ~ {v0, v1}, u1 ~ {v0}: a greedy u0–v0 match blocks u1 until a
//! // length-3 augmenting walk re-routes u0 to v1.
//! let mut b = BipartiteBuilder::new(2, 2);
//! b.add_edge(0, 0);
//! b.add_edge(0, 1);
//! b.add_edge(1, 0);
//! let dg = DeltaGraph::new(b.build_with_uniform_capacity(1).unwrap());
//!
//! let mut m = Matching::new(&dg);
//! assert!(m.try_augment_from_left(&dg, 0, 1, usize::MAX)); // u0 – v0
//! assert!(!m.try_augment_from_left(&dg, 1, 1, usize::MAX), "k = 1 forbids the walk");
//! assert_eq!(m.sweep(&dg, 2), 1, "k = 2 re-routes u0 and pulls u1 in");
//! assert_eq!(m.mate(0), Some(1));
//! assert_eq!(m.mate(1), Some(0));
//! m.validate(&dg).unwrap();
//! ```

use std::cell::UnsafeCell;
use std::collections::VecDeque;

use sparse_alloc_graph::{Assignment, DeltaGraph, LeftId, RightId};

/// The adjacency a bounded walk search needs, abstracted from the full
/// [`DeltaGraph`]: neighbor iteration on both sides plus right
/// capacities.
///
/// The serial engine searches the live graph directly. A p2p shard
/// worker searches a *shipped footprint slice* instead — the few rights
/// and lefts a wave's ball can reach, extracted by the coordinator and
/// sent over the wire — so the searches are generic over the topology
/// they walk. The footprint argument (module docs) is what makes the
/// slice sufficient: a bounded repair never reads adjacency outside its
/// footprint's interior plus the lefts adjacent to it.
pub(crate) trait WalkTopology {
    /// Right neighbors of left vertex `u`, in the live graph's
    /// deterministic iteration order (walk discovery order — and hence
    /// the repaired state — depends on it).
    fn left_neighbors(&self, u: LeftId) -> impl Iterator<Item = RightId> + '_;
    /// Left neighbors of right vertex `v`, same order contract.
    fn right_neighbors(&self, v: RightId) -> impl Iterator<Item = LeftId> + '_;
    /// Capacity of right vertex `v`.
    fn capacity(&self, v: RightId) -> u64;
}

impl WalkTopology for DeltaGraph {
    fn left_neighbors(&self, u: LeftId) -> impl Iterator<Item = RightId> + '_ {
        self.left_neighbors_iter(u)
    }
    fn right_neighbors(&self, v: RightId) -> impl Iterator<Item = LeftId> + '_ {
        self.right_neighbors_iter(v)
    }
    fn capacity(&self, v: RightId) -> u64 {
        // Inherent method, not trait recursion.
        DeltaGraph::capacity(self, v)
    }
}

/// Reusable per-caller search state: stamped visit buffers, BFS queues,
/// and the observable outputs of the most recent search (walk, expansion
/// counter). One instance per concurrent searcher; buffers grow once per
/// vertex-set extension and a fresh stamp invalidates them in `O(1)`.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchScratch {
    stamp: u64,
    seen_left: Vec<u64>,
    seen_right: Vec<u64>,
    depth_left: Vec<u32>,
    parent_left: Vec<(LeftId, RightId)>,
    parent_right: Vec<(LeftId, RightId)>,
    queue_left: VecDeque<LeftId>,
    queue_right: VecDeque<(RightId, u32)>,
    /// Right vertices touched by the most recent successful flip (both the
    /// old and the new side of every flipped pair; may contain duplicates).
    pub(crate) last_walk: Vec<RightId>,
    /// Lifetime count of BFS right-vertex expansions across all searches.
    pub(crate) expansions: u64,
    /// Lifetime count of searches abandoned by the visit cap — each one a
    /// walk the eager path gave up on and deferred to the epoch sweep, so
    /// the rate measures escalation pressure on the serving hot path.
    pub(crate) cap_hits: u64,
}

impl SearchScratch {
    /// Grow the per-vertex buffers to cover the given vertex counts.
    pub(crate) fn ensure(&mut self, n_left: usize, n_right: usize) {
        if self.seen_left.len() < n_left {
            self.seen_left.resize(n_left, 0);
            self.depth_left.resize(n_left, 0);
            self.parent_left.resize(n_left, (0, 0));
        }
        if self.seen_right.len() < n_right {
            self.seen_right.resize(n_right, 0);
            self.parent_right.resize(n_right, (0, 0));
        }
    }
}

/// A shared-mutable view of the matching's per-vertex cells (`mate` and
/// the reverse index `matched_at`), allowing concurrent access to
/// *vertex-disjoint* regions from multiple threads.
///
/// # Safety contract
///
/// All methods read or write individual cells without synchronization.
/// This is sound only under the wave executor's footprint discipline:
/// while the view is shared across threads, every concurrent user must
/// confine its reads and writes to the match cells of rights inside its
/// own (pairwise vertex-disjoint) footprint and of lefts adjacent to its
/// footprint's interior — which the radius slack of
/// [`crate::batch::schedule`] guarantees covers every cell a bounded
/// repair can touch. The serial [`Matching`] methods uphold the contract
/// trivially: they build the view from `&mut self`, so there is exactly
/// one user.
pub(crate) struct MatchSlots<'a> {
    mate: &'a [UnsafeCell<Option<RightId>>],
    matched_at: &'a [UnsafeCell<Vec<LeftId>>],
}

// SAFETY: see the type-level contract — concurrent users touch disjoint
// cells, so unsynchronized access never races.
unsafe impl Sync for MatchSlots<'_> {}

/// Reinterpret a uniquely borrowed slice as shared cells (`UnsafeCell<T>`
/// has the same layout as `T`).
fn cells<T>(s: &mut [T]) -> &[UnsafeCell<T>] {
    // SAFETY: we hold the unique borrow, and the transparent wrapper
    // preserves layout.
    unsafe { &*(s as *mut [T] as *const [UnsafeCell<T>]) }
}

impl<'a> MatchSlots<'a> {
    /// A view over caller-owned match arrays — how a p2p shard worker
    /// runs the searches against its *local* dense mirror of the wave's
    /// slice instead of a [`Matching`]. The unique borrows make the
    /// single-user case of the contract hold by construction.
    pub(crate) fn over(
        mate: &'a mut [Option<RightId>],
        matched_at: &'a mut [Vec<LeftId>],
    ) -> MatchSlots<'a> {
        MatchSlots {
            mate: cells(mate),
            matched_at: cells(matched_at),
        }
    }

    /// The match of left vertex `u` (`None` for unmatched or out-of-range).
    #[inline]
    pub(crate) fn mate(&self, u: LeftId) -> Option<RightId> {
        // SAFETY: cell access per the type contract.
        self.mate.get(u as usize).and_then(|c| unsafe { *c.get() })
    }

    /// Number of matched partners of right vertex `v`.
    #[inline]
    pub(crate) fn load(&self, v: RightId) -> u64 {
        // SAFETY: cell access per the type contract.
        unsafe { (*self.matched_at[v as usize].get()).len() as u64 }
    }

    /// Residual capacity of `v` on the walked topology (0 if overfilled).
    #[inline]
    pub(crate) fn residual<T: WalkTopology + ?Sized>(&self, dg: &T, v: RightId) -> u64 {
        dg.capacity(v).saturating_sub(self.load(v))
    }

    #[inline]
    fn matched_count(&self, v: RightId) -> usize {
        // SAFETY: cell access per the type contract.
        unsafe { (*self.matched_at[v as usize].get()).len() }
    }

    #[inline]
    fn matched_nth(&self, v: RightId, i: usize) -> LeftId {
        // SAFETY: cell access per the type contract.
        unsafe { (&*self.matched_at[v as usize].get())[i] }
    }

    /// Match `u` to `v`, releasing any previous match of `u` first.
    /// Returns `true` iff `u` was free (i.e. the matching grew).
    pub(crate) fn set_mate(&self, u: LeftId, v: RightId) -> bool {
        let was_free = self.unmatch(u).is_none();
        // SAFETY: cell access per the type contract.
        unsafe {
            *self.mate[u as usize].get() = Some(v);
            (*self.matched_at[v as usize].get()).push(u);
        }
        was_free
    }

    /// Unmatch `u`, returning its former partner.
    pub(crate) fn unmatch(&self, u: LeftId) -> Option<RightId> {
        // SAFETY: cell access per the type contract.
        unsafe {
            let old = (*self.mate[u as usize].get()).take()?;
            let at = &mut *self.matched_at[old as usize].get();
            let pos = at.iter().position(|&x| x == u).expect("u was matched at v");
            at.swap_remove(pos);
            Some(old)
        }
    }

    /// Evict one matched partner of `v` (most recently matched first),
    /// returning it.
    pub(crate) fn evict_one(&self, v: RightId) -> Option<LeftId> {
        // SAFETY: cell access per the type contract.
        let u = unsafe { (*self.matched_at[v as usize].get()).last().copied() }?;
        self.unmatch(u);
        Some(u)
    }
}

/// Forward search: try to match free left vertex `u` through an
/// augmenting walk of length `≤ 2k−1` (at most `k−1` matched hops).
/// Returns whether the matching grew (by exactly one).
///
/// `visit_cap` bounds the number of right vertices the search may expand
/// before giving up — the eager per-update repairs pass a small cap (a
/// failed unbounded search costs a whole `O(deg^k)` ball), while
/// [`Matching::sweep`] passes `usize::MAX` because the certificate needs
/// exact searches.
pub(crate) fn augment_from_left<T: WalkTopology + ?Sized>(
    slots: &MatchSlots<'_>,
    scratch: &mut SearchScratch,
    dg: &T,
    u: LeftId,
    k: usize,
    visit_cap: usize,
) -> bool {
    assert!(k >= 1, "walk budget k ≥ 1");
    if slots.mate(u).is_some() {
        return false;
    }
    let budget = (k - 1) as u32;
    let mut visits = 0usize;
    scratch.stamp += 1;
    let stamp = scratch.stamp;
    scratch.queue_left.clear();
    scratch.seen_left[u as usize] = stamp;
    scratch.depth_left[u as usize] = 0;
    scratch.queue_left.push_back(u);

    while let Some(x) = scratch.queue_left.pop_front() {
        let d = scratch.depth_left[x as usize];
        // x's mate is loop-invariant: the scan flips nothing until it
        // finds residual capacity, and then it returns.
        let mx = slots.mate(x);
        for w in dg.left_neighbors(x) {
            if mx == Some(w) {
                continue; // the matched edge of x is not traversable here
            }
            if slots.residual(dg, w) > 0 {
                // Flip the walk u ⇝ x — w.
                scratch.last_walk.clear();
                let mut cur = x;
                let mut assign = w;
                loop {
                    let old = slots.mate(cur);
                    scratch.last_walk.push(assign);
                    slots.set_mate(cur, assign);
                    if cur == u {
                        break;
                    }
                    let (prev, via) = scratch.parent_left[cur as usize];
                    debug_assert_eq!(old, Some(via));
                    assign = via;
                    cur = prev;
                }
                return true;
            }
            if d < budget && scratch.seen_right[w as usize] != stamp {
                scratch.seen_right[w as usize] = stamp;
                visits += 1;
                scratch.expansions += 1;
                if visits > visit_cap {
                    scratch.cap_hits += 1;
                    return false;
                }
                for i in 0..slots.matched_count(w) {
                    let x2 = slots.matched_nth(w, i);
                    if scratch.seen_left[x2 as usize] != stamp {
                        scratch.seen_left[x2 as usize] = stamp;
                        scratch.depth_left[x2 as usize] = d + 1;
                        scratch.parent_left[x2 as usize] = (x, w);
                        scratch.queue_left.push_back(x2);
                    }
                }
            }
        }
    }
    false
}

/// Backward search: right vertex `v` has residual capacity — pull in a
/// free left vertex through an augmenting walk of length `≤ 2k−1` ending
/// at `v`. Returns whether the matching grew (by exactly one).
///
/// `visit_cap` bounds the expanded right vertices, as in
/// [`augment_from_left`].
pub(crate) fn reclaim_into<T: WalkTopology + ?Sized>(
    slots: &MatchSlots<'_>,
    scratch: &mut SearchScratch,
    dg: &T,
    v: RightId,
    k: usize,
    visit_cap: usize,
) -> bool {
    assert!(k >= 1, "walk budget k ≥ 1");
    if slots.residual(dg, v) == 0 {
        return false;
    }
    let budget = (k - 1) as u32;
    let mut visits = 0usize;
    scratch.stamp += 1;
    let stamp = scratch.stamp;
    scratch.queue_right.clear();
    scratch.seen_right[v as usize] = stamp;
    scratch.queue_right.push_back((v, 0u32));

    while let Some((w, d)) = scratch.queue_right.pop_front() {
        visits += 1;
        scratch.expansions += 1;
        if visits > visit_cap {
            scratch.cap_hits += 1;
            return false;
        }
        for x in dg.right_neighbors(w) {
            match slots.mate(x) {
                Some(mw) if mw == w => continue, // matched edge: not traversable
                None => {
                    // Found a free left: flip x — w ⇝ v.
                    scratch.last_walk.clear();
                    scratch.last_walk.push(w);
                    slots.set_mate(x, w);
                    let mut cur = w;
                    while cur != v {
                        let (y, next) = scratch.parent_right[cur as usize];
                        debug_assert_eq!(slots.mate(y), Some(cur));
                        scratch.last_walk.push(next);
                        slots.set_mate(y, next);
                        cur = next;
                    }
                    return true;
                }
                Some(w2) => {
                    if d < budget && scratch.seen_right[w2 as usize] != stamp {
                        scratch.seen_right[w2 as usize] = stamp;
                        scratch.parent_right[w2 as usize] = (x, w);
                        scratch.queue_right.push_back((w2, d + 1));
                    }
                }
            }
        }
    }
    false
}

/// The serializable state of a [`Matching`]: what a warm-restart snapshot
/// persists. `matched_at` keeps its per-right *order* — evictions pop the
/// most recently matched left, so the order is behaviorally observable
/// and a restore that lost it would diverge from the uninterrupted run.
/// The expansion counter rides along so restored stats stay monotone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MatchingState {
    pub(crate) mate: Vec<Option<RightId>>,
    pub(crate) matched_at: Vec<Vec<LeftId>>,
    pub(crate) expansions: u64,
}

/// The maintained integral allocation plus one searcher's scratch space.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Per-left match (grows with arrivals; departed slots hold `None`).
    mate: Vec<Option<RightId>>,
    /// Matched left partners per right vertex.
    matched_at: Vec<Vec<LeftId>>,
    size: usize,
    scratch: SearchScratch,
}

impl Matching {
    /// The empty matching on the live graph.
    pub fn new(dg: &DeltaGraph) -> Self {
        let mut m = Matching {
            mate: Vec::new(),
            matched_at: vec![Vec::new(); dg.n_right()],
            size: 0,
            scratch: SearchScratch::default(),
        };
        m.scratch.ensure(0, dg.n_right());
        m.ensure_left(dg.n_left());
        m
    }

    /// Adopt an assignment produced by the static pipeline.
    ///
    /// # Panics
    /// Panics if the assignment references a non-edge or overfills a
    /// capacity of the live graph.
    pub fn from_assignment(dg: &DeltaGraph, a: &Assignment) -> Self {
        let mut m = Matching::new(dg);
        for (u, &mv) in a.mate.iter().enumerate() {
            if let Some(v) = mv {
                assert!(dg.has_edge(u as u32, v), "({u}, {v}) is not a live edge");
                m.set_mate(u as u32, v);
            }
        }
        for v in 0..dg.n_right() as u32 {
            assert!(
                m.load(v) <= dg.capacity(v),
                "right {v} overfilled by the adopted assignment"
            );
        }
        m
    }

    /// The per-left match array (checkpointing reads it in place).
    pub(crate) fn mate_slice(&self) -> &[Option<RightId>] {
        &self.mate
    }

    /// The per-right matched-partner lists, order included (checkpointing
    /// reads them in place).
    pub(crate) fn matched_at_slice(&self) -> &[Vec<LeftId>] {
        &self.matched_at
    }

    /// Rebuild a matching from exported state, re-validating feasibility
    /// against the live graph (snapshot payloads are external input): the
    /// derived size is recounted, and [`Matching::validate`] checks that
    /// every matched pair is a live edge, the reverse index is exactly
    /// the forward map transposed, and no capacity is overfilled.
    pub(crate) fn from_state(dg: &DeltaGraph, st: MatchingState) -> Result<Matching, String> {
        if st.matched_at.len() != dg.n_right() {
            return Err(format!(
                "matching indexes {} right vertices, live graph has {}",
                st.matched_at.len(),
                dg.n_right()
            ));
        }
        if st.mate.len() > dg.n_left() {
            return Err(format!(
                "matching covers {} left vertices, live graph has {}",
                st.mate.len(),
                dg.n_left()
            ));
        }
        let size = st.mate.iter().filter(|m| m.is_some()).count();
        let mut m = Matching {
            mate: st.mate,
            matched_at: st.matched_at,
            size,
            scratch: SearchScratch {
                expansions: st.expansions,
                ..SearchScratch::default()
            },
        };
        m.ensure_left(dg.n_left());
        m.validate(dg)?;
        Ok(m)
    }

    /// Split into the shared match cells and the owned scratch space. The
    /// exclusive borrow of `self` makes the single-user case of the
    /// [`MatchSlots`] contract hold by construction.
    pub(crate) fn split(&mut self) -> (MatchSlots<'_>, &mut SearchScratch) {
        (
            MatchSlots {
                mate: cells(&mut self.mate),
                matched_at: cells(&mut self.matched_at),
            },
            &mut self.scratch,
        )
    }

    /// The shared match cells alone (threaded wave execution: workers
    /// bring their own [`SearchScratch`]). The caller takes over the
    /// [`MatchSlots`] disjointness contract.
    pub(crate) fn slots(&mut self) -> MatchSlots<'_> {
        MatchSlots {
            mate: cells(&mut self.mate),
            matched_at: cells(&mut self.matched_at),
        }
    }

    /// Grow the per-left arrays to cover `n_left` vertices.
    pub fn ensure_left(&mut self, n_left: usize) {
        if self.mate.len() < n_left {
            self.mate.resize(n_left, None);
        }
        self.scratch.ensure(n_left, self.matched_at.len());
    }

    /// Cardinality `|M|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The match of left vertex `u` (`None` for unmatched or out-of-range).
    #[inline]
    pub fn mate(&self, u: LeftId) -> Option<RightId> {
        self.mate.get(u as usize).copied().flatten()
    }

    /// Number of matched partners of right vertex `v`.
    #[inline]
    pub fn load(&self, v: RightId) -> u64 {
        self.matched_at[v as usize].len() as u64
    }

    /// Residual capacity of `v` on the live graph (0 if overfilled).
    #[inline]
    pub fn residual(&self, dg: &DeltaGraph, v: RightId) -> u64 {
        dg.capacity(v).saturating_sub(self.load(v))
    }

    /// Right vertices touched by the most recent successful augmenting
    /// flip — every right an edge was flipped onto *or* off of, so a
    /// change observer (dirty-component tracking, cross-shard handoff
    /// accounting) sees the full perturbed region. Overwritten by the next
    /// successful search; may contain duplicates.
    #[inline]
    pub fn last_walk(&self) -> &[RightId] {
        &self.scratch.last_walk
    }

    /// Lifetime count of BFS right-vertex expansions across all searches
    /// (eager repairs and sweeps alike). Monotone; sample before/after a
    /// phase to measure its search work.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.scratch.expansions
    }

    /// Lifetime count of searches the visit cap cut off before they found
    /// a walk (deferred to the epoch sweep). Monotone, like
    /// [`Matching::expansions`].
    #[inline]
    pub fn cap_hits(&self) -> u64 {
        self.scratch.cap_hits
    }

    /// Fold a threaded wave's deferred effects into the serial state: the
    /// net matching growth and the workers' search counters.
    pub(crate) fn absorb_wave(&mut self, size_delta: i64, expansions: u64, cap_hits: u64) {
        self.size = (self.size as i64 + size_delta) as usize;
        self.scratch.expansions += expansions;
        self.scratch.cap_hits += cap_hits;
    }

    /// Overwrite left `u`'s match cell with a remotely computed value.
    /// Raw replay: `size` is *not* adjusted — the caller absorbs the
    /// wave's net `size_delta` separately ([`Matching::absorb_wave`]),
    /// exactly like the threaded wave executor.
    pub(crate) fn replay_left(&mut self, u: LeftId, mate: Option<RightId>) {
        self.ensure_left(u as usize + 1);
        self.mate[u as usize] = mate;
    }

    /// Overwrite right `v`'s matched-partner list, **order included** —
    /// eviction pops the most recently matched left, so replaying a
    /// worker's list out of order would diverge from the run that
    /// computed it.
    pub(crate) fn replay_right(&mut self, v: RightId, list: Vec<LeftId>) {
        self.matched_at[v as usize] = list;
    }

    /// Export as a plain [`Assignment`].
    pub fn assignment(&self) -> Assignment {
        Assignment {
            mate: self.mate.clone(),
        }
    }

    /// Unmatch `u`, returning its former partner.
    pub fn unmatch(&mut self, u: LeftId) -> Option<RightId> {
        let old = self.slots().unmatch(u)?;
        self.size -= 1;
        Some(old)
    }

    /// Evict one matched partner of `v` (most recently matched first),
    /// returning it. Used when a capacity decrease overfills `v`.
    pub fn evict_one(&mut self, v: RightId) -> Option<LeftId> {
        let u = self.slots().evict_one(v)?;
        self.size -= 1;
        Some(u)
    }

    fn set_mate(&mut self, u: LeftId, v: RightId) {
        if self.slots().set_mate(u, v) {
            self.size += 1;
        }
    }

    /// Forward search from free left vertex `u`: try to match it through
    /// an augmenting walk of length `≤ 2k−1`, expanding at most `visit_cap`
    /// right vertices. Returns whether the matching grew.
    pub fn try_augment_from_left(
        &mut self,
        dg: &DeltaGraph,
        u: LeftId,
        k: usize,
        visit_cap: usize,
    ) -> bool {
        self.ensure_left(dg.n_left());
        let (slots, scratch) = self.split();
        let grew = augment_from_left(&slots, scratch, dg, u, k, visit_cap);
        if grew {
            self.size += 1;
        }
        grew
    }

    /// Backward search: right vertex `v` has residual capacity — pull in
    /// a free left vertex through an augmenting walk of length `≤ 2k−1`,
    /// expanding at most `visit_cap` rights. Returns whether the matching
    /// grew.
    pub fn reclaim_into(
        &mut self,
        dg: &DeltaGraph,
        v: RightId,
        k: usize,
        visit_cap: usize,
    ) -> bool {
        self.ensure_left(dg.n_left());
        let (slots, scratch) = self.split();
        let grew = reclaim_into(&slots, scratch, dg, v, k, visit_cap);
        if grew {
            self.size += 1;
        }
        grew
    }

    /// Restore the `≤ 2k−1` walk-freeness certificate globally: repeat
    /// passes of [`Matching::try_augment_from_left`] over all free left
    /// vertices until a pass augments nothing. The final (augmenting-free)
    /// pass certifies every free vertex against the *same* matching, so on
    /// return the allocation has size `≥ k/(k+1) · OPT` on the live graph.
    /// Returns the number of augmentations performed.
    pub fn sweep(&mut self, dg: &DeltaGraph, k: usize) -> usize {
        self.ensure_left(dg.n_left());
        let mut total = 0usize;
        loop {
            let mut progressed = 0usize;
            for u in 0..dg.n_left() as u32 {
                // The mate check is the only per-vertex work for matched
                // vertices; a free degree-0 vertex costs one empty BFS.
                // Searches are uncapped: the certificate must be exact.
                if self.mate[u as usize].is_none()
                    && self.try_augment_from_left(dg, u, k, usize::MAX)
                {
                    progressed += 1;
                }
            }
            total += progressed;
            if progressed == 0 {
                return total;
            }
        }
    }

    /// Feasibility check against the live graph (used by tests and the
    /// serve façade's debug assertions).
    pub fn validate(&self, dg: &DeltaGraph) -> Result<(), String> {
        let mut size = 0usize;
        for (u, &mv) in self.mate.iter().enumerate() {
            if let Some(v) = mv {
                size += 1;
                if !dg.has_edge(u as u32, v) {
                    return Err(format!("matched pair ({u}, {v}) is not a live edge"));
                }
                if !self.matched_at[v as usize].contains(&(u as u32)) {
                    return Err(format!("reverse index missing ({u}, {v})"));
                }
            }
        }
        if size != self.size {
            return Err(format!("size {} but {size} matched", self.size));
        }
        let indexed: usize = self.matched_at.iter().map(Vec::len).sum();
        if indexed != size {
            return Err(format!("reverse index holds {indexed} of {size}"));
        }
        for v in 0..dg.n_right() as u32 {
            if self.load(v) > dg.capacity(v) {
                return Err(format!(
                    "right {v} load {} exceeds capacity {}",
                    self.load(v),
                    dg.capacity(v)
                ));
            }
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};
    use sparse_alloc_graph::BipartiteBuilder;

    fn trap() -> DeltaGraph {
        // u0 ~ {v0, v1}, u1 ~ {v0}: matching u0–v0 blocks u1 until a
        // length-3 walk re-routes u0 to v1.
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        DeltaGraph::new(b.build_with_uniform_capacity(1).unwrap())
    }

    #[test]
    fn forward_search_respects_the_budget() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        assert!(m.try_augment_from_left(&dg, 0, 1, usize::MAX));
        assert_eq!(m.mate(0), Some(0));
        // k = 1 forbids the length-3 walk; k = 2 allows it.
        assert!(!m.try_augment_from_left(&dg, 1, 1, usize::MAX));
        assert!(m.try_augment_from_left(&dg, 1, 2, usize::MAX));
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(1), Some(0));
        m.validate(&dg).unwrap();
    }

    #[test]
    fn backward_search_pulls_through_alternating_walks() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        // Match u0–v0 by hand; u1 stays free. Freeing capacity at v1 must
        // pull u1 in through the walk u1 – v0 – u0 – v1.
        m.set_mate(0, 0);
        assert!(
            !m.reclaim_into(&dg, 1, 1, usize::MAX),
            "k = 1 cannot re-route"
        );
        assert!(m.reclaim_into(&dg, 1, 2, usize::MAX));
        assert_eq!(m.size(), 2);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(1), Some(0));
        m.validate(&dg).unwrap();
    }

    #[test]
    fn sweep_reaches_the_k_over_k_plus_one_bound() {
        for seed in 0..4u64 {
            let g = union_of_spanning_trees(60, 40, 3, 2, seed).graph;
            let opt = opt_value(&g);
            let dg = DeltaGraph::new(g);
            for k in [1usize, 2, 4, 8] {
                let mut m = Matching::new(&dg);
                m.sweep(&dg, k);
                m.validate(&dg).unwrap();
                let bound = (k as f64) / (k as f64 + 1.0) * opt as f64;
                assert!(
                    m.size() as f64 >= bound - 1e-9,
                    "seed {seed} k {k}: {} < {bound} (OPT {opt})",
                    m.size()
                );
            }
        }
    }

    #[test]
    fn large_budget_sweep_is_optimal() {
        for seed in 0..3u64 {
            let g = random_bipartite(50, 30, 220, 3, seed).graph;
            let opt = opt_value(&g);
            let dg = DeltaGraph::new(g);
            let mut m = Matching::new(&dg);
            m.sweep(&dg, 1_000);
            assert_eq!(m.size() as u64, opt, "seed {seed}");
            m.validate(&dg).unwrap();
        }
    }

    #[test]
    fn last_walk_records_both_sides_of_every_flip() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        assert!(m.try_augment_from_left(&dg, 0, 1, usize::MAX));
        assert_eq!(m.last_walk(), &[0], "length-1 walk touches one right");
        // The length-3 walk re-routes u0 from v0 to v1: both rights flip.
        assert!(m.try_augment_from_left(&dg, 1, 2, usize::MAX));
        let mut w = m.last_walk().to_vec();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w, vec![0, 1]);

        // Backward search records the full alternating walk too.
        let dg = trap();
        let mut m = Matching::new(&dg);
        m.set_mate(0, 0);
        assert!(m.reclaim_into(&dg, 1, 2, usize::MAX));
        let mut w = m.last_walk().to_vec();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn expansions_count_search_work() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        let before = m.expansions();
        m.sweep(&dg, 4);
        assert!(m.expansions() > before, "sweep expands rights");
        let after = m.expansions();
        // A search over a saturated instance still pays its expansions.
        assert!(!m.try_augment_from_left(&dg, 0, 4, usize::MAX));
        assert_eq!(m.expansions(), after, "matched start is a no-op");
    }

    #[test]
    fn eviction_and_unmatch_bookkeeping() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        m.sweep(&dg, 4);
        assert_eq!(m.size(), 2);
        let evicted = m.evict_one(0).unwrap();
        assert_eq!(m.size(), 1);
        assert_eq!(m.mate(evicted), None);
        assert_eq!(m.load(0), 0);
        m.validate(&dg).unwrap();
        assert_eq!(m.evict_one(0), None);
    }

    #[test]
    fn works_on_overlay_adjacency() {
        // Start from an empty base, build the trap via the overlay, and
        // keep the matching maximal throughout.
        let base = BipartiteBuilder::new(0, 2)
            .build_with_uniform_capacity(1)
            .unwrap();
        let mut dg = DeltaGraph::new(base);
        let mut m = Matching::new(&dg);
        let u0 = dg.arrive(&[0, 1]);
        m.ensure_left(dg.n_left());
        assert!(m.try_augment_from_left(&dg, u0, 4, usize::MAX));
        let u1 = dg.arrive(&[0]);
        m.ensure_left(dg.n_left());
        assert!(m.try_augment_from_left(&dg, u1, 4, usize::MAX));
        assert_eq!(m.size(), 2);
        m.validate(&dg).unwrap();

        // Depart u0: its slot frees, reclaim finds nobody else.
        let freed = dg.depart(u0);
        if let Some(v) = m.mate(u0) {
            assert!(freed.contains(&v));
            m.unmatch(u0);
            assert!(!m.reclaim_into(&dg, v, 4, usize::MAX));
        }
        m.validate(&dg).unwrap();
        assert_eq!(m.size(), 1);
    }
}

//! Bounded augmenting-walk maintenance of the integral allocation.
//!
//! The Appendix-B boosting argument says an allocation with no augmenting
//! walk of length `≤ 2k−1` has size `≥ k/(k+1) · OPT`. The static
//! pipeline establishes that certificate once (`core::boosting`); this
//! module maintains it under updates:
//!
//! * [`Matching::try_augment_from_left`] — forward BFS from a newly free
//!   left vertex, exploring at most `k−1` matched hops (the `O(τ)`-ball
//!   around the update site).
//! * [`Matching::reclaim_into`] — backward BFS from freshly freed right
//!   capacity, pulling in a free left vertex through an alternating walk
//!   of the same bounded length.
//! * [`Matching::sweep`] — repeated passes of the forward search over all
//!   free left vertices until a pass augments nothing. The final clean
//!   pass certifies the walk-freeness invariant against one fixed
//!   matching, restoring the `k/(k+1)` guarantee exactly.
//!
//! All searches run on [`DeltaGraph`] adjacency directly — no CSR
//! materialization — and reuse stamped visit buffers so repeated calls
//! allocate nothing.

use sparse_alloc_graph::{Assignment, DeltaGraph, LeftId, RightId};

/// The maintained integral allocation plus the search scratch space.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Per-left match (grows with arrivals; departed slots hold `None`).
    mate: Vec<Option<RightId>>,
    /// Matched left partners per right vertex.
    matched_at: Vec<Vec<LeftId>>,
    size: usize,
    // Stamped scratch buffers (a fresh stamp invalidates in O(1)).
    stamp: u64,
    seen_left: Vec<u64>,
    seen_right: Vec<u64>,
    depth_left: Vec<u32>,
    parent_left: Vec<(LeftId, RightId)>,
    parent_right: Vec<(LeftId, RightId)>,
    /// Right vertices touched by the most recent successful flip (both the
    /// old and the new side of every flipped pair; may contain duplicates).
    last_walk: Vec<RightId>,
    /// Lifetime count of BFS right-vertex expansions across all searches.
    expansions: u64,
}

impl Matching {
    /// The empty matching on the live graph.
    pub fn new(dg: &DeltaGraph) -> Self {
        let mut m = Matching {
            mate: Vec::new(),
            matched_at: vec![Vec::new(); dg.n_right()],
            size: 0,
            stamp: 0,
            seen_left: Vec::new(),
            seen_right: vec![0; dg.n_right()],
            depth_left: Vec::new(),
            parent_left: Vec::new(),
            parent_right: vec![(0, 0); dg.n_right()],
            last_walk: Vec::new(),
            expansions: 0,
        };
        m.ensure_left(dg.n_left());
        m
    }

    /// Adopt an assignment produced by the static pipeline.
    ///
    /// # Panics
    /// Panics if the assignment references a non-edge or overfills a
    /// capacity of the live graph.
    pub fn from_assignment(dg: &DeltaGraph, a: &Assignment) -> Self {
        let mut m = Matching::new(dg);
        for (u, &mv) in a.mate.iter().enumerate() {
            if let Some(v) = mv {
                assert!(dg.has_edge(u as u32, v), "({u}, {v}) is not a live edge");
                m.set_mate(u as u32, v);
            }
        }
        for v in 0..dg.n_right() as u32 {
            assert!(
                m.load(v) <= dg.capacity(v),
                "right {v} overfilled by the adopted assignment"
            );
        }
        m
    }

    /// Grow the per-left arrays to cover `n_left` vertices.
    pub fn ensure_left(&mut self, n_left: usize) {
        if self.mate.len() < n_left {
            self.mate.resize(n_left, None);
            self.seen_left.resize(n_left, 0);
            self.depth_left.resize(n_left, 0);
            self.parent_left.resize(n_left, (0, 0));
        }
    }

    /// Cardinality `|M|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The match of left vertex `u` (`None` for unmatched or out-of-range).
    #[inline]
    pub fn mate(&self, u: LeftId) -> Option<RightId> {
        self.mate.get(u as usize).copied().flatten()
    }

    /// Number of matched partners of right vertex `v`.
    #[inline]
    pub fn load(&self, v: RightId) -> u64 {
        self.matched_at[v as usize].len() as u64
    }

    /// Residual capacity of `v` on the live graph (0 if overfilled).
    #[inline]
    pub fn residual(&self, dg: &DeltaGraph, v: RightId) -> u64 {
        dg.capacity(v).saturating_sub(self.load(v))
    }

    /// Right vertices touched by the most recent successful augmenting
    /// flip — every right an edge was flipped onto *or* off of, so a
    /// change observer (dirty-component tracking, cross-shard handoff
    /// accounting) sees the full perturbed region. Overwritten by the next
    /// successful search; may contain duplicates.
    #[inline]
    pub fn last_walk(&self) -> &[RightId] {
        &self.last_walk
    }

    /// Lifetime count of BFS right-vertex expansions across all searches
    /// (eager repairs and sweeps alike). Monotone; sample before/after a
    /// phase to measure its search work.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Export as a plain [`Assignment`].
    pub fn assignment(&self) -> Assignment {
        Assignment {
            mate: self.mate.clone(),
        }
    }

    /// Unmatch `u`, returning its former partner.
    pub fn unmatch(&mut self, u: LeftId) -> Option<RightId> {
        let old = self.mate[u as usize].take()?;
        let at = &mut self.matched_at[old as usize];
        let pos = at.iter().position(|&x| x == u).expect("u was matched at v");
        at.swap_remove(pos);
        self.size -= 1;
        Some(old)
    }

    /// Evict one matched partner of `v` (most recently matched first),
    /// returning it. Used when a capacity decrease overfills `v`.
    pub fn evict_one(&mut self, v: RightId) -> Option<LeftId> {
        let u = *self.matched_at[v as usize].last()?;
        self.unmatch(u);
        Some(u)
    }

    fn set_mate(&mut self, u: LeftId, v: RightId) {
        if self.mate[u as usize].is_none() {
            self.size += 1;
        } else {
            self.unmatch(u);
            self.size += 1;
        }
        self.mate[u as usize] = Some(v);
        self.matched_at[v as usize].push(u);
    }

    /// Forward search: try to match free left vertex `u` through an
    /// augmenting walk of length `≤ 2k−1` (at most `k−1` matched hops).
    /// Returns whether the matching grew.
    ///
    /// `visit_cap` bounds the number of right vertices the search may
    /// expand before giving up — the eager per-update repairs pass a
    /// small cap (a failed unbounded search costs a whole `O(deg^k)`
    /// ball), while [`Matching::sweep`] passes `usize::MAX` because the
    /// certificate needs exact searches.
    pub fn try_augment_from_left(
        &mut self,
        dg: &DeltaGraph,
        u: LeftId,
        k: usize,
        visit_cap: usize,
    ) -> bool {
        assert!(k >= 1, "walk budget k ≥ 1");
        if self.mate(u).is_some() {
            return false;
        }
        self.ensure_left(dg.n_left());
        let budget = (k - 1) as u32;
        let mut visits = 0usize;
        self.stamp += 1;
        let stamp = self.stamp;
        let mut queue = std::collections::VecDeque::new();
        self.seen_left[u as usize] = stamp;
        self.depth_left[u as usize] = 0;
        queue.push_back(u);

        while let Some(x) = queue.pop_front() {
            let d = self.depth_left[x as usize];
            for w in dg.left_neighbors_iter(x) {
                if self.mate[x as usize] == Some(w) {
                    continue; // the matched edge of x is not traversable here
                }
                if self.residual(dg, w) > 0 {
                    // Flip the walk u ⇝ x — w.
                    self.last_walk.clear();
                    let mut cur = x;
                    let mut assign = w;
                    loop {
                        let old = self.mate[cur as usize];
                        self.last_walk.push(assign);
                        self.set_mate(cur, assign);
                        if cur == u {
                            break;
                        }
                        let (prev, via) = self.parent_left[cur as usize];
                        debug_assert_eq!(old, Some(via));
                        assign = via;
                        cur = prev;
                    }
                    return true;
                }
                if d < budget && self.seen_right[w as usize] != stamp {
                    self.seen_right[w as usize] = stamp;
                    visits += 1;
                    self.expansions += 1;
                    if visits > visit_cap {
                        return false;
                    }
                    for i in 0..self.matched_at[w as usize].len() {
                        let x2 = self.matched_at[w as usize][i];
                        if self.seen_left[x2 as usize] != stamp {
                            self.seen_left[x2 as usize] = stamp;
                            self.depth_left[x2 as usize] = d + 1;
                            self.parent_left[x2 as usize] = (x, w);
                            queue.push_back(x2);
                        }
                    }
                }
            }
        }
        false
    }

    /// Backward search: right vertex `v` has residual capacity — pull in a
    /// free left vertex through an augmenting walk of length `≤ 2k−1`
    /// ending at `v`. Returns whether the matching grew.
    ///
    /// `visit_cap` bounds the expanded right vertices, as in
    /// [`Matching::try_augment_from_left`].
    pub fn reclaim_into(
        &mut self,
        dg: &DeltaGraph,
        v: RightId,
        k: usize,
        visit_cap: usize,
    ) -> bool {
        assert!(k >= 1, "walk budget k ≥ 1");
        if self.residual(dg, v) == 0 {
            return false;
        }
        self.ensure_left(dg.n_left());
        let budget = (k - 1) as u32;
        let mut visits = 0usize;
        self.stamp += 1;
        let stamp = self.stamp;
        let mut queue = std::collections::VecDeque::new();
        self.seen_right[v as usize] = stamp;
        queue.push_back((v, 0u32));

        while let Some((w, d)) = queue.pop_front() {
            visits += 1;
            self.expansions += 1;
            if visits > visit_cap {
                return false;
            }
            for x in dg.right_neighbors_iter(w) {
                match self.mate[x as usize] {
                    Some(mw) if mw == w => continue, // matched edge: not traversable
                    None => {
                        // Found a free left: flip x — w ⇝ v.
                        self.last_walk.clear();
                        self.last_walk.push(w);
                        self.set_mate(x, w);
                        let mut cur = w;
                        while cur != v {
                            let (y, next) = self.parent_right[cur as usize];
                            debug_assert_eq!(self.mate[y as usize], Some(cur));
                            self.last_walk.push(next);
                            self.set_mate(y, next);
                            cur = next;
                        }
                        return true;
                    }
                    Some(w2) => {
                        if d < budget && self.seen_right[w2 as usize] != stamp {
                            self.seen_right[w2 as usize] = stamp;
                            self.parent_right[w2 as usize] = (x, w);
                            queue.push_back((w2, d + 1));
                        }
                    }
                }
            }
        }
        false
    }

    /// Restore the `≤ 2k−1` walk-freeness certificate globally: repeat
    /// passes of [`Matching::try_augment_from_left`] over all free left
    /// vertices until a pass augments nothing. The final (augmenting-free)
    /// pass certifies every free vertex against the *same* matching, so on
    /// return the allocation has size `≥ k/(k+1) · OPT` on the live graph.
    /// Returns the number of augmentations performed.
    pub fn sweep(&mut self, dg: &DeltaGraph, k: usize) -> usize {
        self.ensure_left(dg.n_left());
        let mut total = 0usize;
        loop {
            let mut progressed = 0usize;
            for u in 0..dg.n_left() as u32 {
                // The mate check is the only per-vertex work for matched
                // vertices; a free degree-0 vertex costs one empty BFS.
                // Searches are uncapped: the certificate must be exact.
                if self.mate[u as usize].is_none()
                    && self.try_augment_from_left(dg, u, k, usize::MAX)
                {
                    progressed += 1;
                }
            }
            total += progressed;
            if progressed == 0 {
                return total;
            }
        }
    }

    /// Feasibility check against the live graph (used by tests and the
    /// serve façade's debug assertions).
    pub fn validate(&self, dg: &DeltaGraph) -> Result<(), String> {
        let mut size = 0usize;
        for (u, &mv) in self.mate.iter().enumerate() {
            if let Some(v) = mv {
                size += 1;
                if !dg.has_edge(u as u32, v) {
                    return Err(format!("matched pair ({u}, {v}) is not a live edge"));
                }
                if !self.matched_at[v as usize].contains(&(u as u32)) {
                    return Err(format!("reverse index missing ({u}, {v})"));
                }
            }
        }
        if size != self.size {
            return Err(format!("size {} but {size} matched", self.size));
        }
        let indexed: usize = self.matched_at.iter().map(Vec::len).sum();
        if indexed != size {
            return Err(format!("reverse index holds {indexed} of {size}"));
        }
        for v in 0..dg.n_right() as u32 {
            if self.load(v) > dg.capacity(v) {
                return Err(format!(
                    "right {v} load {} exceeds capacity {}",
                    self.load(v),
                    dg.capacity(v)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};
    use sparse_alloc_graph::BipartiteBuilder;

    fn trap() -> DeltaGraph {
        // u0 ~ {v0, v1}, u1 ~ {v0}: matching u0–v0 blocks u1 until a
        // length-3 walk re-routes u0 to v1.
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        DeltaGraph::new(b.build_with_uniform_capacity(1).unwrap())
    }

    #[test]
    fn forward_search_respects_the_budget() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        assert!(m.try_augment_from_left(&dg, 0, 1, usize::MAX));
        assert_eq!(m.mate(0), Some(0));
        // k = 1 forbids the length-3 walk; k = 2 allows it.
        assert!(!m.try_augment_from_left(&dg, 1, 1, usize::MAX));
        assert!(m.try_augment_from_left(&dg, 1, 2, usize::MAX));
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(1), Some(0));
        m.validate(&dg).unwrap();
    }

    #[test]
    fn backward_search_pulls_through_alternating_walks() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        // Match u0–v0 by hand; u1 stays free. Freeing capacity at v1 must
        // pull u1 in through the walk u1 – v0 – u0 – v1.
        m.set_mate(0, 0);
        assert!(
            !m.reclaim_into(&dg, 1, 1, usize::MAX),
            "k = 1 cannot re-route"
        );
        assert!(m.reclaim_into(&dg, 1, 2, usize::MAX));
        assert_eq!(m.size(), 2);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(1), Some(0));
        m.validate(&dg).unwrap();
    }

    #[test]
    fn sweep_reaches_the_k_over_k_plus_one_bound() {
        for seed in 0..4u64 {
            let g = union_of_spanning_trees(60, 40, 3, 2, seed).graph;
            let opt = opt_value(&g);
            let dg = DeltaGraph::new(g);
            for k in [1usize, 2, 4, 8] {
                let mut m = Matching::new(&dg);
                m.sweep(&dg, k);
                m.validate(&dg).unwrap();
                let bound = (k as f64) / (k as f64 + 1.0) * opt as f64;
                assert!(
                    m.size() as f64 >= bound - 1e-9,
                    "seed {seed} k {k}: {} < {bound} (OPT {opt})",
                    m.size()
                );
            }
        }
    }

    #[test]
    fn large_budget_sweep_is_optimal() {
        for seed in 0..3u64 {
            let g = random_bipartite(50, 30, 220, 3, seed).graph;
            let opt = opt_value(&g);
            let dg = DeltaGraph::new(g);
            let mut m = Matching::new(&dg);
            m.sweep(&dg, 1_000);
            assert_eq!(m.size() as u64, opt, "seed {seed}");
            m.validate(&dg).unwrap();
        }
    }

    #[test]
    fn last_walk_records_both_sides_of_every_flip() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        assert!(m.try_augment_from_left(&dg, 0, 1, usize::MAX));
        assert_eq!(m.last_walk(), &[0], "length-1 walk touches one right");
        // The length-3 walk re-routes u0 from v0 to v1: both rights flip.
        assert!(m.try_augment_from_left(&dg, 1, 2, usize::MAX));
        let mut w = m.last_walk().to_vec();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w, vec![0, 1]);

        // Backward search records the full alternating walk too.
        let dg = trap();
        let mut m = Matching::new(&dg);
        m.set_mate(0, 0);
        assert!(m.reclaim_into(&dg, 1, 2, usize::MAX));
        let mut w = m.last_walk().to_vec();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn expansions_count_search_work() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        let before = m.expansions();
        m.sweep(&dg, 4);
        assert!(m.expansions() > before, "sweep expands rights");
        let after = m.expansions();
        // A search over a saturated instance still pays its expansions.
        assert!(!m.try_augment_from_left(&dg, 0, 4, usize::MAX));
        assert_eq!(m.expansions(), after, "matched start is a no-op");
    }

    #[test]
    fn eviction_and_unmatch_bookkeeping() {
        let dg = trap();
        let mut m = Matching::new(&dg);
        m.sweep(&dg, 4);
        assert_eq!(m.size(), 2);
        let evicted = m.evict_one(0).unwrap();
        assert_eq!(m.size(), 1);
        assert_eq!(m.mate(evicted), None);
        assert_eq!(m.load(0), 0);
        m.validate(&dg).unwrap();
        assert_eq!(m.evict_one(0), None);
    }

    #[test]
    fn works_on_overlay_adjacency() {
        // Start from an empty base, build the trap via the overlay, and
        // keep the matching maximal throughout.
        let base = BipartiteBuilder::new(0, 2)
            .build_with_uniform_capacity(1)
            .unwrap();
        let mut dg = DeltaGraph::new(base);
        let mut m = Matching::new(&dg);
        let u0 = dg.arrive(&[0, 1]);
        m.ensure_left(dg.n_left());
        assert!(m.try_augment_from_left(&dg, u0, 4, usize::MAX));
        let u1 = dg.arrive(&[0]);
        m.ensure_left(dg.n_left());
        assert!(m.try_augment_from_left(&dg, u1, 4, usize::MAX));
        assert_eq!(m.size(), 2);
        m.validate(&dg).unwrap();

        // Depart u0: its slot frees, reclaim finds nobody else.
        let freed = dg.depart(u0);
        if let Some(v) = m.mate(u0) {
            assert!(freed.contains(&v));
            m.unmatch(u0);
            assert!(!m.reclaim_into(&dg, v, 4, usize::MAX));
        }
        m.validate(&dg).unwrap();
        assert_eq!(m.size(), 1);
    }
}

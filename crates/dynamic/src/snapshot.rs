//! Checkpoint/restore: versioned, checksummed binary snapshots of the
//! serving engines.
//!
//! The dynamic engine's state — the [`DeltaGraph`] overlay, the β-levels,
//! the maintained [`Matching`](crate::Matching), the drift budget, and
//! the lifetime counters — is a *compact certificate* of everything the
//! update history did: exactly the levels + matching + overlay triple the
//! peeling/level structures of low-memory MPC matching maintain
//! (Brandt–Fischer–Uitto, arXiv:1807.05374; Ghaffari–Uitto,
//! arXiv:1807.06251). Persisting it lets a serving process restart
//! **warm**: a restored [`ServeLoop`] is bit-identical, as far as any
//! observable allocation state goes, to the engine that never stopped —
//! the warm-restart fidelity contract `tests/persistence.rs` proves for
//! the serial engine and for shard counts {1, 2, 4}, including restores
//! that re-shard onto a different machine count.
//!
//! # Wire format
//!
//! ```text
//! [ 0.. 8)  magic  "SALLOCSN"
//! [ 8..12)  format version (u32 LE)       — mismatch: typed error
//! [12..16)  kind (0 serial, 1 sharded,    — mismatch: typed error
//!           2 delta)
//! [16..24)  payload length (u64 LE)       — short file: typed error
//! [24.. n)  payload (see below)
//! [ n..n+8) FNV-1a-64 over bytes [0..n)   — mismatch: typed error
//! ```
//!
//! The payload is the [`ByteWriter`] encoding of the engine parts; the
//! sharded kind prepends the shard configuration, lifetime counters, and
//! one [`ShardManifest`] per machine of the recorded
//! [`ShardMap`]. Every corruption path —
//! truncation, bit flips, version skew, a manifest list that disagrees
//! with its recorded shard count — surfaces as a typed
//! [`SnapshotError`], never a panic, and every decoded structure is
//! re-validated against its invariants before serving resumes (the
//! payload is external input; the checksum detects accidents, not
//! adversaries).
//!
//! What is deliberately **not** persisted: the fractional memo and the
//! per-worker wave scratch (rebuildable caches), and the MPC ledger's
//! round history (a restore starts a fresh accounting epoch with a
//! [`labels::RESTORE`](sparse_alloc_mpc::shard::labels::RESTORE) phase,
//! like a real redeployment). The serving counters do carry over, so
//! lifetime stats stay monotone across restarts.
//!
//! # Re-sharding on restore
//!
//! Vertex ownership is a pure function of the id and the shard count, so
//! [`read_sharded`] can re-key a snapshot onto a different machine count:
//! the manifests are validated under the *recorded* map first (catching
//! codec or corruption bugs shard by shard), then the restored state is
//! re-checked against the *target* count's per-machine space budget.
//!
//! ```
//! use sparse_alloc_dynamic::{snapshot, DynamicConfig, ServeLoop, Update};
//! use sparse_alloc_graph::generators::union_of_spanning_trees;
//!
//! let g = union_of_spanning_trees(60, 40, 3, 2, 7).graph;
//! let mut serve = ServeLoop::new(g, DynamicConfig::for_eps(0.25));
//! serve.apply(&Update::Depart { u: 3 });
//! serve.end_epoch();
//!
//! // Checkpoint to any `Write` sink, restore from any `Read` source.
//! let mut bytes = Vec::new();
//! snapshot::write_serial(&serve, &mut bytes).unwrap();
//! let restored = snapshot::read_serial(&mut &bytes[..]).unwrap();
//! assert_eq!(restored.assignment().mate, serve.assignment().mate);
//! assert_eq!(restored.stats(), serve.stats());
//! ```

use std::io::{Read, Write};
use std::path::Path;

use sparse_alloc_graph::io::{fnv1a64, ByteReader, ByteWriter, IoError};
use sparse_alloc_graph::DeltaGraph;
use sparse_alloc_mpc::{ShardManifest, ShardMap};

use crate::distributed::{ShardedParts, ShardedPartsRef, ShardedServeLoop, ShardedStats};
use crate::serve::{DynamicConfig, ServeLoop, ServeParts, ServePartsRef, ServeStats};
use crate::walks::MatchingState;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"SALLOCSN";
/// The format version this build writes and the only one it reads.
pub const VERSION: u32 = 1;

const KIND_SERIAL: u32 = 0;
const KIND_SHARDED: u32 = 1;
const KIND_DELTA: u32 = 2;
/// Header bytes before the payload: magic + version + kind + length.
const HEADER: usize = 8 + 4 + 4 + 8;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (filesystem, sink, source).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file was written by an unsupported format version.
    Version {
        /// Version recorded in the file.
        found: u32,
        /// The only version this build supports.
        supported: u32,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promises.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The checksum over header + payload does not match the recorded one.
    Checksum {
        /// Checksum recorded in the file.
        recorded: u64,
        /// Checksum computed over the bytes read.
        computed: u64,
    },
    /// A serial restore was asked to read a sharded snapshot, or vice
    /// versa.
    Kind {
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind recorded in the file.
        found: &'static str,
    },
    /// The manifest list disagrees with the recorded shard count.
    ShardMismatch {
        /// Shard count recorded in the snapshot.
        recorded: usize,
        /// Manifest entries actually present.
        manifests: usize,
    },
    /// The payload parsed but violates a structural invariant (dangling
    /// ids, infeasible matching, manifest/state disagreement, unusable
    /// config, a restored state that leaves the space regime, …).
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a sparse-alloc snapshot (bad magic)"),
            SnapshotError::Version { found, supported } => {
                write!(
                    f,
                    "snapshot format v{found}, this build supports v{supported}"
                )
            }
            SnapshotError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: {got} of {needed} bytes")
            }
            SnapshotError::Checksum { recorded, computed } => write!(
                f,
                "snapshot checksum mismatch: recorded {recorded:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Kind { expected, found } => {
                write!(f, "expected a {expected} snapshot, found a {found} one")
            }
            SnapshotError::ShardMismatch {
                recorded,
                manifests,
            } => write!(
                f,
                "snapshot records {recorded} shards but carries {manifests} manifests"
            ),
            SnapshotError::Invalid(msg) => write!(f, "snapshot invalid: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<IoError> for SnapshotError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => SnapshotError::Io(e),
            IoError::Parse(msg) => SnapshotError::Invalid(msg),
        }
    }
}

fn invalid(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid(msg.into())
}

// ---------------------------------------------------------------- framing

/// Wrap a payload in the header + checksum frame.
fn frame(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = fnv1a64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verify the frame and return `(kind, payload)`.
fn deframe(bytes: &[u8]) -> Result<(u32, &[u8]), SnapshotError> {
    if bytes.len() < HEADER + 8 {
        return Err(SnapshotError::Truncated {
            needed: (HEADER + 8) as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::Version {
            found: version,
            supported: VERSION,
        });
    }
    let kind = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let total = (HEADER as u64)
        .checked_add(len)
        .and_then(|t| t.checked_add(8))
        .ok_or(SnapshotError::Truncated {
            needed: u64::MAX,
            got: bytes.len() as u64,
        })?;
    if (bytes.len() as u64) < total {
        return Err(SnapshotError::Truncated {
            needed: total,
            got: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > total {
        return Err(invalid(format!(
            "{} trailing bytes after the checksum",
            bytes.len() as u64 - total
        )));
    }
    let body = &bytes[..HEADER + len as usize];
    let recorded = u64::from_le_bytes(bytes[HEADER + len as usize..].try_into().unwrap());
    let computed = fnv1a64(body);
    if recorded != computed {
        return Err(SnapshotError::Checksum { recorded, computed });
    }
    Ok((kind, &bytes[HEADER..HEADER + len as usize]))
}

fn kind_name(kind: u32) -> &'static str {
    match kind {
        KIND_SERIAL => "serial",
        KIND_SHARDED => "sharded",
        KIND_DELTA => "delta",
        _ => "unknown",
    }
}

// --------------------------------------------------------- serial payload

fn encode_config(cfg: &DynamicConfig, w: &mut ByteWriter) {
    w.put_f64(cfg.eps);
    w.put_u64(cfg.walk_budget as u64);
    w.put_u64(cfg.repair_radius as u64);
    w.put_u64(cfg.repair_rounds as u64);
    w.put_f64(cfg.drift_threshold);
    w.put_f64(cfg.compact_threshold);
    w.put_u64(cfg.eager_search_cap as u64);
    w.put_u64(cfg.eager_walk_budget as u64);
    w.put_u64(cfg.repair_ball_cap as u64);
}

fn decode_config(r: &mut ByteReader) -> Result<DynamicConfig, SnapshotError> {
    Ok(DynamicConfig {
        eps: r.take_f64()?,
        walk_budget: r.take_u64()? as usize,
        repair_radius: r.take_u64()? as usize,
        repair_rounds: r.take_u64()? as usize,
        drift_threshold: r.take_f64()?,
        compact_threshold: r.take_f64()?,
        eager_search_cap: r.take_u64()? as usize,
        eager_walk_budget: r.take_u64()? as usize,
        repair_ball_cap: r.take_u64()? as usize,
    })
}

/// `None` mate sentinel: right ids are dense and far below this.
const NO_MATE: u32 = u32::MAX;

fn encode_serve_parts(p: &ServePartsRef<'_>, w: &mut ByteWriter) {
    encode_config(p.cfg, w);
    p.dg.encode(w);
    w.put_vec_i64(p.levels);
    w.put_u64(p.mate.len() as u64);
    for m in p.mate {
        w.put_u32(m.unwrap_or(NO_MATE));
    }
    w.put_u64(p.matched_at.len() as u64);
    for at in p.matched_at {
        w.put_vec_u32(at);
    }
    w.put_u64(p.expansions);
    w.put_vec_u32(p.dirty);
    w.put_vec_u32(p.sweep_dirty);
    w.put_f64(p.drift_accumulated);
    for c in [
        p.stats.updates,
        p.stats.epochs,
        p.stats.rebuilds,
        p.stats.compactions,
        p.stats.augmentations,
        p.stats.evictions,
        p.stats.repair_rounds,
    ] {
        w.put_u64(c as u64);
    }
}

fn decode_serve_parts(r: &mut ByteReader) -> Result<ServeParts, SnapshotError> {
    let cfg = decode_config(r)?;
    let dg = DeltaGraph::decode(r)?;
    let levels = r.take_vec_i64()?;
    let n_mate = r.take_len(4)?;
    let mut mate = Vec::with_capacity(n_mate);
    for _ in 0..n_mate {
        let m = r.take_u32()?;
        mate.push((m != NO_MATE).then_some(m));
    }
    let n_at = r.take_len(8)?;
    let mut matched_at = Vec::with_capacity(n_at);
    for _ in 0..n_at {
        matched_at.push(r.take_vec_u32()?);
    }
    let expansions = r.take_u64()?;
    let dirty = r.take_vec_u32()?;
    let sweep_dirty = r.take_vec_u32()?;
    let drift_accumulated = r.take_f64()?;
    let mut stats = [0usize; 7];
    for s in &mut stats {
        *s = r.take_u64()? as usize;
    }
    Ok(ServeParts {
        cfg,
        dg,
        levels,
        matching: MatchingState {
            mate,
            matched_at,
            expansions,
        },
        dirty,
        sweep_dirty,
        drift_accumulated,
        stats: ServeStats {
            updates: stats[0],
            epochs: stats[1],
            rebuilds: stats[2],
            compactions: stats[3],
            augmentations: stats[4],
            evictions: stats[5],
            repair_rounds: stats[6],
        },
    })
}

// -------------------------------------------------------- sharded payload

/// Derive the per-shard manifests of a serialized state under `map`: one
/// entry per machine with its owned-vertex counts, resident words (the
/// quantity the ledger's storage accounting charges), and a checksum over
/// the machine's owned slice — rights in id order (capacity, level,
/// matched partners), then lefts in id order (mate).
fn manifests_of(p: &ServePartsRef<'_>, map: &ShardMap) -> Vec<ShardManifest> {
    let dg = p.dg;
    let shards = map.shards();
    let mut slices: Vec<ByteWriter> = (0..shards).map(|_| ByteWriter::new()).collect();
    let mut out: Vec<ShardManifest> = (0..shards as u32)
        .map(|shard| ShardManifest {
            shard,
            ..ShardManifest::default()
        })
        .collect();
    for v in 0..dg.n_right() as u32 {
        let s = map.owner_of_right(v);
        out[s].owned_rights += 1;
        out[s].resident_words += 2 + dg.right_degree(v) as u64;
        let w = &mut slices[s];
        w.put_u32(v);
        w.put_u64(dg.capacity(v));
        w.put_i64(p.levels.get(v as usize).copied().unwrap_or(0));
        w.put_vec_u32(p.matched_at.get(v as usize).map_or(&[][..], |a| a));
    }
    for u in 0..dg.n_left() as u32 {
        let s = map.owner_of_left(u);
        out[s].owned_lefts += 1;
        out[s].resident_words += 2;
        let w = &mut slices[s];
        w.put_u32(u);
        w.put_u32(p.mate.get(u as usize).copied().flatten().unwrap_or(NO_MATE));
    }
    for (m, w) in out.iter_mut().zip(slices) {
        m.state_checksum = fnv1a64(&w.into_bytes());
    }
    out
}

fn encode_sharded_payload(p: &ShardedPartsRef<'_>, manifests: &[ShardManifest]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(ShardMap::new(p.shards).to_word());
    w.put_u64(p.slack as u64);
    w.put_u64(p.footprint_cap as u64);
    w.put_u64(p.wave_threads as u64);
    for c in [
        p.stats.batches,
        p.stats.waves,
        p.stats.routed_updates,
        p.stats.migrations,
        p.stats.escalations,
        p.stats.widest_wave,
        p.stats.delayed,
    ] {
        w.put_u64(c as u64);
    }
    w.put_u64(p.stats.handoff_words);
    w.put_u64(manifests.len() as u64);
    for m in manifests {
        w.put_u32(m.shard);
        w.put_u64(m.owned_lefts);
        w.put_u64(m.owned_rights);
        w.put_u64(m.resident_words);
        w.put_u64(m.state_checksum);
    }
    encode_serve_parts(&p.inner, &mut w);
    w.into_bytes()
}

fn decode_sharded_payload(
    r: &mut ByteReader,
) -> Result<(ShardedParts, Vec<ShardManifest>), SnapshotError> {
    let map = ShardMap::from_word(r.take_u64()?).map_err(invalid)?;
    let slack = r.take_u64()? as usize;
    let footprint_cap = r.take_u64()? as usize;
    let wave_threads = r.take_u64()? as usize;
    let mut counters = [0usize; 7];
    for c in &mut counters {
        *c = r.take_u64()? as usize;
    }
    let handoff_words = r.take_u64()?;
    let n_manifests = r.take_len(36)?;
    if n_manifests != map.shards() {
        return Err(SnapshotError::ShardMismatch {
            recorded: map.shards(),
            manifests: n_manifests,
        });
    }
    let mut manifests = Vec::with_capacity(n_manifests);
    for i in 0..n_manifests as u32 {
        let m = ShardManifest {
            shard: r.take_u32()?,
            owned_lefts: r.take_u64()?,
            owned_rights: r.take_u64()?,
            resident_words: r.take_u64()?,
            state_checksum: r.take_u64()?,
        };
        if m.shard != i {
            return Err(invalid(format!(
                "manifest {i} describes shard {} (must be in shard order)",
                m.shard
            )));
        }
        manifests.push(m);
    }
    let inner = decode_serve_parts(r)?;
    let parts = ShardedParts {
        inner,
        shards: map.shards(),
        slack,
        footprint_cap,
        wave_threads,
        stats: ShardedStats {
            batches: counters[0],
            waves: counters[1],
            routed_updates: counters[2],
            handoff_words,
            migrations: counters[3],
            escalations: counters[4],
            widest_wave: counters[5],
            delayed: counters[6],
        },
    };
    Ok((parts, manifests))
}

// ---------------------------------------------------------- delta payload

/// The reference a [`DeltaCheckpoint`] diffs against: the identity of a
/// full base snapshot (its byte checksum and epoch) plus the mate and
/// level vectors the engine had when that base was cut.
///
/// The serving process captures this right after writing a full
/// snapshot; every periodic checkpoint until the next base then writes
/// only what moved. On recovery the same capture is taken from the
/// *restored* base, and [`DeltaCheckpoint::verify_serial`] /
/// [`DeltaCheckpoint::verify_sharded`] checks the replayed engine
/// against the last delta on disk.
#[derive(Debug, Clone)]
pub struct DeltaBase {
    /// FNV-1a-64 over the full base snapshot's bytes — pairs every
    /// delta with exactly one base file.
    pub checksum: u64,
    /// Completed epochs when the base was cut.
    pub epoch: u64,
    mate: Vec<u32>,
    levels: Vec<i64>,
}

impl DeltaBase {
    fn of_parts(p: &ServePartsRef<'_>, checksum: u64) -> DeltaBase {
        DeltaBase {
            checksum,
            epoch: p.stats.epochs as u64,
            mate: p.mate.iter().map(|m| m.unwrap_or(NO_MATE)).collect(),
            levels: p.levels.to_vec(),
        }
    }

    /// Capture the base reference from a serial engine whose snapshot
    /// bytes hash to `checksum` (take it right after [`write_serial`]).
    pub fn of_serial(serve: &ServeLoop, checksum: u64) -> DeltaBase {
        DeltaBase::of_parts(&serve.parts_ref(), checksum)
    }

    /// Capture the base reference from a sharded engine whose snapshot
    /// bytes hash to `checksum` (take it right after [`write_sharded`]).
    pub fn of_sharded(serve: &ShardedServeLoop, checksum: u64) -> DeltaBase {
        DeltaBase::of_parts(&serve.serial().parts_ref(), checksum)
    }
}

/// A delta checkpoint: the difference between the engine now and the
/// [`DeltaBase`] it was captured against — matched-partner changes,
/// β-level changes, and the epoch/matching counters. Orders of
/// magnitude smaller than a full snapshot under steady churn, so the
/// periodic checkpoint path can run far more often for the same I/O.
///
/// A delta is **not** restorable on its own: recovery is
/// `base snapshot + WAL tail replay` ([`crate::wal`]), and the delta's
/// job is to *verify* that the replayed engine landed exactly where the
/// live one was last seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCheckpoint {
    /// Checksum of the base snapshot this delta diffs against.
    pub base_checksum: u64,
    /// Completed epochs at the base.
    pub base_epoch: u64,
    /// Completed epochs at the delta.
    pub epoch: u64,
    /// Matching size at the delta.
    pub match_size: u64,
    /// Left vertices at the delta (arrivals grow this past the base).
    pub n_left: u64,
    /// Right vertices at the delta.
    pub n_right: u64,
    /// `(u, mate)` for every left vertex whose matched partner differs
    /// from the base ([`u32::MAX`] = unmatched), in increasing `u`;
    /// lefts the base never had are always present.
    pub mate_diff: Vec<(u32, u32)>,
    /// `(v, level)` for every right vertex whose β-level differs from
    /// the base, in increasing `v`.
    pub level_diff: Vec<(u32, i64)>,
}

impl DeltaCheckpoint {
    fn of_parts(p: &ServePartsRef<'_>, match_size: u64, base: &DeltaBase) -> DeltaCheckpoint {
        let mate_diff = p
            .mate
            .iter()
            .enumerate()
            .map(|(u, m)| (u as u32, m.unwrap_or(NO_MATE)))
            .filter(|&(u, m)| base.mate.get(u as usize) != Some(&m))
            .collect();
        let level_diff = p
            .levels
            .iter()
            .enumerate()
            .map(|(v, &l)| (v as u32, l))
            .filter(|&(v, l)| base.levels.get(v as usize) != Some(&l))
            .collect();
        DeltaCheckpoint {
            base_checksum: base.checksum,
            base_epoch: base.epoch,
            epoch: p.stats.epochs as u64,
            match_size,
            n_left: p.mate.len() as u64,
            n_right: p.levels.len() as u64,
            mate_diff,
            level_diff,
        }
    }

    /// Diff a serial engine against `base`.
    pub fn of_serial(serve: &ServeLoop, base: &DeltaBase) -> DeltaCheckpoint {
        DeltaCheckpoint::of_parts(&serve.parts_ref(), serve.match_size() as u64, base)
    }

    /// Diff a sharded engine against `base`.
    pub fn of_sharded(serve: &ShardedServeLoop, base: &DeltaBase) -> DeltaCheckpoint {
        DeltaCheckpoint::of_parts(&serve.serial().parts_ref(), serve.match_size() as u64, base)
    }

    fn verify(&self, recomputed: &DeltaCheckpoint) -> Result<(), SnapshotError> {
        if self == recomputed {
            return Ok(());
        }
        let what = if self.base_checksum != recomputed.base_checksum {
            format!(
                "delta diffs against base {:#018x}, engine was restored from {:#018x}",
                self.base_checksum, recomputed.base_checksum
            )
        } else if self.epoch != recomputed.epoch {
            format!(
                "delta was cut at epoch {}, replayed engine is at {}",
                self.epoch, recomputed.epoch
            )
        } else if self.match_size != recomputed.match_size {
            format!(
                "delta recorded a matching of {}, replayed engine has {}",
                self.match_size, recomputed.match_size
            )
        } else {
            format!(
                "replayed engine diverges from the delta ({} vs {} mate \
                 changes, {} vs {} level changes)",
                recomputed.mate_diff.len(),
                self.mate_diff.len(),
                recomputed.level_diff.len(),
                self.level_diff.len()
            )
        };
        Err(invalid(what))
    }

    /// Check a recovered serial engine against this delta: `base` must
    /// be captured from the freshly restored base snapshot, and the
    /// engine must have replayed the log tail. Any divergence — wrong
    /// base, missing epochs, a different matching — is typed
    /// [`SnapshotError::Invalid`].
    pub fn verify_serial(&self, serve: &ServeLoop, base: &DeltaBase) -> Result<(), SnapshotError> {
        self.verify(&DeltaCheckpoint::of_serial(serve, base))
    }

    /// Check a recovered sharded engine against this delta (see
    /// [`DeltaCheckpoint::verify_serial`]).
    pub fn verify_sharded(
        &self,
        serve: &ShardedServeLoop,
        base: &DeltaBase,
    ) -> Result<(), SnapshotError> {
        self.verify(&DeltaCheckpoint::of_sharded(serve, base))
    }
}

fn encode_delta_payload(d: &DeltaCheckpoint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(d.base_checksum);
    w.put_u64(d.base_epoch);
    w.put_u64(d.epoch);
    w.put_u64(d.match_size);
    w.put_u64(d.n_left);
    w.put_u64(d.n_right);
    w.put_u64(d.mate_diff.len() as u64);
    for &(u, m) in &d.mate_diff {
        w.put_u32(u);
        w.put_u32(m);
    }
    w.put_u64(d.level_diff.len() as u64);
    for &(v, l) in &d.level_diff {
        w.put_u32(v);
        w.put_i64(l);
    }
    w.into_bytes()
}

fn decode_delta_payload(r: &mut ByteReader) -> Result<DeltaCheckpoint, SnapshotError> {
    let base_checksum = r.take_u64()?;
    let base_epoch = r.take_u64()?;
    let epoch = r.take_u64()?;
    let match_size = r.take_u64()?;
    let n_left = r.take_u64()?;
    let n_right = r.take_u64()?;
    let n_mate = r.take_len(8)?;
    let mut mate_diff = Vec::with_capacity(n_mate);
    for _ in 0..n_mate {
        mate_diff.push((r.take_u32()?, r.take_u32()?));
    }
    let n_level = r.take_len(12)?;
    let mut level_diff = Vec::with_capacity(n_level);
    for _ in 0..n_level {
        level_diff.push((r.take_u32()?, r.take_i64()?));
    }
    for (what, bound, ids) in [
        (
            "mate",
            n_left,
            &mate_diff.iter().map(|&(u, _)| u).collect::<Vec<_>>(),
        ),
        (
            "level",
            n_right,
            &level_diff.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
        ),
    ] {
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(format!(
                "{what} diff is not in increasing id order"
            )));
        }
        if ids.last().is_some_and(|&last| last as u64 >= bound) {
            return Err(invalid(format!(
                "{what} diff names id {} but the delta records only {bound}",
                ids.last().unwrap()
            )));
        }
    }
    Ok(DeltaCheckpoint {
        base_checksum,
        base_epoch,
        epoch,
        match_size,
        n_left,
        n_right,
        mate_diff,
        level_diff,
    })
}

// ------------------------------------------------------------- public API

/// Serialize a serial [`ServeLoop`] into `w`. The engine is read in
/// place — a checkpoint costs the encoding, not a state clone.
pub fn write_serial(serve: &ServeLoop, w: &mut impl Write) -> Result<(), SnapshotError> {
    let mut payload = ByteWriter::new();
    encode_serve_parts(&serve.parts_ref(), &mut payload);
    w.write_all(&frame(KIND_SERIAL, &payload.into_bytes()))?;
    Ok(())
}

/// Restore a serial [`ServeLoop`] from the bytes [`write_serial`] wrote.
pub fn read_serial(r: &mut impl Read) -> Result<ServeLoop, SnapshotError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let (kind, payload) = deframe(&bytes)?;
    if kind != KIND_SERIAL {
        return Err(SnapshotError::Kind {
            expected: "serial",
            found: kind_name(kind),
        });
    }
    let mut r = ByteReader::new(payload);
    let parts = decode_serve_parts(&mut r)?;
    r.expect_end().map_err(SnapshotError::from)?;
    ServeLoop::from_parts(parts).map_err(invalid)
}

/// Serialize a [`ShardedServeLoop`] into `w`, with one [`ShardManifest`]
/// per machine of its [`ShardMap`]. The
/// checkpoint is recorded on the loop's ledger as a round-free
/// [`labels::CHECKPOINT`](sparse_alloc_mpc::shard::labels::CHECKPOINT)
/// phase (hence `&mut`).
pub fn write_sharded(
    serve: &mut ShardedServeLoop,
    w: &mut impl Write,
) -> Result<(), SnapshotError> {
    serve.note_checkpoint();
    let parts = serve.parts_ref();
    let manifests = manifests_of(&parts.inner, serve.shard_map());
    w.write_all(&frame(
        KIND_SHARDED,
        &encode_sharded_payload(&parts, &manifests),
    ))?;
    Ok(())
}

/// Restore a [`ShardedServeLoop`] from the bytes [`write_sharded`] wrote.
///
/// With `shards = None` the loop resumes under its recorded shard count;
/// `Some(p)` re-shards onto `p` machines (ownership is a pure function of
/// the vertex id). Either way the decoded state is validated against the
/// recorded manifests *first* — shard by shard, under the recorded map —
/// and then re-checked against the target count's space budget.
pub fn read_sharded(
    r: &mut impl Read,
    shards: Option<usize>,
) -> Result<ShardedServeLoop, SnapshotError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let (kind, payload) = deframe(&bytes)?;
    if kind != KIND_SHARDED {
        return Err(SnapshotError::Kind {
            expected: "sharded",
            found: kind_name(kind),
        });
    }
    let mut r = ByteReader::new(payload);
    let (parts, manifests) = decode_sharded_payload(&mut r)?;
    r.expect_end().map_err(SnapshotError::from)?;
    let recorded_map = ShardMap::new(parts.shards);
    let derived = manifests_of(&parts.inner.as_parts_ref(), &recorded_map);
    for (got, want) in manifests.iter().zip(&derived) {
        if got != want {
            return Err(invalid(format!(
                "shard {} manifest disagrees with the decoded state \
                 (recorded {got:?}, derived {want:?})",
                got.shard
            )));
        }
    }
    ShardedServeLoop::from_parts(parts, shards).map_err(invalid)
}

/// Serialize a [`DeltaCheckpoint`] into `w`, framed and checksummed
/// like every other snapshot kind.
pub fn write_delta(delta: &DeltaCheckpoint, w: &mut impl Write) -> Result<(), SnapshotError> {
    w.write_all(&frame(KIND_DELTA, &encode_delta_payload(delta)))?;
    Ok(())
}

/// Read back the bytes [`write_delta`] wrote. Corruption surfaces as
/// the same typed taxonomy as the full snapshot kinds.
pub fn read_delta(r: &mut impl Read) -> Result<DeltaCheckpoint, SnapshotError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let (kind, payload) = deframe(&bytes)?;
    if kind != KIND_DELTA {
        return Err(SnapshotError::Kind {
            expected: "delta",
            found: kind_name(kind),
        });
    }
    let mut r = ByteReader::new(payload);
    let delta = decode_delta_payload(&mut r)?;
    r.expect_end().map_err(SnapshotError::from)?;
    Ok(delta)
}

/// Atomically write a delta checkpoint to `path` (see [`save_serial`]).
pub fn save_delta(delta: &DeltaCheckpoint, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    save_atomic(path.as_ref(), |w| write_delta(delta, w))
}

/// Read a delta checkpoint from the file at `path`.
pub fn load_delta(path: impl AsRef<Path>) -> Result<DeltaCheckpoint, SnapshotError> {
    read_delta(&mut std::fs::File::open(path)?)
}

/// Atomically write a serial snapshot to `path` (tempfile + rename, so a
/// crash mid-checkpoint never leaves a torn file where a good one was).
pub fn save_serial(serve: &ServeLoop, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    save_atomic(path.as_ref(), |w| write_serial(serve, w))
}

/// Restore a serial [`ServeLoop`] from the file at `path`.
pub fn load_serial(path: impl AsRef<Path>) -> Result<ServeLoop, SnapshotError> {
    read_serial(&mut std::fs::File::open(path)?)
}

/// Atomically write a sharded snapshot to `path` (see [`save_serial`]).
pub fn save_sharded(
    serve: &mut ShardedServeLoop,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    save_atomic(path.as_ref(), |w| write_sharded(serve, w))
}

/// Restore a [`ShardedServeLoop`] from the file at `path`, optionally
/// re-sharding (see [`read_sharded`]).
pub fn load_sharded(
    path: impl AsRef<Path>,
    shards: Option<usize>,
) -> Result<ShardedServeLoop, SnapshotError> {
    read_sharded(&mut std::fs::File::open(path)?, shards)
}

fn save_atomic(
    path: &Path,
    write: impl FnOnce(&mut std::fs::File) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    match write(&mut f).and_then(|()| f.sync_all().map_err(SnapshotError::from)) {
        Ok(()) => {
            drop(f);
            std::fs::rename(&tmp, path)?;
            Ok(())
        }
        Err(e) => {
            drop(f);
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{churn_stream, ChurnMix};
    use crate::ShardedConfig;
    use sparse_alloc_graph::generators::union_of_spanning_trees;
    use sparse_alloc_graph::BipartiteBuilder;

    fn churned_serve() -> ServeLoop {
        let g = union_of_spanning_trees(50, 40, 2, 2, 9).graph;
        let updates = churn_stream(&g, 60, &ChurnMix::default(), 5);
        let mut s = ServeLoop::new(g, DynamicConfig::for_eps(0.25));
        for (i, up) in updates.iter().enumerate() {
            s.apply(up);
            if i % 17 == 16 {
                s.end_epoch();
            }
        }
        s
    }

    fn serial_bytes(s: &ServeLoop) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_serial(s, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn fresh_empty_serve_loop_roundtrips() {
        // The satellite case: an engine that never served an update, on
        // the empty graph, must round-trip exactly.
        let g = BipartiteBuilder::new(0, 0).build(vec![]).unwrap();
        let s = ServeLoop::new(g, DynamicConfig::for_eps(0.5));
        let bytes = serial_bytes(&s);
        let r = read_serial(&mut &bytes[..]).unwrap();
        r.validate().unwrap();
        assert_eq!(r.match_size(), 0);
        assert_eq!(r.stats(), s.stats());
        assert_eq!(r.config().eps, s.config().eps);
    }

    #[test]
    fn serial_roundtrip_preserves_observable_state_mid_epoch() {
        // Checkpoint *between* epochs, with dirty marks pending: the
        // restored engine must report identical state and close the next
        // epoch identically.
        let mut a = churned_serve();
        let bytes = serial_bytes(&a);
        let mut b = read_serial(&mut &bytes[..]).unwrap();
        b.validate().unwrap();
        assert_eq!(a.assignment().mate, b.assignment().mate);
        assert_eq!(a.levels(), b.levels());
        assert_eq!(a.stats(), b.stats());
        let ra = a.end_epoch();
        let rb = b.end_epoch();
        assert_eq!(ra, rb, "epoch close diverged after restore");
        assert_eq!(a.assignment().mate, b.assignment().mate);
        // Snapshots of equal engines are byte-identical (determinism).
        assert_eq!(serial_bytes(&a), serial_bytes(&b));
    }

    #[test]
    fn truncated_snapshots_error_typed() {
        let s = churned_serve();
        let bytes = serial_bytes(&s);
        for cut in [0, 7, 8, 23, 24, 100, bytes.len() - 1] {
            let err = read_serial(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "prefix {cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_bits_error_as_checksum_mismatch() {
        let s = churned_serve();
        let bytes = serial_bytes(&s);
        for at in [HEADER + 3, HEADER + 95, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = read_serial(&mut &bad[..]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Checksum { .. }),
                "flip at {at}: {err}"
            );
        }
        // Flipping the trailing checksum itself is also a mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            read_serial(&mut &bad[..]).unwrap_err(),
            SnapshotError::Checksum { .. }
        ));
    }

    #[test]
    fn version_and_magic_mismatches_error_typed() {
        let s = churned_serve();
        let bytes = serial_bytes(&s);
        // Bump the version and re-seal the checksum so only the version
        // differs.
        let mut v2 = bytes.clone();
        v2[8] = 2;
        let body = v2.len() - 8;
        let crc = fnv1a64(&v2[..body]).to_le_bytes();
        v2[body..].copy_from_slice(&crc);
        assert!(matches!(
            read_serial(&mut &v2[..]).unwrap_err(),
            SnapshotError::Version {
                found: 2,
                supported: VERSION
            }
        ));
        let mut nomagic = bytes;
        nomagic[0] = b'X';
        assert!(matches!(
            read_serial(&mut &nomagic[..]).unwrap_err(),
            SnapshotError::BadMagic
        ));
    }

    #[test]
    fn kind_mismatch_errors_typed() {
        let g = union_of_spanning_trees(30, 20, 2, 2, 3).graph;
        let mut sh = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 2)).unwrap();
        let mut sharded_bytes = Vec::new();
        write_sharded(&mut sh, &mut sharded_bytes).unwrap();
        assert!(matches!(
            read_serial(&mut &sharded_bytes[..]).unwrap_err(),
            SnapshotError::Kind {
                expected: "serial",
                found: "sharded"
            }
        ));
        let serial_bytes = serial_bytes(&churned_serve());
        assert!(matches!(
            read_sharded(&mut &serial_bytes[..], None).unwrap_err(),
            SnapshotError::Kind {
                expected: "sharded",
                found: "serial"
            }
        ));
    }

    #[test]
    fn shard_count_mismatch_errors_typed() {
        // A sharded payload whose manifest list does not cover its
        // recorded shard count is rejected before any state is adopted.
        let g = union_of_spanning_trees(30, 20, 2, 2, 4).graph;
        let sh = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 3)).unwrap();
        let parts = sh.parts_ref();
        let mut manifests = manifests_of(&parts.inner, sh.shard_map());
        manifests.pop();
        let bytes = frame(KIND_SHARDED, &encode_sharded_payload(&parts, &manifests));
        let err = read_sharded(&mut &bytes[..], None).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ShardMismatch {
                    recorded: 3,
                    manifests: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn manifest_state_disagreement_is_rejected() {
        let g = union_of_spanning_trees(30, 20, 2, 2, 6).graph;
        let sh = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 2)).unwrap();
        let parts = sh.parts_ref();
        let mut manifests = manifests_of(&parts.inner, sh.shard_map());
        manifests[1].state_checksum ^= 1;
        let bytes = frame(KIND_SHARDED, &encode_sharded_payload(&parts, &manifests));
        let err = read_sharded(&mut &bytes[..], None).unwrap_err();
        assert!(matches!(err, SnapshotError::Invalid(_)), "{err}");
    }

    #[test]
    fn sharded_roundtrip_and_reshard() {
        let g = union_of_spanning_trees(60, 45, 2, 2, 8).graph;
        let updates = churn_stream(&g, 60, &ChurnMix::default(), 3);
        let mut sh = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 2)).unwrap();
        for chunk in updates.chunks(20) {
            sh.apply_batch(chunk).unwrap();
            sh.end_epoch().unwrap();
        }
        let mut bytes = Vec::new();
        write_sharded(&mut sh, &mut bytes).unwrap();
        assert!(
            sh.ledger()
                .local_steps_labeled(sparse_alloc_mpc::shard::labels::CHECKPOINT)
                >= 1
        );
        // Same shard count.
        let same = read_sharded(&mut &bytes[..], None).unwrap();
        assert_eq!(same.shards(), 2);
        assert_eq!(same.assignment().mate, sh.assignment().mate);
        assert_eq!(same.stats(), sh.stats());
        assert!(
            same.ledger()
                .local_steps_labeled(sparse_alloc_mpc::shard::labels::RESTORE)
                >= 1
        );
        // Re-shard onto a different count: identical allocation state.
        for target in [1usize, 4] {
            let re = read_sharded(&mut &bytes[..], Some(target)).unwrap();
            assert_eq!(re.shards(), target);
            assert_eq!(re.assignment().mate, sh.assignment().mate);
            re.validate().unwrap();
        }
    }

    #[test]
    fn corrupt_payload_structures_error_not_panic() {
        // Flip payload bytes *and* re-seal the checksum, so the decoder
        // itself must reject the damage (dangling ids, infeasible
        // matching, …) — or, if the flip lands in benign bytes, the
        // restore must still produce a valid engine.
        let s = churned_serve();
        let bytes = serial_bytes(&s);
        let body = bytes.len() - 8;
        let step = (body - HEADER) / 97 + 1;
        for at in (HEADER..body).step_by(step) {
            let mut bad = bytes.clone();
            bad[at] = bad[at].wrapping_add(1);
            let crc = fnv1a64(&bad[..body]).to_le_bytes();
            bad[body..].copy_from_slice(&crc);
            match read_serial(&mut &bad[..]) {
                Ok(engine) => engine.validate().unwrap(),
                Err(e) => assert!(
                    !matches!(e, SnapshotError::Checksum { .. }),
                    "re-sealed flip at {at} must not read as checksum damage"
                ),
            }
        }
    }

    /// A churned engine, its base snapshot bytes + reference, and the
    /// churn stream that continues past the base.
    fn delta_fixture() -> (ServeLoop, Vec<u8>, DeltaBase, Vec<crate::Update>) {
        let g = union_of_spanning_trees(50, 40, 2, 2, 9).graph;
        let updates = churn_stream(&g, 80, &ChurnMix::default(), 5);
        let mut s = ServeLoop::new(g, DynamicConfig::for_eps(0.25));
        for up in &updates[..60] {
            s.apply(up);
        }
        s.end_epoch();
        let bytes = serial_bytes(&s);
        let base = DeltaBase::of_serial(&s, fnv1a64(&bytes));
        (s, bytes, base, updates[60..].to_vec())
    }

    #[test]
    fn delta_roundtrips_and_is_a_distinct_kind() {
        let (mut s, _bytes, base, tail) = delta_fixture();
        for up in &tail {
            s.apply(up);
        }
        s.end_epoch();
        let d = DeltaCheckpoint::of_serial(&s, &base);
        assert_eq!(d.base_checksum, base.checksum);
        assert_eq!(d.epoch, base.epoch + 1);
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        assert_eq!(read_delta(&mut &buf[..]).unwrap(), d);
        // The other readers refuse the kind with a typed error.
        match read_serial(&mut &buf[..]) {
            Err(SnapshotError::Kind { expected, found }) => {
                assert_eq!((expected, found), ("serial", "delta"));
            }
            other => panic!("expected Kind error, got {other:?}"),
        }
        assert!(matches!(
            read_sharded(&mut &buf[..], None),
            Err(SnapshotError::Kind { .. })
        ));
    }

    #[test]
    fn delta_verifies_the_recovered_engine_and_catches_a_short_replay() {
        let (mut live, bytes, base, tail) = delta_fixture();
        for up in &tail {
            live.apply(up);
        }
        live.end_epoch();
        let d = DeltaCheckpoint::of_serial(&live, &base);

        // Recovery: restore the base, re-capture the reference from the
        // *restored* engine, replay the tail — the delta must agree.
        let mut recovered = read_serial(&mut &bytes[..]).unwrap();
        let rebase = DeltaBase::of_serial(&recovered, fnv1a64(&bytes));
        for up in &tail {
            recovered.apply(up);
        }
        recovered.end_epoch();
        d.verify_serial(&recovered, &rebase).unwrap();

        // A replay that stopped short must be rejected.
        let short = read_serial(&mut &bytes[..]).unwrap();
        match d.verify_serial(&short, &rebase) {
            Err(SnapshotError::Invalid(msg)) => {
                assert!(msg.contains("epoch"), "msg: {msg}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // So must a replay onto the wrong base.
        let wrong_base = DeltaBase::of_serial(&recovered, 0xbad);
        match d.verify_serial(&recovered, &wrong_base) {
            Err(SnapshotError::Invalid(msg)) => {
                assert!(msg.contains("base"), "msg: {msg}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn a_delta_is_a_small_fraction_of_a_full_snapshot() {
        let (mut s, bytes, base, tail) = delta_fixture();
        for up in &tail {
            s.apply(up);
        }
        s.end_epoch();
        let d = DeltaCheckpoint::of_serial(&s, &base);
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        let full = serial_bytes(&s);
        assert!(
            buf.len() * 10 <= full.len() * 3,
            "delta is {} bytes, full snapshot {} — the periodic path \
             must stay under 0.3× full",
            buf.len(),
            full.len()
        );
        let _ = bytes;
    }

    #[test]
    fn delta_corruption_is_typed() {
        let (s, _bytes, base, _tail) = delta_fixture();
        let d = DeltaCheckpoint::of_serial(&s, &base);
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        // Flip a payload bit: checksum damage.
        let mut bad = buf.clone();
        bad[HEADER + 2] ^= 0x40;
        assert!(matches!(
            read_delta(&mut &bad[..]),
            Err(SnapshotError::Checksum { .. })
        ));
        // Truncate: typed, never a panic.
        for cut in [0, 7, HEADER, buf.len() - 3] {
            assert!(read_delta(&mut &buf[..cut]).is_err());
        }
        // File helpers roundtrip atomically.
        let path = std::env::temp_dir().join(format!("salloc-delta-{}.bin", std::process::id()));
        save_delta(&d, &path).unwrap();
        assert_eq!(load_delta(&path).unwrap(), d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_errors_chain_their_io_source() {
        use std::error::Error;
        let e = SnapshotError::from(std::io::Error::other("disk fell out"));
        assert!(e.source().is_some());
        assert!(e.source().unwrap().to_string().contains("disk fell out"));
        assert!(SnapshotError::BadMagic.source().is_none());
    }

    #[test]
    fn atomic_save_replaces_and_cleans_up() {
        let s = churned_serve();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("salloc-snap-{}.bin", std::process::id()));
        save_serial(&s, &path).unwrap();
        let r = load_serial(&path).unwrap();
        assert_eq!(r.assignment().mate, s.assignment().mate);
        // Overwrite in place: still readable, no .tmp residue.
        save_serial(&s, &path).unwrap();
        assert!(load_serial(&path).is_ok());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        let _ = std::fs::remove_file(&path);
    }
}

//! The update vocabulary of the dynamic engine.

use sparse_alloc_graph::io::{ByteReader, ByteWriter, IoError};
use sparse_alloc_graph::{LeftId, RightId};

/// One mutation of the live allocation instance.
///
/// The left side churns (clients arrive and depart, their edge sets
/// change); the right side is long-lived but its capacities move. This is
/// exactly the serving setting the paper's introduction motivates
/// (impressions/jobs on the left, advertisers/servers on the right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// A new left vertex arrives with the given neighbor set; the engine
    /// assigns it the next free id (returned by
    /// [`crate::ServeLoop::apply`]).
    Arrive {
        /// Neighbors in `R` (deduplicated on application).
        neighbors: Vec<RightId>,
    },
    /// Left vertex `u` departs: all its edges are removed and its match
    /// (if any) is released. The id stays allocated with degree 0, so a
    /// later [`Update::InsertEdge`] can revive the vertex.
    Depart {
        /// The departing left vertex.
        u: LeftId,
    },
    /// Insert edge `(u, v)`. A no-op if the edge is already live.
    InsertEdge {
        /// Left endpoint (must be `< n_left`).
        u: LeftId,
        /// Right endpoint.
        v: RightId,
    },
    /// Delete edge `(u, v)`. A no-op if the edge is not live.
    DeleteEdge {
        /// Left endpoint.
        u: LeftId,
        /// Right endpoint.
        v: RightId,
    },
    /// Set the capacity of right vertex `v` to `cap ≥ 1`. Decreases evict
    /// excess matches (which the engine immediately tries to re-place).
    SetCapacity {
        /// The right vertex.
        v: RightId,
        /// The new capacity.
        cap: u64,
    },
}

// The one wire form of an update, shared by the networked route phase
// (`net`) and the write-ahead log (`wal`): a packed position+kind word
// followed by only the operands the variant actually carries. One codec
// means a batch that round-tripped the wire and a batch replayed from
// the log are byte-for-byte the same input to the engine, and the
// variant-shaped layout is what keeps the WAL's amortized cost at a few
// bytes per update (the log is append-fsynced on the serving hot path).

/// Batch positions share a `u32` with the 3-bit kind tag, capping a
/// single encoded batch at `2^29` updates — far beyond any epoch.
const MAX_BATCH: u32 = 1 << 29;

/// Encode `(idx, up)` into `w` (`idx` is the update's batch position).
pub(crate) fn put_update(w: &mut ByteWriter, idx: u32, up: &Update) {
    debug_assert!(
        idx < MAX_BATCH,
        "batch position {idx} overflows the tag word"
    );
    let mut tagged = |kind: u32| w.put_u32(idx << 3 | kind);
    match up {
        Update::Arrive { neighbors } => {
            tagged(0);
            w.put_u32(neighbors.len() as u32);
            for &v in neighbors {
                w.put_u32(v);
            }
        }
        Update::Depart { u } => {
            tagged(1);
            w.put_u32(*u);
        }
        Update::InsertEdge { u, v } => {
            tagged(2);
            w.put_u32(*u);
            w.put_u32(*v);
        }
        Update::DeleteEdge { u, v } => {
            tagged(3);
            w.put_u32(*u);
            w.put_u32(*v);
        }
        Update::SetCapacity { v, cap } => {
            tagged(4);
            w.put_u32(*v);
            w.put_u64(*cap);
        }
    }
}

/// Decode one [`put_update`] record; a kind tag outside the vocabulary
/// or a neighbor count past the payload is a typed parse error, never a
/// panic.
pub(crate) fn take_update(r: &mut ByteReader) -> Result<(u32, Update), IoError> {
    let word = r.take_u32()?;
    let (idx, kind) = (word >> 3, word & 7);
    let up = match kind {
        0 => {
            let n = r.take_u32()? as usize;
            if n * 4 > r.remaining() {
                return Err(IoError::Parse(format!(
                    "neighbor count {n} exceeds the remaining {} bytes",
                    r.remaining()
                )));
            }
            let neighbors = (0..n).map(|_| r.take_u32()).collect::<Result<_, _>>()?;
            Update::Arrive { neighbors }
        }
        1 => Update::Depart { u: r.take_u32()? },
        2 => Update::InsertEdge {
            u: r.take_u32()?,
            v: r.take_u32()?,
        },
        3 => Update::DeleteEdge {
            u: r.take_u32()?,
            v: r.take_u32()?,
        },
        4 => Update::SetCapacity {
            v: r.take_u32()?,
            cap: r.take_u64()?,
        },
        other => return Err(IoError::Parse(format!("unknown update kind {other}"))),
    };
    Ok((idx, up))
}

//! The update vocabulary of the dynamic engine.

use sparse_alloc_graph::{LeftId, RightId};

/// One mutation of the live allocation instance.
///
/// The left side churns (clients arrive and depart, their edge sets
/// change); the right side is long-lived but its capacities move. This is
/// exactly the serving setting the paper's introduction motivates
/// (impressions/jobs on the left, advertisers/servers on the right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// A new left vertex arrives with the given neighbor set; the engine
    /// assigns it the next free id (returned by
    /// [`crate::ServeLoop::apply`]).
    Arrive {
        /// Neighbors in `R` (deduplicated on application).
        neighbors: Vec<RightId>,
    },
    /// Left vertex `u` departs: all its edges are removed and its match
    /// (if any) is released. The id stays allocated with degree 0, so a
    /// later [`Update::InsertEdge`] can revive the vertex.
    Depart {
        /// The departing left vertex.
        u: LeftId,
    },
    /// Insert edge `(u, v)`. A no-op if the edge is already live.
    InsertEdge {
        /// Left endpoint (must be `< n_left`).
        u: LeftId,
        /// Right endpoint.
        v: RightId,
    },
    /// Delete edge `(u, v)`. A no-op if the edge is not live.
    DeleteEdge {
        /// Left endpoint.
        u: LeftId,
        /// Right endpoint.
        v: RightId,
    },
    /// Set the capacity of right vertex `v` to `cap ≥ 1`. Decreases evict
    /// excess matches (which the engine immediately tries to re-place).
    SetCapacity {
        /// The right vertex.
        v: RightId,
        /// The new capacity.
        cap: u64,
    },
}

//! Distributed serving: shard the dynamic engine across the MPC simulator.
//!
//! [`ShardedServeLoop`] partitions the serving state — the
//! [`DeltaGraph`](sparse_alloc_graph::DeltaGraph) overlay, the β-levels,
//! and the maintained matching — across the machines of an
//! [`mpc`](sparse_alloc_mpc) cluster by vertex ownership
//! ([`ShardMap`]): every right (and left) vertex has a deterministic home
//! machine, the partitioning pattern of low-memory MPC matching
//! algorithms (Brandt–Fischer–Uitto, arXiv:1807.05374; Ghaffari–Uitto,
//! arXiv:1807.06251). Each epoch runs as a sequence of ledger-accounted
//! phases:
//!
//! 1. **Route** ([`labels::ROUTE_UPDATES`]) — the update batch is shipped
//!    to the shards owning the update balls through real
//!    [`Cluster`] exchanges, chunked so no machine ever receives more
//!    than half its space budget in one round.
//! 2. **Repair waves** ([`labels::REPAIR_WAVE`]) — the
//!    [`batch`](crate::batch) scheduler groups updates whose conservative
//!    balls are vertex-disjoint; each wave repairs its balls in parallel
//!    (disjointness makes the repairs commute, so the result equals
//!    serial application — the property `tests/properties.rs` proves).
//!    Augmenting walks that cross shard boundaries pay for every foreign
//!    right they flip: the wave's round carries those handoff words.
//! 3. **Sweep** — the `k/(k+1)` certificate sweep: the free-left census
//!    is sorted by id (distributed sample sort — the global sweep order),
//!    the sweep runs, and the matching migrations it produced are
//!    committed to the shards owning the receiving rights
//!    ([`labels::SWEEP_COMMIT`]), followed by an aggregated state census
//!    and a broadcast of the epoch summary.
//!
//! Every phase ends with [`Ledger::assert_space_within`] against the
//! per-machine budget (the simulated analogue of the paper's `n^δ`
//! regime, see [`ShardedServeLoop::space_budget`]), so an algorithm that
//! drifts out of its claimed space regime fails loudly.
//!
//! The simulator executes shard-local work in-process on the
//! authoritative engine (exactly like `core::mpc_exec` runs Algorithm 2):
//! what is *distributed* is the state ownership, the scheduling, and the
//! communication accounting — and the headline contract is that for any
//! update sequence and any shard count the maintained allocation is
//! **identical** to the serial [`ServeLoop`]'s.

use sparse_alloc_graph::{Assignment, Bipartite, LeftId, RightId};
use sparse_alloc_mpc::ledger::RoundRecord;
use sparse_alloc_mpc::primitives::{aggregate_by_key, broadcast_value, sort_by_key};
use sparse_alloc_mpc::shard::labels;
use sparse_alloc_mpc::{Cluster, Ledger, MpcConfig, MpcError, ShardMap, Words};
use sparse_alloc_obs::{Counter, Dist, Phase, Registry, Tracer};

use crate::batch::{schedule, BatchSchedule, UpdatePlan};
use crate::serve::{
    DynamicConfig, EpochReport, ServeLoop, ServeParts, ServePartsRef, ServeStats, WaveUpdateResult,
};
use crate::update::Update;

/// Everything a warm restart persists of a [`ShardedServeLoop`]: the
/// serial engine's parts plus the sharding configuration and counters.
/// The ledger's round history is *not* persisted — accounting restarts
/// with a [`labels::RESTORE`] phase, the same way a real redeployment
/// starts a fresh accounting epoch — but the serving counters
/// ([`ShardedStats`]) carry over so lifetime reports stay monotone.
#[derive(Debug, Clone)]
pub(crate) struct ShardedParts {
    pub(crate) inner: ServeParts,
    pub(crate) shards: usize,
    pub(crate) slack: usize,
    pub(crate) footprint_cap: usize,
    pub(crate) wave_threads: usize,
    pub(crate) stats: ShardedStats,
}

/// Borrowed view of a [`ShardedServeLoop`]'s persistent state — the
/// encode-side twin of [`ShardedParts`], so checkpoints never clone the
/// engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardedPartsRef<'a> {
    pub(crate) inner: ServePartsRef<'a>,
    pub(crate) shards: usize,
    pub(crate) slack: usize,
    pub(crate) footprint_cap: usize,
    pub(crate) wave_threads: usize,
    pub(crate) stats: &'a ShardedStats,
}

/// Configuration of a [`ShardedServeLoop`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of machines the state is sharded across.
    pub shards: usize,
    /// Slack factor of the per-machine space budget: a machine may hold
    /// `slack ×` its fair share of the state (hash imbalance, message
    /// staging). See [`ShardedServeLoop::space_budget`].
    pub space_slack: usize,
    /// Footprint-size cap of the conflict scheduler: an update whose ball
    /// reaches this many rights is escalated to a *global* conflict
    /// (serialized against the whole batch) instead of being enumerated.
    /// Small caps bound scheduling work under bulk churn but destroy wave
    /// occupancy; large caps enumerate — and pairwise-compare — wide
    /// balls. See [`batch::FOOTPRINT_CAP`](crate::batch::FOOTPRINT_CAP)
    /// (the default) for the full trade-off discussion.
    pub footprint_cap: usize,
    /// Worker threads for wave execution (`0` = one per available CPU).
    /// Disjoint-footprint repairs of one wave run concurrently on real
    /// threads; any value yields the identical engine state (commuting
    /// repairs), so this knob trades wall time only.
    pub wave_threads: usize,
    /// The serial engine's configuration.
    pub dynamic: DynamicConfig,
}

impl ShardedConfig {
    /// The standard configuration: [`DynamicConfig::for_eps`] sharded
    /// `shards` ways with 8× space slack, the default footprint cap, and
    /// auto-sized wave threads — with the eager walk budget lowered to 1
    /// (footprint radius 1). Tight footprints are what give batches wide
    /// conflict-free waves on degree-heavy instances; the price is that
    /// re-routing moves from the eager per-update repairs into the epoch
    /// sweep. Serial-vs-sharded comparisons must build the serial engine
    /// from this `dynamic` config: the equivalence contract is
    /// per-config, and the eager budget changes which walks are flipped
    /// when.
    pub fn for_eps(eps: f64, shards: usize) -> Self {
        let mut dynamic = DynamicConfig::for_eps(eps);
        dynamic.eager_walk_budget = 1;
        ShardedConfig {
            shards,
            space_slack: 8,
            footprint_cap: crate::batch::FOOTPRINT_CAP,
            wave_threads: 0,
            dynamic,
        }
    }
}

/// Lifetime counters of a [`ShardedServeLoop`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Update batches applied.
    pub batches: usize,
    /// Repair waves executed across all batches.
    pub waves: usize,
    /// Updates routed to their owning shards.
    pub routed_updates: usize,
    /// Words of cross-shard walk handoff traffic.
    pub handoff_words: u64,
    /// Matching migrations committed by certificate sweeps.
    pub migrations: usize,
    /// Updates escalated to global conflicts by the footprint cap.
    pub escalations: usize,
    /// Widest wave scheduled so far (updates repairing in parallel).
    pub widest_wave: usize,
    /// Updates placed above wave 0 — serialized behind a conflicting
    /// ball (or a global). The balance of a schedule shows in
    /// `widest_wave` staying near `routed_updates / waves`; this counter
    /// shows how much of the batch conflicts at all.
    pub delayed: usize,
}

/// What one [`ShardedServeLoop::apply_batch`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Updates in the batch.
    pub updates: usize,
    /// Parallel repair waves the batch was scheduled into.
    pub waves: usize,
    /// Updates serialized behind a conflicting ball.
    pub delayed: usize,
    /// Cross-shard walk handoff words this batch.
    pub handoff_words: u64,
    /// Updates escalated to global conflicts this batch.
    pub escalations: usize,
    /// Widest wave of this batch.
    pub widest_wave: usize,
}

/// What one [`ShardedServeLoop::end_epoch`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedEpochReport {
    /// The serial engine's epoch report (sweep, repair, rebuild).
    pub serial: EpochReport,
    /// Matching migrations committed across shards.
    pub migrations: usize,
    /// Largest per-machine resident state after the epoch, in words.
    pub peak_shard_words: usize,
    /// The space budget the epoch was checked against.
    pub budget: usize,
}

/// An [`Update`] in wire form (what the routing exchange ships).
#[derive(Debug, Clone)]
struct UpdateMsg {
    kind: u32,
    a: u32,
    b: u32,
    cap: u64,
    neighbors: Vec<u32>,
}

impl Words for UpdateMsg {
    fn words(&self) -> usize {
        4 + self.neighbors.words()
    }
}

fn encode(up: &Update) -> UpdateMsg {
    let (kind, a, b, cap, neighbors) = match up {
        Update::Arrive { neighbors } => (0, 0, 0, 0, neighbors.clone()),
        Update::Depart { u } => (1, *u, 0, 0, Vec::new()),
        Update::InsertEdge { u, v } => (2, *u, *v, 0, Vec::new()),
        Update::DeleteEdge { u, v } => (3, *u, *v, 0, Vec::new()),
        Update::SetCapacity { v, cap } => (4, *v, 0, *cap, Vec::new()),
    };
    UpdateMsg {
        kind,
        a,
        b,
        cap,
        neighbors,
    }
}

impl UpdateMsg {
    fn decode(&self) -> Update {
        match self.kind {
            0 => Update::Arrive {
                neighbors: self.neighbors.clone(),
            },
            1 => Update::Depart { u: self.a },
            2 => Update::InsertEdge {
                u: self.a,
                v: self.b,
            },
            3 => Update::DeleteEdge {
                u: self.a,
                v: self.b,
            },
            _ => Update::SetCapacity {
                v: self.a,
                cap: self.cap,
            },
        }
    }
}

/// One update batch after scheduling + routing but before any wave ran:
/// the state [`ShardedServeLoop::stage_batch`] hands whichever executor
/// drives the waves (the in-process threaded one, or the p2p engine
/// shipping each wave to its owning shard worker).
#[derive(Debug)]
pub(crate) struct StagedBatch {
    /// The conflict-wave schedule.
    pub(crate) sched: BatchSchedule,
    /// The *delivered* update copies (the engine consumes these, not the
    /// caller's slice — a routing bug surfaces as divergence, not
    /// vanishes).
    pub(crate) routed: Vec<Option<Update>>,
    /// Batch ordinal, for trace spans.
    pub(crate) batch_no: u64,
    budget: usize,
    n_updates: usize,
    /// The batch's simulated-cost ledger (absorbed on finish).
    epoch: Ledger,
    /// Update indices sorted by wave.
    order: Vec<usize>,
    /// `order` ranges of the waves, in execution order.
    bounds: Vec<(usize, usize)>,
    handoff_total: u64,
}

impl StagedBatch {
    /// Number of waves.
    pub(crate) fn waves(&self) -> usize {
        self.bounds.len()
    }

    /// Batch-order update indices of wave `w`.
    pub(crate) fn wave_idxs(&self, w: usize) -> &[usize] {
        let (b, e) = self.bounds[w];
        &self.order[b..e]
    }
}

/// The sharded serving engine. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedServeLoop {
    inner: ServeLoop,
    map: ShardMap,
    slack: usize,
    footprint_cap: usize,
    wave_threads: usize,
    ledger: Ledger,
    stats: ShardedStats,
    /// Phase tracer: the sharded loop spans its MPC phases
    /// (schedule/route/wave/commit/census) on the same stream the serial
    /// engine spans its sweeps, each span carrying measured nanoseconds
    /// *and* the ledger's simulated words for the phase.
    tracer: Tracer,
}

impl ShardedServeLoop {
    /// Solve `base` with the static stack and start serving from that
    /// state, sharded `cfg.shards` ways. The initial per-shard
    /// compactions ([`DeltaGraph::partition_by_right`]) are materialized
    /// once to account (and check) the resident state distribution.
    ///
    /// [`DeltaGraph::partition_by_right`]: sparse_alloc_graph::DeltaGraph::partition_by_right
    pub fn new(base: Bipartite, cfg: ShardedConfig) -> Result<Self, MpcError> {
        assert!(cfg.shards >= 1, "at least one shard");
        assert!(cfg.space_slack >= 1, "space slack ≥ 1");
        let inner = ServeLoop::new(base, cfg.dynamic);
        let map = ShardMap::new(cfg.shards);
        let wave_threads = if cfg.wave_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            cfg.wave_threads
        };
        let mut this = ShardedServeLoop {
            inner,
            map,
            slack: cfg.space_slack,
            footprint_cap: cfg.footprint_cap.max(1),
            wave_threads,
            ledger: Ledger::default(),
            stats: ShardedStats::default(),
            tracer: Tracer::default(),
        };
        // Cross-check the ownership invariant against the materialized
        // per-shard compactions — debug builds only: release builds derive
        // the same residency from shard_state_words without building
        // `shards` graph copies.
        #[cfg(debug_assertions)]
        {
            let parts = this
                .inner
                .graph()
                .partition_by_right(cfg.shards, |v| this.map.owner_of_right(v));
            debug_assert_eq!(
                parts.iter().map(Bipartite::m).sum::<usize>(),
                this.inner.graph().m(),
                "ownership covers each live edge exactly once"
            );
        }
        let words = this.shard_state_words();
        let budget = this.space_budget();
        let mut epoch = Ledger::default();
        epoch.observe_local(
            labels::SHARD_STATE,
            words.iter().copied().max().unwrap_or(0),
            words.iter().map(|&w| w as u64).sum(),
        );
        epoch.assert_space_within(budget)?;
        this.ledger.absorb(&epoch);
        Ok(this)
    }

    /// The per-machine space budget, in words — the simulated analogue of
    /// the paper's `n^δ` regime: with `N = Θ(W / S)` machines for state of
    /// `W` words, a machine's budget is `slack × ⌈W / N⌉` (floor 128 so
    /// degenerate instances keep headroom for control messages). It is
    /// recomputed from the *live* graph, so the budget tracks the instance
    /// the loop actually serves.
    pub fn space_budget(&self) -> usize {
        let dg = self.inner.graph();
        let total = 2 * dg.n_left() + 2 * dg.n_right() + dg.m();
        (self.slack * total.div_ceil(self.map.shards())).max(128)
    }

    /// Borrow everything a warm restart persists — no copy; see
    /// [`snapshot`](crate::snapshot) for the wire form.
    pub(crate) fn parts_ref(&self) -> ShardedPartsRef<'_> {
        ShardedPartsRef {
            inner: self.inner.parts_ref(),
            shards: self.map.shards(),
            slack: self.slack,
            footprint_cap: self.footprint_cap,
            wave_threads: self.wave_threads,
            stats: &self.stats,
        }
    }

    /// Rebuild a sharded loop from exported parts, optionally re-sharding
    /// onto `shards_override` machines (ownership is a pure function of
    /// the vertex id, so re-sharding is a re-keying, not a migration).
    /// The restore is recorded as a [`labels::RESTORE`] accounting phase
    /// and the resident state is re-checked against the (possibly new)
    /// per-machine budget — a restore that would not fit the claimed
    /// space regime fails here instead of on the first epoch.
    pub(crate) fn from_parts(
        p: ShardedParts,
        shards_override: Option<usize>,
    ) -> Result<Self, String> {
        let shards = shards_override.unwrap_or(p.shards);
        if shards == 0 {
            return Err("at least one shard".into());
        }
        if p.slack == 0 {
            return Err("space slack ≥ 1".into());
        }
        // Live configs forbid these zeros, so a snapshot carrying one is
        // corrupt — reject it like every sibling field instead of
        // silently substituting a value the snapshot never contained.
        if p.footprint_cap == 0 {
            return Err("footprint cap ≥ 1".into());
        }
        if p.wave_threads == 0 {
            return Err("wave threads ≥ 1".into());
        }
        let inner = ServeLoop::from_parts(p.inner)?;
        let mut this = ShardedServeLoop {
            inner,
            map: ShardMap::new(shards),
            slack: p.slack,
            footprint_cap: p.footprint_cap,
            wave_threads: p.wave_threads,
            ledger: Ledger::default(),
            stats: p.stats,
            tracer: Tracer::default(),
        };
        let words = this.shard_state_words();
        let budget = this.space_budget();
        let mut epoch = Ledger::default();
        epoch.observe_local(
            labels::RESTORE,
            words.iter().copied().max().unwrap_or(0),
            words.iter().map(|&w| w as u64).sum(),
        );
        epoch
            .assert_space_within(budget)
            .map_err(|e| format!("restored state leaves the space regime: {e}"))?;
        this.ledger.absorb(&epoch);
        Ok(this)
    }

    /// The vertex-ownership map the loop shards under.
    pub(crate) fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Mutable accounting access for the networked engine
    /// ([`crate::net`]): its phases move *measured* bytes over a real
    /// transport, and recording them here keeps wire traffic and the
    /// simulator's word accounting on one ledger.
    pub(crate) fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Record a checkpoint as a ledger phase: each machine stages its
    /// manifest and serialized slice locally (round-free — the bytes
    /// leave through the host, not the cluster).
    pub(crate) fn note_checkpoint(&mut self) {
        let words = self.shard_state_words();
        self.ledger.observe_local(
            labels::CHECKPOINT,
            words.iter().copied().max().unwrap_or(0),
            words.iter().map(|&w| w as u64).sum(),
        );
    }

    /// Resident state per shard, in words: each right vertex pays its
    /// capacity, level, and adjacency; each left vertex its id and mate.
    pub(crate) fn shard_state_words(&self) -> Vec<usize> {
        let dg = self.inner.graph();
        let mut w = vec![0usize; self.map.shards()];
        for v in 0..dg.n_right() as u32 {
            w[self.map.owner_of_right(v)] += 2 + dg.right_degree(v);
        }
        for u in 0..dg.n_left() as u32 {
            w[self.map.owner_of_left(u)] += 2;
        }
        w
    }

    /// Route `items` to `dest` through strict cluster exchanges, chunked
    /// so no machine sends or receives more than `budget / 2` words in one
    /// round (the streaming ingestion pattern: a batch bigger than the
    /// space budget takes proportionally more rounds, it does not violate
    /// the regime). A *single message* wider than the budget — e.g. an
    /// arrival whose neighbor list alone outgrows a machine — cannot be
    /// split and fails with [`MpcError::SpaceExceeded`]: such an instance
    /// genuinely leaves the space regime (the paper's remedy is the
    /// vertex-split reduction, `graph::reduction`), and this simulator
    /// surfaces regime violations instead of hiding them. The per-chunk
    /// ledgers accumulate into `epoch`; the delivered items are returned
    /// so callers consume what the cluster actually shipped.
    fn route_chunked<T, F>(
        &self,
        epoch: &mut Ledger,
        label: &'static str,
        items: Vec<T>,
        dest: F,
        budget: usize,
    ) -> Result<Vec<T>, MpcError>
    where
        T: Words + Send + Sync,
        F: Fn(&T) -> usize + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.map.shards();
        let cap = (budget / 2).max(1);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut chunk: Vec<T> = Vec::new();
        let mut vol = vec![0usize; p];
        for item in items {
            let d = dest(&item);
            let w = item.words().max(1);
            if !chunk.is_empty() && vol[d] + w > cap {
                chunks.push(std::mem::take(&mut chunk));
                vol.iter_mut().for_each(|v| *v = 0);
            }
            vol[d] += w;
            chunk.push(item);
        }
        chunks.push(chunk);
        let mut delivered = Vec::new();
        for chunk in chunks {
            let cluster = Cluster::from_items(MpcConfig::strict(p, budget), chunk)?;
            let cluster = cluster.exchange_by(label, |t| dest(t))?;
            let (items, ledger) = cluster.into_items();
            delivered.extend(items);
            epoch.absorb(&ledger);
        }
        Ok(delivered)
    }

    /// Schedule + route one epoch's update batch without running any
    /// wave: everything the coordinator does before repairs execute,
    /// shared by the threaded wave executor ([`Self::apply_batch`]) and
    /// the p2p engine (which ships each wave to the shard workers and
    /// drives [`Self::finish_wave`] / [`Self::finish_batch`] itself).
    /// Returns `None` for an empty batch.
    pub(crate) fn stage_batch(
        &mut self,
        updates: &[Update],
    ) -> Result<Option<StagedBatch>, MpcError> {
        if updates.is_empty() {
            return Ok(None);
        }
        self.stats.batches += 1;
        let batch_no = self.stats.batches as u64;
        let budget = self.space_budget();
        let mut sp = self.tracer.span(Phase::BatchSchedule, batch_no);
        let sched: BatchSchedule = schedule(
            self.inner.graph(),
            updates,
            self.inner.config(),
            &self.map,
            self.footprint_cap,
            self.wave_threads,
        )?;
        let mut epoch = Ledger::default();

        // The footprints are per-machine staged scheduling state: account
        // them (and check them against the budget) like any other
        // resident phase data.
        let mut staged = vec![0usize; self.map.shards()];
        for plan in &sched.plans {
            staged[plan.owner] += plan.footprint_len as usize;
        }
        let staged_total: u64 = staged.iter().map(|&w| w as u64).sum();
        epoch.observe_local(
            labels::BATCH_SCHEDULE,
            staged.iter().copied().max().unwrap_or(0),
            staged_total,
        );
        sp.set_words(staged_total);
        let ns = sp.close();
        {
            let obs = self.inner.obs_mut();
            obs.phase_ns(Phase::BatchSchedule, ns);
            obs.observe(Dist::BatchSize, updates.len() as u64);
            for plan in &sched.plans {
                obs.observe(Dist::BallSize, plan.footprint_len as u64);
                obs.observe(Dist::FootprintRadius, plan.depth as u64);
            }
        }

        // Phase 1 — route the batch to the owning shards. The engine
        // consumes the *delivered* copies, not the caller's slice: a
        // routing bug would surface as divergence from serial, not vanish.
        let mut sp = self.tracer.span(Phase::RouteUpdates, batch_no);
        let msgs: Vec<(u32, u32, UpdateMsg)> = updates
            .iter()
            .zip(&sched.plans)
            .enumerate()
            .map(|(i, (up, plan))| (plan.owner as u32, i as u32, encode(up)))
            .collect();
        let delivered = self.route_chunked(
            &mut epoch,
            labels::ROUTE_UPDATES,
            msgs,
            |t| t.0 as usize,
            budget,
        )?;
        let mut routed: Vec<Option<Update>> = vec![None; updates.len()];
        for (_, i, msg) in &delivered {
            routed[*i as usize] = Some(msg.decode());
        }
        self.stats.routed_updates += updates.len();
        sp.set_words(epoch.words_labeled(labels::ROUTE_UPDATES));
        let ns = sp.close();
        let obs = self.inner.obs_mut();
        obs.phase_ns(Phase::RouteUpdates, ns);
        obs.inc(Counter::RoutedUpdates, updates.len() as u64);

        // Wave order: update indices grouped by wave, waves ascending.
        let mut order: Vec<usize> = (0..updates.len()).collect();
        order.sort_by_key(|&i| sched.plans[i].wave);
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(sched.waves);
        let mut at = 0usize;
        while at < order.len() {
            let wave = sched.plans[order[at]].wave;
            let begin = at;
            while at < order.len() && sched.plans[order[at]].wave == wave {
                at += 1;
            }
            bounds.push((begin, at));
        }
        Ok(Some(StagedBatch {
            sched,
            routed,
            batch_no,
            budget,
            n_updates: updates.len(),
            epoch,
            order,
            bounds,
            handoff_total: 0,
        }))
    }

    /// Tally one executed wave's simulated cross-shard repair traffic
    /// (rights touched outside the owning shard) into `sent`/`recv`.
    /// Returns the moved words. Shared by both executors so the
    /// simulated cost model cannot drift between them.
    fn tally_wave(
        map: &ShardMap,
        plans: &[UpdatePlan],
        idxs: &[usize],
        results: &[WaveUpdateResult],
        sent: &mut [u64],
        recv: &mut [u64],
    ) -> u64 {
        sent.fill(0);
        recv.fill(0);
        for (&i, result) in idxs.iter().zip(results) {
            debug_assert_eq!(
                result.arrived, plans[i].arrive_id,
                "scheduler and engine agree on arrival ids"
            );
            let owner = plans[i].owner;
            for &r in &result.touched {
                let o = map.owner_of_right(r);
                if o != owner {
                    sent[owner] += 1;
                    recv[o] += 1;
                }
            }
        }
        recv.iter().sum()
    }

    /// Absorb one executed wave into the staged batch's accounting: the
    /// simulated `repair_wave` round, the wave counters, and the width
    /// observation. The p2p engine calls this after replaying a remote
    /// wave's outcomes; `ns` is the wave's measured wall time.
    pub(crate) fn finish_wave(
        &mut self,
        staged: &mut StagedBatch,
        idxs: &[usize],
        results: &[WaveUpdateResult],
        ns: u64,
    ) -> u64 {
        let p = self.map.shards();
        let mut sent = vec![0u64; p];
        let mut recv = vec![0u64; p];
        let words = Self::tally_wave(
            &self.map,
            &staged.sched.plans,
            idxs,
            results,
            &mut sent,
            &mut recv,
        );
        staged.epoch.record(RoundRecord {
            words_moved: words,
            max_sent: sent.iter().copied().max().unwrap_or(0) as usize,
            max_received: recv.iter().copied().max().unwrap_or(0) as usize,
            max_storage: 0,
            total_storage: 0,
            label: labels::REPAIR_WAVE,
        });
        staged.handoff_total += words;
        self.stats.waves += 1;
        let obs = self.inner.obs_mut();
        obs.phase_ns(Phase::RepairWave, ns);
        obs.observe(Dist::WaveWidth, idxs.len() as u64);
        words
    }

    /// Close out a staged batch after every wave ran: fold the schedule
    /// stats, assert the space budget, absorb the epoch ledger.
    pub(crate) fn finish_batch(&mut self, staged: StagedBatch) -> Result<BatchReport, MpcError> {
        self.stats.handoff_words += staged.handoff_total;
        self.stats.escalations += staged.sched.escalations;
        self.stats.delayed += staged.sched.delayed;
        let obs = self.inner.obs_mut();
        obs.inc(Counter::HandoffWords, staged.handoff_total);
        obs.inc(Counter::Escalations, staged.sched.escalations as u64);
        let widest = staged.sched.widths.iter().copied().max().unwrap_or(0);
        self.stats.widest_wave = self.stats.widest_wave.max(widest);

        staged.epoch.assert_space_within(staged.budget)?;
        self.ledger.absorb(&staged.epoch);
        Ok(BatchReport {
            updates: staged.n_updates,
            waves: staged.sched.waves,
            delayed: staged.sched.delayed,
            handoff_words: staged.handoff_total,
            escalations: staged.sched.escalations,
            widest_wave: widest,
        })
    }

    /// Apply one epoch's update batch: schedule conflict-free waves,
    /// route every update to the shard owning its ball, and repair wave
    /// by wave — the disjoint-footprint repairs of a wave on real worker
    /// threads ([`ServeLoop`]'s wave executor; disjoint balls commute, so
    /// the engine state equals serial application of the batch in arrival
    /// order for every thread count).
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, MpcError> {
        let Some(mut staged) = self.stage_batch(updates)? else {
            return Ok(BatchReport::default());
        };

        // Repair waves run in order; inside a wave, non-global
        // nonempty-footprint repairs fan out over worker threads (any
        // order would do: the balls are disjoint), while globals and
        // pure no-ops stay on this thread. Per-wave scratch is reused
        // across the hundreds of waves a batch typically runs — the
        // per-wave fixed cost is what the one-box gate measures against
        // serial. The wave tally writes only disjoint `staged` fields
        // (`epoch`, `handoff_total`), so the borrow of `routed` held by
        // `wave_updates` can persist across it.
        let mut wave_updates: Vec<&Update> = Vec::new();
        let mut parallel_ok: Vec<bool> = Vec::new();
        let mut arrive_ids: Vec<Option<u32>> = Vec::new();
        let mut sent = vec![0u64; self.map.shards()];
        let mut recv = vec![0u64; self.map.shards()];
        for &(begin, end) in &staged.bounds {
            let idxs = &staged.order[begin..end];
            let mut spw = self.tracer.span(Phase::RepairWave, staged.batch_no);
            wave_updates.clear();
            parallel_ok.clear();
            arrive_ids.clear();
            for &i in idxs {
                wave_updates.push(
                    staged.routed[i]
                        .as_ref()
                        .expect("every update was delivered"),
                );
                parallel_ok
                    .push(!staged.sched.plans[i].global && staged.sched.plans[i].footprint_len > 0);
                // The wave may run arrivals out of batch order (that is
                // the point of width balancing): hand the engine the ids
                // staging precomputed so each arrival lands in its serial
                // slot.
                arrive_ids.push(staged.sched.plans[i].arrive_id);
            }
            let results =
                self.inner
                    .apply_wave(&wave_updates, &parallel_ok, &arrive_ids, self.wave_threads);

            let words = Self::tally_wave(
                &self.map,
                &staged.sched.plans,
                idxs,
                &results,
                &mut sent,
                &mut recv,
            );
            staged.epoch.record(RoundRecord {
                words_moved: words,
                max_sent: sent.iter().copied().max().unwrap_or(0) as usize,
                max_received: recv.iter().copied().max().unwrap_or(0) as usize,
                max_storage: 0,
                total_storage: 0,
                label: labels::REPAIR_WAVE,
            });
            staged.handoff_total += words;
            self.stats.waves += 1;
            spw.set_words(words);
            let nsw = spw.close();
            let obs = self.inner.obs_mut();
            obs.phase_ns(Phase::RepairWave, nsw);
            obs.observe(Dist::WaveWidth, idxs.len() as u64);
        }
        self.finish_batch(staged)
    }

    /// Close the epoch as a ledger-accounted MPC phase: sort the free-left
    /// census (the global sweep order), run the certificate sweep, commit
    /// the resulting matching migrations to the shards owning the
    /// receiving rights, aggregate the state census, and broadcast the
    /// epoch summary. Fails with [`MpcError::SpaceExceeded`] if any phase
    /// (or the resident state) leaves the space budget.
    pub fn end_epoch(&mut self) -> Result<ShardedEpochReport, MpcError> {
        let budget = self.space_budget();
        let p = self.map.shards();
        let mut epoch = Ledger::default();

        // Sweep order: distributed sample sort of the free-left census.
        let frees: Vec<u32> = (0..self.inner.graph().n_left() as u32)
            .filter(|&u| self.inner.query(u).is_none())
            .collect();
        let cluster = Cluster::from_items(MpcConfig::strict(p, budget), frees)?;
        let cluster = sort_by_key(cluster, |&u| u)?;
        let (_, sort_ledger) = cluster.into_items();
        epoch.absorb(&sort_ledger);

        let before = self.inner.assignment().mate;
        let serial = self.inner.end_epoch();

        // Commit phase: every changed pair migrates to the shard owning
        // its new right (unmatches go home to the old right's owner).
        let after = self.inner.assignment().mate;
        let mut migrations: Vec<(u32, u32, u32)> = Vec::new();
        for (u, &now) in after.iter().enumerate() {
            let was = before.get(u).copied().flatten();
            if was != now {
                migrations.push((
                    u as u32,
                    was.unwrap_or(u32::MAX),
                    now.map_or(u32::MAX, |v| v),
                ));
            }
        }
        let n_migrations = migrations.len();
        self.stats.migrations += n_migrations;
        let epoch_no = self.inner.stats().epochs as u64;
        // The serial core already spanned the sweep half of SweepCommit;
        // this sibling span times the distributed commit of its
        // migrations (same phase, same histogram, no nesting).
        let mut sp = self.tracer.span(Phase::SweepCommit, epoch_no);
        let map = self.map;
        let committed = self.route_chunked(
            &mut epoch,
            labels::SWEEP_COMMIT,
            migrations,
            move |&(_, from, to)| {
                if to != u32::MAX {
                    map.owner_of_right(to)
                } else {
                    map.owner_of_right(from)
                }
            },
            budget,
        )?;
        debug_assert_eq!(committed.len(), n_migrations);
        sp.set_words(epoch.words_labeled(labels::SWEEP_COMMIT));
        let ns = sp.close();
        self.inner.obs_mut().phase_ns(Phase::SweepCommit, ns);

        // State census (aggregate) + epoch summary (broadcast).
        let mut spc = self.tracer.span(Phase::ShardState, epoch_no);
        let words = self.shard_state_words();
        let census: Vec<Vec<(u32, u64)>> = words.iter().map(|&w| vec![(0u32, w as u64)]).collect();
        let cluster = Cluster::from_partitioned(MpcConfig::strict(p, budget), census)?;
        let mut cluster = aggregate_by_key(cluster, |a, b| a + b)?;
        let summary = (serial.match_size as u64, serial.sweep_augmentations as u64);
        let copies = broadcast_value(&mut cluster, &summary)?;
        debug_assert_eq!(copies.len(), p);
        let (_, census_ledger) = cluster.into_items();
        epoch.absorb(&census_ledger);

        // Space accounting: resident per-shard state must fit the budget.
        let peak = words.iter().copied().max().unwrap_or(0);
        let resident: u64 = words.iter().map(|&w| w as u64).sum();
        epoch.observe_local(labels::SHARD_STATE, peak, resident);
        spc.set_words(resident);
        let nsc = spc.close();
        self.inner.obs_mut().phase_ns(Phase::ShardState, nsc);
        epoch.assert_space_within(budget)?;
        self.ledger.absorb(&epoch);

        Ok(ShardedEpochReport {
            serial,
            migrations: n_migrations,
            peak_shard_words: peak,
            budget,
        })
    }

    /// The current match of left vertex `u`. `O(1)`.
    #[inline]
    pub fn query(&self, u: LeftId) -> Option<RightId> {
        self.inner.query(u)
    }

    /// Current matching cardinality. `O(1)`.
    #[inline]
    pub fn match_size(&self) -> usize {
        self.inner.match_size()
    }

    /// The maintained integral allocation.
    pub fn assignment(&self) -> Assignment {
        self.inner.assignment()
    }

    /// Materialize the live graph as a frozen snapshot.
    pub fn snapshot(&self) -> Bipartite {
        self.inner.snapshot()
    }

    /// The underlying serial engine (state queries, configuration).
    pub fn serial(&self) -> &ServeLoop {
        &self.inner
    }

    /// Mutable access to the serial engine — the p2p executor drives the
    /// wave primitives (`wave_structural`, outcome absorption, row
    /// replay) on it directly.
    pub(crate) fn serial_mut(&mut self) -> &mut ServeLoop {
        &mut self.inner
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// The accumulated round/word/space accounting across all epochs.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Sharding counters.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// The hot-path metrics registry — one per engine stack, owned by the
    /// serial core so eager repairs and sharded phases share counters.
    pub fn obs(&self) -> &Registry {
        self.inner.obs()
    }

    /// Mutable access to the metrics registry (see [`Self::obs`]).
    pub fn obs_mut(&mut self) -> &mut Registry {
        self.inner.obs_mut()
    }

    /// Install a phase tracer on the whole stack: the sharded loop and
    /// the serial core span onto the same (shared) sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The stack's phase tracer (clones share one sink).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The serial engine's lifetime counters.
    pub fn serve_stats(&self) -> &ServeStats {
        self.inner.stats()
    }

    /// Full consistency check (tests / debugging).
    pub fn validate(&self) -> Result<(), String> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{churn_stream, ChurnMix};
    use sparse_alloc_graph::generators::union_of_spanning_trees;

    fn drive_with(
        shards: usize,
        seed: u64,
        tweak: impl FnOnce(&mut ShardedConfig),
    ) -> (ShardedServeLoop, ServeLoop) {
        let g = union_of_spanning_trees(60, 45, 2, 2, seed).graph;
        let updates = churn_stream(&g, 120, &ChurnMix::default(), seed);
        let mut cfg = ShardedConfig::for_eps(0.25, shards);
        tweak(&mut cfg);
        let dynamic = cfg.dynamic.clone();
        let mut sharded = ShardedServeLoop::new(g.clone(), cfg).unwrap();
        let mut serial = ServeLoop::new(g, dynamic);
        for chunk in updates.chunks(30) {
            sharded.apply_batch(chunk).unwrap();
            sharded.end_epoch().unwrap();
            for up in chunk {
                serial.apply(up);
            }
            serial.end_epoch();
        }
        (sharded, serial)
    }

    fn drive(shards: usize, seed: u64) -> (ShardedServeLoop, ServeLoop) {
        drive_with(shards, seed, |_| {})
    }

    #[test]
    fn sharded_state_equals_serial_state() {
        for shards in [1usize, 3, 5] {
            let (sharded, serial) = drive(shards, 7 + shards as u64);
            sharded.validate().unwrap();
            assert_eq!(
                sharded.assignment().mate,
                serial.assignment().mate,
                "{shards} shards diverged from serial"
            );
            assert_eq!(sharded.match_size(), serial.match_size());
        }
    }

    #[test]
    fn threaded_waves_equal_serial_state() {
        // Same churn, forced multi-threaded wave execution: the commuting
        // disjoint-footprint repairs must land on the identical state for
        // every thread count (and for a shrunken footprint cap, which
        // only re-shapes the waves).
        for threads in [2usize, 3, 5] {
            let (sharded, serial) = drive_with(4, 23, |cfg| {
                cfg.wave_threads = threads;
                cfg.footprint_cap = 24;
            });
            sharded.validate().unwrap();
            assert_eq!(
                sharded.assignment().mate,
                serial.assignment().mate,
                "{threads} wave threads diverged from serial"
            );
        }
    }

    #[test]
    fn epochs_record_ledger_phases() {
        let (sharded, _) = drive(4, 11);
        let l = sharded.ledger();
        assert!(
            l.rounds_labeled(labels::ROUTE_UPDATES) >= 1,
            "routing rounds"
        );
        assert!(l.rounds_labeled(labels::REPAIR_WAVE) >= 1, "wave rounds");
        assert!(l.local_steps_labeled(labels::SHARD_STATE) >= 1);
        assert!(l.rounds > 0);
        let s = sharded.stats();
        assert!(s.batches >= 1 && s.routed_updates > 0);
        assert!(s.waves >= s.batches, "≥ one wave per batch");
    }

    #[test]
    fn serving_fills_the_metrics_registry() {
        let (sharded, _) = drive(3, 19);
        let obs = sharded.obs();
        assert!(obs.counter(Counter::RoutedUpdates) > 0, "routed counter");
        assert!(obs.counter(Counter::WalkExpansions) > 0, "walk expansions");
        assert!(obs.dist(Dist::BatchSize).count() > 0, "batch sizes");
        assert!(obs.dist(Dist::WaveWidth).count() > 0, "wave widths");
        assert!(obs.dist(Dist::BallSize).count() > 0, "ball sizes");
        for p in [
            Phase::BatchSchedule,
            Phase::RouteUpdates,
            Phase::RepairWave,
            Phase::SweepCommit,
            Phase::ShardState,
        ] {
            assert!(obs.phase(p).count() > 0, "phase {} timed", p.label());
        }
    }

    #[test]
    fn disabled_registry_stays_empty_while_serving() {
        let g = union_of_spanning_trees(30, 20, 2, 2, 5).graph;
        let updates = churn_stream(&g, 40, &ChurnMix::default(), 5);
        let mut s = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 2)).unwrap();
        *s.obs_mut() = Registry::disabled();
        for chunk in updates.chunks(20) {
            s.apply_batch(chunk).unwrap();
            s.end_epoch().unwrap();
        }
        let obs = s.obs();
        for c in Counter::ALL {
            assert_eq!(obs.counter(c), 0, "counter {} stayed zero", c.name());
        }
        for p in Phase::ALL {
            assert!(obs.phase(p).is_empty(), "phase {} stayed empty", p.label());
        }
    }

    #[test]
    fn resident_state_fits_the_budget() {
        let (sharded, _) = drive(6, 13);
        let words = sharded.shard_state_words();
        let budget = sharded.space_budget();
        assert!(budget >= 128);
        assert!(*words.iter().max().unwrap() <= budget);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = union_of_spanning_trees(30, 20, 2, 2, 3).graph;
        let mut s = ShardedServeLoop::new(g, ShardedConfig::for_eps(0.25, 3)).unwrap();
        let r = s.apply_batch(&[]).unwrap();
        assert_eq!(r, BatchReport::default());
        let before = s.ledger().rounds;
        let e = s.end_epoch().unwrap();
        assert_eq!(e.serial.sweep_expansions, 0, "no-op epoch stays free");
        assert_eq!(e.migrations, 0);
        assert!(s.ledger().rounds >= before, "census phases still run");
    }

    #[test]
    fn single_shard_has_no_handoff_traffic() {
        let (sharded, _) = drive(1, 17);
        assert_eq!(sharded.stats().handoff_words, 0);
        assert_eq!(
            sharded.ledger().words_total,
            sharded
                .ledger()
                .history
                .iter()
                .map(|r| r.words_moved)
                .sum::<u64>()
        );
        // Every routed word stays on machine 0 — zero words moved in
        // repair waves.
        for rec in &sharded.ledger().history {
            if rec.label == labels::REPAIR_WAVE {
                assert_eq!(rec.words_moved, 0);
            }
        }
    }
}

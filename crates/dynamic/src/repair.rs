//! Local repair of the proportional dynamics' β-levels.
//!
//! A single update perturbs the proportional dynamics only inside an
//! `O(τ)`-hop ball around the update site (the paper's level sets move by
//! one per round, so influence propagates one hop per round). Instead of
//! re-running Algorithm 1 globally, the repair engine re-runs the
//! per-vertex level step (`core::levels::update_level` driven by
//! `core::aggregates::left_aggregate_of` / `alloc_share`) on the dirty
//! ball only, holding all exterior levels frozen — the exterior is
//! *exactly* consistent because its aggregates read the live interior
//! levels on the next repair.
//!
//! Repairs are approximate by design: the ball radius truncates influence
//! that has geometrically decayed. The [`crate::scheduler::DriftTracker`]
//! accounts for the truncation and triggers a full
//! rebuild once the accumulated churn exceeds the `O(ε)` budget.

use std::collections::HashSet;

use sparse_alloc_core::aggregates::{alloc_share, left_aggregate_of, LeftAggregate};
use sparse_alloc_core::levels::{update_level, PowTable};
use sparse_alloc_core::termination;
use sparse_alloc_graph::{DeltaGraph, RightId};

use crate::stamp::StampSet;

/// Reusable scratch for repeated ball growths — stamped membership plus
/// the BFS frontier vectors (the certificate sweep grows a ball per
/// augmenting flip; stamped clears keep that `O(ball)` instead of `O(n)`
/// per call, and the frontier reuse keeps it allocation-free).
#[derive(Debug, Clone, Default)]
pub struct BallScratch {
    rights: StampSet,
    lefts: StampSet,
    frontier: Vec<RightId>,
    next: Vec<RightId>,
}

impl BallScratch {
    /// Scratch sized for `dg` (grows on demand if the graph grows).
    pub fn for_graph(dg: &DeltaGraph) -> Self {
        BallScratch {
            rights: StampSet::new(dg.n_right()),
            lefts: StampSet::new(dg.n_left()),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }
}

/// Configuration of one local repair.
#[derive(Debug, Clone, Copy)]
pub struct LevelRepairConfig {
    /// The `(1+ε)` step parameter (must match the levels' provenance).
    pub eps: f64,
    /// Ball radius in right-to-right hops (right → left → right = 1).
    pub radius: usize,
    /// Synchronous proportional rounds to run on the ball.
    pub rounds: usize,
    /// Stop growing the ball once it holds this many right vertices
    /// (seeds are always included). Bounds repair work under bulk churn;
    /// the truncation is what the drift budget accounts for.
    pub max_ball: usize,
}

/// What one local repair touched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelRepairReport {
    /// Right vertices in the repaired ball.
    pub ball_rights: usize,
    /// The repaired ball itself (sorted). Callers that maintain derived
    /// state — e.g. the serve loop's memoized fractional allocation —
    /// invalidate exactly this set.
    pub ball: Vec<RightId>,
    /// Left vertices adjacent to the ball (their aggregates were read).
    pub frontier_lefts: usize,
    /// Rounds executed.
    pub rounds_run: usize,
    /// Did the §4 predicate hold on the ball after the last round?
    /// (Evaluated with ball-local level sets; `None` if no round ran.)
    pub ball_terminated: Option<bool>,
}

/// The right-vertex ball of the given radius around `seeds`, sorted.
/// Equivalent to [`ball_of_capped`] with no size cap.
pub fn ball_of(dg: &DeltaGraph, seeds: &[RightId], radius: usize) -> Vec<RightId> {
    ball_of_capped(dg, seeds, radius, usize::MAX)
}

/// The right-vertex ball around `seeds`, expanded hop by hop until the
/// radius is exhausted or the ball holds `max_ball` vertices (seeds are
/// always included). Sorted.
///
/// Stamped membership — the serve loop calls this on every epoch, so the
/// hot path must not hash, and repeated calls (one per sweep flip) must
/// not re-zero dense arrays: pass a [`BallScratch`] to
/// [`ball_of_capped_with`] to amortize. Each left vertex's adjacency is
/// scanned at most once across the whole growth (its rights' membership
/// never changes once seen), so a growth that touches the whole graph
/// costs `O(n + m)` instead of `O(m · deg)`.
pub fn ball_of_capped(
    dg: &DeltaGraph,
    seeds: &[RightId],
    radius: usize,
    max_ball: usize,
) -> Vec<RightId> {
    ball_of_capped_with(dg, seeds, radius, max_ball, &mut BallScratch::for_graph(dg))
}

/// [`ball_of_capped`] with caller-owned membership scratch (`O(1)` clear
/// between calls).
pub fn ball_of_capped_with(
    dg: &DeltaGraph,
    seeds: &[RightId],
    radius: usize,
    max_ball: usize,
    scratch: &mut BallScratch,
) -> Vec<RightId> {
    let mut ball: Vec<RightId> = Vec::with_capacity(seeds.len());
    ball_of_capped_into(dg, seeds, radius, max_ball, scratch, &mut ball);
    ball
}

/// [`ball_of_capped`] writing into a caller-owned output vector (cleared
/// on entry) — with the scratch's frontier reuse this makes repeated
/// growths fully allocation-free, which is what keeps the per-epoch
/// certificate sweep off the allocator.
pub fn ball_of_capped_into(
    dg: &DeltaGraph,
    seeds: &[RightId],
    radius: usize,
    max_ball: usize,
    scratch: &mut BallScratch,
    out: &mut Vec<RightId>,
) {
    out.clear();
    scratch.rights.grow(dg.n_right());
    scratch.lefts.grow(dg.n_left());
    scratch.rights.clear();
    scratch.lefts.clear();
    let BallScratch {
        rights: in_ball,
        lefts: seen_left,
        frontier,
        next,
    } = scratch;
    frontier.clear();
    for &v in seeds {
        if (v as usize) < dg.n_right() && in_ball.insert(v as usize) {
            out.push(v);
            frontier.push(v);
        }
    }
    'grow: for _ in 0..radius {
        if out.len() >= max_ball {
            break;
        }
        next.clear();
        for &v in frontier.iter() {
            for u in dg.right_neighbors_iter(v) {
                if !seen_left.insert(u as usize) {
                    continue;
                }
                for w in dg.left_neighbors_iter(u) {
                    if in_ball.insert(w as usize) {
                        out.push(w);
                        next.push(w);
                        if out.len() >= max_ball {
                            break 'grow;
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(frontier, next);
    }
    out.sort_unstable();
}

/// Re-run the proportional level dynamics on the ball around `seeds`,
/// mutating `levels` in place. Exterior levels are read but never written.
///
/// # Panics
/// Panics if `levels.len() != dg.n_right()`.
pub fn repair_levels(
    dg: &DeltaGraph,
    levels: &mut [i64],
    seeds: &[RightId],
    cfg: &LevelRepairConfig,
) -> LevelRepairReport {
    assert_eq!(levels.len(), dg.n_right(), "levels indexed by right vertex");
    let ball = ball_of_capped(dg, seeds, cfg.radius, cfg.max_ball);
    if ball.is_empty() || cfg.rounds == 0 {
        return LevelRepairReport {
            ball_rights: ball.len(),
            ball,
            ..Default::default()
        };
    }
    let pows = PowTable::new(cfg.eps);

    // Left frontier: every left vertex adjacent to the ball. Their
    // aggregates are recomputed each round (their other neighbors'
    // levels are frozen but still read — the computation is exact).
    // Dense (vertex-indexed) scratch: only frontier entries are written
    // and only frontier entries are read.
    let frontier: Vec<u32> = {
        let mut seen = vec![false; dg.n_left()];
        let mut f = Vec::new();
        for &v in &ball {
            for u in dg.right_neighbors_iter(v) {
                if !std::mem::replace(&mut seen[u as usize], true) {
                    f.push(u);
                }
            }
        }
        f.sort_unstable();
        f
    };

    let mut aggs: Vec<LeftAggregate> = vec![LeftAggregate::EMPTY; dg.n_left()];
    let mut alloc: Vec<f64> = vec![0.0; ball.len()];
    let mut base_level = vec![0i64; ball.len()];
    let mut ball_terminated = None;

    for round in 1..=cfg.rounds {
        for &u in &frontier {
            aggs[u as usize] = left_aggregate_of(dg.left_neighbors_iter(u), levels, &pows);
        }
        for (i, &v) in ball.iter().enumerate() {
            alloc[i] = dg
                .right_neighbors_iter(v)
                .map(|u| alloc_share(levels[v as usize], &aggs[u as usize], &pows))
                .sum();
            if round == 1 {
                base_level[i] = levels[v as usize];
            }
        }
        // Synchronous update, exactly like a round of Algorithm 1.
        for (i, &v) in ball.iter().enumerate() {
            levels[v as usize] += update_level(alloc[i], dg.capacity(v), cfg.eps, 1.0, 1.0);
        }
        if round == cfg.rounds {
            // Ball-local §4 predicate: level sets relative to the repair's
            // starting levels, neighborhoods restricted to the ball.
            let r = round as i64;
            let mut top_neighborhood = HashSet::new();
            let mut bottom = 0usize;
            let mut mass_off_bottom = 0.0;
            for (i, &v) in ball.iter().enumerate() {
                let moved = levels[v as usize] - base_level[i];
                if moved == r {
                    for u in dg.right_neighbors_iter(v) {
                        top_neighborhood.insert(u);
                    }
                }
                if moved == -r {
                    bottom += 1;
                } else {
                    mass_off_bottom += alloc[i];
                }
            }
            let (c1, c2) = termination::condition_holds(
                top_neighborhood.len(),
                bottom,
                mass_off_bottom,
                cfg.eps,
            );
            ball_terminated = Some(c1 || c2);
        }
    }

    LevelRepairReport {
        ball_rights: ball.len(),
        ball,
        frontier_lefts: frontier.len(),
        rounds_run: cfg.rounds,
        ball_terminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_core::algo1::allocs_for_levels;
    use sparse_alloc_graph::generators::union_of_spanning_trees;
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn ball_growth_by_radius() {
        // Path: u0 – v0, u1 – v0, u1 – v1, u2 – v1, u2 – v2.
        let mut b = BipartiteBuilder::new(3, 3);
        for (u, v) in [(0u32, 0u32), (1, 0), (1, 1), (2, 1), (2, 2)] {
            b.add_edge(u, v);
        }
        let dg = DeltaGraph::new(b.build_with_uniform_capacity(1).unwrap());
        assert_eq!(ball_of(&dg, &[0], 0), vec![0]);
        assert_eq!(ball_of(&dg, &[0], 1), vec![0, 1]);
        assert_eq!(ball_of(&dg, &[0], 2), vec![0, 1, 2]);
        assert_eq!(ball_of(&dg, &[0], 9), vec![0, 1, 2]);
    }

    #[test]
    fn full_radius_repair_equals_global_rounds() {
        // With the ball covering the whole graph, `rounds` repair rounds
        // from the zero levels must reproduce the global algorithm.
        let g = union_of_spanning_trees(40, 30, 2, 2, 5).graph;
        let eps = 0.2;
        let rounds = 6;
        let res = sparse_alloc_core::algo1::run(
            &g,
            &sparse_alloc_core::algo1::ProportionalConfig {
                eps,
                schedule: sparse_alloc_core::params::Schedule::Fixed(rounds),
                track_history: false,
            },
        );
        let dg = DeltaGraph::new(g.clone());
        let mut levels = vec![0i64; g.n_right()];
        let seeds: Vec<u32> = (0..g.n_right() as u32).collect();
        let rep = repair_levels(
            &dg,
            &mut levels,
            &seeds,
            &LevelRepairConfig {
                eps,
                radius: 0,
                rounds,
                max_ball: usize::MAX,
            },
        );
        assert_eq!(rep.ball_rights, g.n_right());
        assert_eq!(levels, res.levels);
        assert!(rep.ball_terminated.is_some());
    }

    #[test]
    fn repair_touches_only_the_ball() {
        let g = union_of_spanning_trees(60, 50, 2, 2, 9).graph;
        let eps = 0.2;
        let dg = DeltaGraph::new(g.clone());
        let mut levels: Vec<i64> = (0..g.n_right()).map(|v| (v % 5) as i64 - 2).collect();
        let before = levels.clone();
        let seeds = [3u32];
        let cfg = LevelRepairConfig {
            eps,
            radius: 1,
            rounds: 3,
            max_ball: usize::MAX,
        };
        let ball = ball_of(&dg, &seeds, cfg.radius);
        repair_levels(&dg, &mut levels, &seeds, &cfg);
        for v in 0..g.n_right() {
            if !ball.contains(&(v as u32)) {
                assert_eq!(levels[v], before[v], "exterior level {v} moved");
            }
        }
        // Levels moved by at most `rounds` inside the ball.
        for &v in &ball {
            assert!((levels[v as usize] - before[v as usize]).unsigned_abs() <= 3);
        }
    }

    #[test]
    fn repair_restores_lemma7_band_after_capacity_change() {
        // Converge globally, then halve one capacity and repair locally:
        // the repaired vertex must fall back into the Lemma-7 band
        // `alloc ∈ [C/(1+3ε), C(1+3ε)]` or be pinned to a moving level.
        let g = union_of_spanning_trees(80, 60, 2, 4, 3).graph;
        let eps = 0.25;
        let res = sparse_alloc_core::algo1::run(
            &g,
            &sparse_alloc_core::algo1::ProportionalConfig {
                eps,
                schedule: sparse_alloc_core::params::Schedule::KnownLambda(2),
                track_history: false,
            },
        );
        let mut dg = DeltaGraph::new(g.clone());
        let mut levels = res.levels.clone();
        let v = 7u32;
        dg.set_capacity(v, 1);
        let snapshot = dg.compact();
        let drifted = allocs_for_levels(&snapshot, &levels, eps);
        // The capacity cut makes v over-allocated relative to its new C.
        assert!(drifted[v as usize] > 1.0 * (1.0 + eps));
        repair_levels(
            &DeltaGraph::new(snapshot.clone()),
            &mut levels,
            &[v],
            &LevelRepairConfig {
                eps,
                radius: 2,
                rounds: 12,
                max_ball: usize::MAX,
            },
        );
        let after = allocs_for_levels(&snapshot, &levels, eps);
        assert!(
            after[v as usize] < drifted[v as usize],
            "repair must bleed off the over-allocation: {} → {}",
            drifted[v as usize],
            after[v as usize]
        );
    }
}

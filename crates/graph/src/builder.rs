//! Mutable edge-list builder producing frozen [`Bipartite`] graphs.

use crate::bipartite::{Bipartite, LeftId, RightId};

/// Errors raised while freezing a [`BipartiteBuilder`] into a [`Bipartite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge references a left vertex `≥ n_left`.
    LeftOutOfRange {
        /// The offending left endpoint.
        u: LeftId,
        /// Number of left vertices the builder was created with.
        n_left: usize,
    },
    /// An edge references a right vertex `≥ n_right`.
    RightOutOfRange {
        /// The offending right endpoint.
        v: RightId,
        /// Number of right vertices the builder was created with.
        n_right: usize,
    },
    /// The capacity vector has the wrong length or contains a zero.
    BadCapacities(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::LeftOutOfRange { u, n_left } => {
                write!(f, "left vertex {u} out of range (n_left = {n_left})")
            }
            BuildError::RightOutOfRange { v, n_right } => {
                write!(f, "right vertex {v} out of range (n_right = {n_right})")
            }
            BuildError::BadCapacities(msg) => write!(f, "bad capacities: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates edges of a bipartite graph and freezes them into CSR form.
///
/// Duplicate edges are removed during [`BipartiteBuilder::build`] (the
/// allocation problem is defined on simple graphs). Edge insertion order does
/// not affect the result: edges are sorted by `(u, v)` before freezing, so
/// two builders with the same edge *set* produce identical graphs — a
/// property the deterministic-replay tests rely on.
#[derive(Debug, Clone)]
pub struct BipartiteBuilder {
    n_left: usize,
    n_right: usize,
    edges: Vec<(LeftId, RightId)>,
}

impl BipartiteBuilder {
    /// Create a builder for a graph with `n_left` and `n_right` vertices.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteBuilder {
            n_left,
            n_right,
            edges: Vec::new(),
        }
    }

    /// Create a builder with pre-reserved edge capacity.
    pub fn with_edge_capacity(n_left: usize, n_right: usize, m: usize) -> Self {
        BipartiteBuilder {
            n_left,
            n_right,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of left vertices this builder was created with.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices this builder was created with.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges added so far (*before* deduplication).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append edge `(u, v)`. Range checking is deferred to [`Self::build`].
    #[inline]
    pub fn add_edge(&mut self, u: LeftId, v: RightId) {
        self.edges.push((u, v));
    }

    /// Append many edges at once.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (LeftId, RightId)>) {
        self.edges.extend(it);
    }

    /// Freeze into a [`Bipartite`] with the given capacity vector.
    pub fn build(mut self, capacities: Vec<u64>) -> Result<Bipartite, BuildError> {
        if capacities.len() != self.n_right {
            return Err(BuildError::BadCapacities(format!(
                "expected {} capacities, got {}",
                self.n_right,
                capacities.len()
            )));
        }
        if let Some(i) = capacities.iter().position(|&c| c == 0) {
            return Err(BuildError::BadCapacities(format!(
                "capacity of right vertex {i} is zero"
            )));
        }
        for &(u, v) in &self.edges {
            if (u as usize) >= self.n_left {
                return Err(BuildError::LeftOutOfRange {
                    u,
                    n_left: self.n_left,
                });
            }
            if (v as usize) >= self.n_right {
                return Err(BuildError::RightOutOfRange {
                    v,
                    n_right: self.n_right,
                });
            }
        }

        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        // Left CSR (edges already sorted by (u, v)).
        let mut left_offsets = vec![0usize; self.n_left + 1];
        for &(u, _) in &self.edges {
            left_offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n_left {
            left_offsets[i + 1] += left_offsets[i];
        }
        let left_adj: Vec<RightId> = self.edges.iter().map(|&(_, v)| v).collect();

        // Right CSR by counting sort on v; record the originating edge id.
        let mut right_offsets = vec![0usize; self.n_right + 1];
        for &(_, v) in &self.edges {
            right_offsets[v as usize + 1] += 1;
        }
        for i in 0..self.n_right {
            right_offsets[i + 1] += right_offsets[i];
        }
        let mut cursor = right_offsets.clone();
        let mut right_adj = vec![0 as LeftId; m];
        let mut right_edge_ids = vec![0u32; m];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let slot = cursor[v as usize];
            right_adj[slot] = u;
            right_edge_ids[slot] = e as u32;
            cursor[v as usize] += 1;
        }

        Ok(Bipartite {
            left_offsets,
            left_adj,
            right_offsets,
            right_adj,
            right_edge_ids,
            capacities,
        })
    }

    /// Freeze with every right vertex given capacity `c`.
    pub fn build_with_uniform_capacity(self, c: u64) -> Result<Bipartite, BuildError> {
        let n_right = self.n_right;
        self.build(vec![c; n_right])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(1, 1);
        b.add_edge(0, 0);
        b.add_edge(1, 1); // duplicate
        b.add_edge(0, 1);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.left_neighbors(0), &[0, 1]);
        assert_eq!(g.left_neighbors(1), &[1]);
        g.validate().unwrap();
    }

    #[test]
    fn insertion_order_irrelevant() {
        let edges = [(0u32, 2u32), (1, 0), (2, 1), (0, 0), (2, 2)];
        let mut b1 = BipartiteBuilder::new(3, 3);
        let mut b2 = BipartiteBuilder::new(3, 3);
        for &(u, v) in &edges {
            b1.add_edge(u, v);
        }
        for &(u, v) in edges.iter().rev() {
            b2.add_edge(u, v);
        }
        let g1 = b1.build_with_uniform_capacity(1).unwrap();
        let g2 = b2.build_with_uniform_capacity(1).unwrap();
        assert_eq!(g1.left_adj, g2.left_adj);
        assert_eq!(g1.left_offsets, g2.left_offsets);
        assert_eq!(g1.right_adj, g2.right_adj);
        assert_eq!(g1.right_edge_ids, g2.right_edge_ids);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(2, 0);
        assert!(matches!(
            b.build_with_uniform_capacity(1),
            Err(BuildError::LeftOutOfRange { u: 2, n_left: 2 })
        ));

        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 5);
        assert!(matches!(
            b.build_with_uniform_capacity(1),
            Err(BuildError::RightOutOfRange { v: 5, n_right: 2 })
        ));
    }

    #[test]
    fn capacity_validation() {
        let b = BipartiteBuilder::new(1, 2);
        assert!(matches!(
            b.clone().build(vec![1]),
            Err(BuildError::BadCapacities(_))
        ));
        assert!(matches!(
            b.build(vec![1, 0]),
            Err(BuildError::BadCapacities(_))
        ));
    }

    #[test]
    fn zero_sided_graphs_are_valid() {
        // No right vertices: empty capacity vector, no edges possible.
        let g = BipartiteBuilder::new(3, 0).build(vec![]).unwrap();
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 0);
        assert_eq!(g.m(), 0);
        g.validate().unwrap();

        // No left vertices.
        let g = BipartiteBuilder::new(0, 2).build(vec![1, 1]).unwrap();
        assert_eq!(g.n_left(), 0);
        assert_eq!(g.m(), 0);
        g.validate().unwrap();

        // An edge into an empty side is rejected.
        let mut b = BipartiteBuilder::new(3, 0);
        b.add_edge(0, 0);
        assert!(b.build(vec![]).is_err());
    }

    #[test]
    fn extend_edges_works() {
        let mut b = BipartiteBuilder::with_edge_capacity(3, 3, 4);
        b.extend_edges([(0, 0), (1, 1), (2, 2)]);
        assert_eq!(b.n_edges(), 3);
        let g = b.build_with_uniform_capacity(2).unwrap();
        assert_eq!(g.m(), 3);
    }
}

//! The immutable bipartite graph representation.
//!
//! [`Bipartite`] stores the graph twice in CSR (compressed sparse row) form —
//! once from the `L` side and once from the `R` side — so that both
//! aggregation directions of the proportional-allocation algorithm
//! (`u ∈ L` reads `β_v` of all neighbors; `v ∈ R` reads `β_u` of all
//! neighbors) are contiguous scans.

use serde::{Deserialize, Serialize};

/// Index of a vertex on the left (`L`) side; `u ∈ 0..n_left()`.
pub type LeftId = u32;
/// Index of a vertex on the right (`R`) side; `v ∈ 0..n_right()`.
pub type RightId = u32;
/// Dense edge identifier: the position of the edge in the left-side CSR.
pub type EdgeId = u32;

/// Which bipartition side a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The side with implicit capacity 1 (clients / impressions / jobs).
    Left,
    /// The side with explicit capacities `C_v ≥ 1` (servers / advertisers).
    Right,
}

/// An immutable bipartite graph `G = (L ∪ R, E)` with capacities on `R`.
///
/// Construction goes through [`crate::BipartiteBuilder`] (or a generator in
/// [`crate::generators`]); the resulting structure is append-only frozen and
/// cheap to share across threads.
///
/// # Edge identifiers
///
/// Edge `e = (u, v)` has id equal to its slot in the left CSR, i.e. edges of
/// `u` occupy ids `left_offsets[u] .. left_offsets[u+1]`. The right CSR
/// stores, per slot, both the left endpoint and the edge id so that per-edge
/// arrays written while scanning from the left can be read while scanning
/// from the right.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bipartite {
    pub(crate) left_offsets: Vec<usize>,
    pub(crate) left_adj: Vec<RightId>,
    pub(crate) right_offsets: Vec<usize>,
    pub(crate) right_adj: Vec<LeftId>,
    pub(crate) right_edge_ids: Vec<EdgeId>,
    pub(crate) capacities: Vec<u64>,
}

impl Bipartite {
    /// Number of vertices on the left side.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.left_offsets.len() - 1
    }

    /// Number of vertices on the right side.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.right_offsets.len() - 1
    }

    /// Total number of vertices `n = |L| + |R|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n_left() + self.n_right()
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.left_adj.len()
    }

    /// Capacity `C_v` of right vertex `v`.
    #[inline]
    pub fn capacity(&self, v: RightId) -> u64 {
        self.capacities[v as usize]
    }

    /// The full capacity vector, indexed by right vertex.
    #[inline]
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// Total capacity `Σ_v C_v`.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().sum()
    }

    /// Neighbors (in `R`) of left vertex `u`, as a contiguous slice.
    #[inline]
    pub fn left_neighbors(&self, u: LeftId) -> &[RightId] {
        &self.left_adj[self.left_offsets[u as usize]..self.left_offsets[u as usize + 1]]
    }

    /// Neighbors (in `L`) of right vertex `v`, as a contiguous slice.
    #[inline]
    pub fn right_neighbors(&self, v: RightId) -> &[LeftId] {
        &self.right_adj[self.right_offsets[v as usize]..self.right_offsets[v as usize + 1]]
    }

    /// Edge ids of the edges incident to left vertex `u`
    /// (`left_edge_range(u).zip(left_neighbors(u))` enumerates `(e, v)`).
    #[inline]
    pub fn left_edge_range(&self, u: LeftId) -> std::ops::Range<usize> {
        self.left_offsets[u as usize]..self.left_offsets[u as usize + 1]
    }

    /// Edge ids of edges incident to right vertex `v`, parallel to
    /// [`Self::right_neighbors`].
    #[inline]
    pub fn right_edge_ids(&self, v: RightId) -> &[EdgeId] {
        &self.right_edge_ids[self.right_offsets[v as usize]..self.right_offsets[v as usize + 1]]
    }

    /// Slot range of right vertex `v` in the right CSR
    /// (`right_slot_range(v).zip(right_neighbors(v))` enumerates slots).
    #[inline]
    pub fn right_slot_range(&self, v: RightId) -> std::ops::Range<usize> {
        self.right_offsets[v as usize]..self.right_offsets[v as usize + 1]
    }

    /// For each edge id, the slot it occupies in the right CSR — the inverse
    /// permutation of [`Self::right_edge_ids`] over all vertices.
    pub fn right_slot_of_edge(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.m()];
        for (slot, &e) in self.right_edge_ids.iter().enumerate() {
            out[e as usize] = slot as u32;
        }
        out
    }

    /// Degree of left vertex `u`.
    #[inline]
    pub fn left_degree(&self, u: LeftId) -> usize {
        self.left_offsets[u as usize + 1] - self.left_offsets[u as usize]
    }

    /// Degree of right vertex `v`.
    #[inline]
    pub fn right_degree(&self, v: RightId) -> usize {
        self.right_offsets[v as usize + 1] - self.right_offsets[v as usize]
    }

    /// Maximum degree over all vertices of both sides.
    pub fn max_degree(&self) -> usize {
        let l = (0..self.n_left() as u32)
            .map(|u| self.left_degree(u))
            .max()
            .unwrap_or(0);
        let r = (0..self.n_right() as u32)
            .map(|v| self.right_degree(v))
            .max()
            .unwrap_or(0);
        l.max(r)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Iterate over all edges as `(edge_id, u, v)` triples in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, LeftId, RightId)> + '_ {
        (0..self.n_left() as u32).flat_map(move |u| {
            self.left_edge_range(u)
                .zip(self.left_neighbors(u))
                .map(move |(e, &v)| (e as EdgeId, u, v))
        })
    }

    /// The left endpoint of every edge, indexed by edge id.
    ///
    /// Materializes a `Vec` of length `m`; useful when an algorithm needs
    /// random access from edge id to endpoints.
    pub fn edge_left_endpoints(&self) -> Vec<LeftId> {
        let mut out = vec![0; self.m()];
        for u in 0..self.n_left() as u32 {
            for e in self.left_edge_range(u) {
                out[e] = u;
            }
        }
        out
    }

    /// The right endpoint of every edge, indexed by edge id (a clone of the
    /// left CSR adjacency array).
    pub fn edge_right_endpoints(&self) -> &[RightId] {
        &self.left_adj
    }

    /// Replace the capacity vector, returning a new graph that shares the
    /// topology.
    ///
    /// # Panics
    /// Panics if `caps.len() != n_right()` or any capacity is zero.
    pub fn with_capacities(&self, caps: Vec<u64>) -> Bipartite {
        assert_eq!(caps.len(), self.n_right(), "capacity vector length");
        assert!(caps.iter().all(|&c| c >= 1), "capacities must be ≥ 1");
        Bipartite {
            capacities: caps,
            ..self.clone()
        }
    }

    /// Exhaustive internal-consistency check, used by tests and debug builds.
    ///
    /// Verifies monotone offsets, in-range adjacency, the left↔right edge-id
    /// correspondence, and capacity positivity. Cost `O(n + m)`.
    pub fn validate(&self) -> Result<(), String> {
        let (nl, nr, m) = (self.n_left(), self.n_right(), self.m());
        if *self.left_offsets.first().unwrap() != 0 || *self.left_offsets.last().unwrap() != m {
            return Err("left offsets must span [0, m]".into());
        }
        if *self.right_offsets.first().unwrap() != 0 || *self.right_offsets.last().unwrap() != m {
            return Err("right offsets must span [0, m]".into());
        }
        if self.left_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("left offsets not monotone".into());
        }
        if self.right_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("right offsets not monotone".into());
        }
        if self.left_adj.iter().any(|&v| (v as usize) >= nr) {
            return Err("left adjacency out of range".into());
        }
        if self.right_adj.iter().any(|&u| (u as usize) >= nl) {
            return Err("right adjacency out of range".into());
        }
        if self.right_adj.len() != m || self.right_edge_ids.len() != m {
            return Err("right CSR arrays must have length m".into());
        }
        if self.capacities.len() != nr {
            return Err("capacity vector must have length n_right".into());
        }
        if self.capacities.contains(&0) {
            return Err("capacities must be ≥ 1".into());
        }
        // Cross-check: following the right CSR edge id must land on an edge
        // (u, v) whose left-CSR slot stores v.
        let lefts = self.edge_left_endpoints();
        for v in 0..nr as u32 {
            for (&u, &e) in self.right_neighbors(v).iter().zip(self.right_edge_ids(v)) {
                if lefts[e as usize] != u {
                    return Err(format!(
                        "edge {e} left endpoint mismatch at right vertex {v}"
                    ));
                }
                if self.left_adj[e as usize] != v {
                    return Err(format!(
                        "edge {e} right endpoint mismatch at right vertex {v}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::BipartiteBuilder;

    #[test]
    fn small_graph_accessors() {
        // L = {0,1,2}, R = {0,1}; edges: (0,0) (0,1) (1,0) (2,1)
        let mut b = BipartiteBuilder::new(3, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 1);
        let g = b.build_with_uniform_capacity(2).unwrap();
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 2);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.left_neighbors(0), &[0, 1]);
        assert_eq!(g.left_neighbors(1), &[0]);
        assert_eq!(g.left_neighbors(2), &[1]);
        assert_eq!(g.right_neighbors(0), &[0, 1]);
        assert_eq!(g.right_neighbors(1), &[0, 2]);
        assert_eq!(g.left_degree(0), 2);
        assert_eq!(g.right_degree(1), 2);
        assert_eq!(g.capacity(0), 2);
        assert_eq!(g.total_capacity(), 4);
        assert_eq!(g.max_degree(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn edge_id_cross_reference() {
        let mut b = BipartiteBuilder::new(4, 3);
        for (u, v) in [(0u32, 0u32), (1, 0), (1, 2), (2, 1), (3, 1), (3, 2)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let lefts = g.edge_left_endpoints();
        let rights = g.edge_right_endpoints();
        for v in 0..g.n_right() as u32 {
            for (&u, &e) in g.right_neighbors(v).iter().zip(g.right_edge_ids(v)) {
                assert_eq!(lefts[e as usize], u);
                assert_eq!(rights[e as usize], v);
            }
        }
        // Every edge id appears exactly once in the right CSR.
        let mut seen = vec![false; g.m()];
        for v in 0..g.n_right() as u32 {
            for &e in g.right_edge_ids(v) {
                assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn edges_iterator_matches_csr() {
        let mut b = BipartiteBuilder::new(3, 3);
        for (u, v) in [(0u32, 1u32), (1, 0), (2, 2), (0, 2)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), g.m());
        for (e, u, v) in collected {
            assert!(g.left_neighbors(u).contains(&v));
            assert_eq!(g.edge_right_endpoints()[e as usize], v);
        }
    }

    #[test]
    fn with_capacities_replaces() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let g2 = g.with_capacities(vec![5, 7]);
        assert_eq!(g2.capacity(0), 5);
        assert_eq!(g2.capacity(1), 7);
        assert_eq!(g2.m(), g.m());
    }

    #[test]
    #[should_panic(expected = "capacities must be ≥ 1")]
    fn zero_capacity_rejected() {
        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let _ = g.with_capacities(vec![0]);
    }

    #[test]
    fn empty_graph() {
        let b = BipartiteBuilder::new(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.average_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices() {
        let mut b = BipartiteBuilder::new(5, 4);
        b.add_edge(2, 3);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(g.left_degree(0), 0);
        assert_eq!(g.left_degree(2), 1);
        assert_eq!(g.right_degree(0), 0);
        assert_eq!(g.right_degree(3), 1);
        g.validate().unwrap();
    }
}

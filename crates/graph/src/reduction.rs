//! The vertex-split reduction from allocation to plain bipartite matching,
//! and why it fails on uniformly sparse graphs (paper, Remark 1).
//!
//! The classical reduction replaces each `v ∈ R` by `C_v` unit-capacity
//! copies, each adjacent to all of `N(v)`. A maximum matching of the split
//! graph corresponds exactly to a maximum allocation of the original. The
//! paper's Remark 1 observes that the reduction can blow the arboricity up
//! from `1` to `Θ(n)` (a star with center capacity `n − 1` becomes a
//! complete bipartite graph), which is why the `O(log λ)` result must work
//! on the allocation problem directly. Experiment E10 measures the blow-up.

use crate::bipartite::{Bipartite, RightId};
use crate::builder::BipartiteBuilder;

/// Outcome of [`vertex_split`]: the split graph plus the mapping from split
/// right vertices back to originals.
#[derive(Debug, Clone)]
pub struct SplitGraph {
    /// The unit-capacity split graph.
    pub graph: Bipartite,
    /// `origin[v'] = v` — original right vertex of each copy.
    pub origin: Vec<RightId>,
}

/// Split every right vertex `v` into `min(C_v, cap_limit)` unit-capacity
/// copies adjacent to all of `N(v)`.
///
/// `cap_limit` guards against instances where `Σ C_v` is astronomically
/// larger than useful (a copy count above `deg(v)` can never matter, so we
/// also clamp to the degree). Pass `u64::MAX` for the textbook reduction.
pub fn vertex_split(g: &Bipartite, cap_limit: u64) -> SplitGraph {
    let mut origin: Vec<RightId> = Vec::new();
    let mut copies_of: Vec<(u32, u32)> = Vec::with_capacity(g.n_right()); // (first_copy, count)
    for v in 0..g.n_right() as u32 {
        let useful = (g.capacity(v))
            .min(cap_limit)
            .min(g.right_degree(v) as u64)
            .max(1) as u32;
        copies_of.push((origin.len() as u32, useful));
        for _ in 0..useful {
            origin.push(v);
        }
    }
    let n_right_split = origin.len();
    let m_split: usize = (0..g.n_right() as u32)
        .map(|v| g.right_degree(v) * copies_of[v as usize].1 as usize)
        .sum();
    let mut b = BipartiteBuilder::with_edge_capacity(g.n_left(), n_right_split, m_split);
    for v in 0..g.n_right() as u32 {
        let (first, count) = copies_of[v as usize];
        for &u in g.right_neighbors(v) {
            for c in 0..count {
                b.add_edge(u, first + c);
            }
        }
    }
    let graph = b
        .build_with_uniform_capacity(1)
        .expect("split edges are in range");
    SplitGraph { graph, origin }
}

/// Map a matching of the split graph (list of `(u, v')` pairs) back to an
/// allocation of the original graph (list of `(u, v)` pairs).
pub fn unsplit_matching(split: &SplitGraph, matching: &[(u32, u32)]) -> Vec<(u32, RightId)> {
    matching
        .iter()
        .map(|&(u, vp)| (u, split.origin[vp as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::star;
    use crate::sparsity::degeneracy;
    use crate::BipartiteBuilder;

    #[test]
    fn star_blowup() {
        // Star with n leaves, center capacity n-1 → split graph is
        // K_{n, n-1}: arboricity jumps from 1 to Θ(n).
        let n = 32;
        let g = star(n, (n - 1) as u64).graph;
        assert_eq!(degeneracy(&g), 1);
        let split = vertex_split(&g, u64::MAX);
        assert_eq!(split.graph.n_right(), n - 1);
        assert_eq!(split.graph.m(), n * (n - 1));
        let d = degeneracy(&split.graph);
        assert!(
            d as usize >= n / 2,
            "expected Θ(n) degeneracy after split, got {d}"
        );
    }

    #[test]
    fn unit_capacities_are_identity() {
        let mut b = BipartiteBuilder::new(3, 3);
        for (u, v) in [(0u32, 0u32), (1, 1), (2, 2), (0, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let split = vertex_split(&g, u64::MAX);
        assert_eq!(split.graph.n_right(), 3);
        assert_eq!(split.graph.m(), g.m());
        assert_eq!(split.origin, vec![0, 1, 2]);
    }

    #[test]
    fn copies_clamped_to_degree() {
        // Capacity 100 but degree 2 → only 2 useful copies.
        let mut b = BipartiteBuilder::new(2, 1);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        let g = b.build(vec![100]).unwrap();
        let split = vertex_split(&g, u64::MAX);
        assert_eq!(split.graph.n_right(), 2);
        assert_eq!(split.graph.m(), 4);
    }

    #[test]
    fn cap_limit_applies() {
        let g = star(10, 8).graph;
        let split = vertex_split(&g, 3);
        assert_eq!(split.graph.n_right(), 3);
    }

    #[test]
    fn unsplit_roundtrip() {
        let g = star(4, 2).graph;
        let split = vertex_split(&g, u64::MAX);
        // Match leaves 0 and 3 to the two copies.
        let matching = vec![(0u32, 0u32), (3, 1)];
        let alloc = unsplit_matching(&split, &matching);
        assert_eq!(alloc, vec![(0, 0), (3, 0)]);
    }
}

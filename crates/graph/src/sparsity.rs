//! Uniform-sparsity toolkit: degeneracy and Nash–Williams density bounds.
//!
//! The arboricity `λ(G)` (paper, Definition 4) is bracketed by two cheap,
//! certified quantities:
//!
//! * **Nash–Williams lower bound** — for any subgraph `H`,
//!   `λ ≥ ⌈m_H / (n_H − 1)⌉`; we evaluate it on the whole graph and on the
//!   densest peel prefix found during degeneracy computation.
//! * **Degeneracy upper bound** — the degeneracy `d(G)` (max over the
//!   min-degree peeling) satisfies `λ ≤ d ≤ 2λ − 1`, so degeneracy is a
//!   2-approximation of arboricity from above.
//!
//! An exact densest-subgraph bound via max-flow lives in the `flow` crate
//! (it needs Dinic); this module is dependency-free and `O(n + m)`.

use crate::bipartite::Bipartite;

/// Result of the min-degree peeling (core decomposition) of the bipartite
/// graph viewed as a general graph on `n_left + n_right` vertices.
#[derive(Debug, Clone)]
pub struct Peeling {
    /// The degeneracy: the largest minimum degree seen while peeling.
    pub degeneracy: u32,
    /// Global vertex ids (`0..n_left` = left, `n_left..n` = right) in peel
    /// order (first peeled first).
    pub order: Vec<u32>,
    /// Core number of each global vertex.
    pub core_number: Vec<u32>,
}

/// Min-degree peeling in `O(n + m)` using bucketed degrees.
///
/// The degeneracy `d` certifies `λ(G) ≤ d` (every graph with degeneracy `d`
/// decomposes into `d` forests via the peel-order orientation).
pub fn peel(g: &Bipartite) -> Peeling {
    let nl = g.n_left();
    let n = g.n();
    let global_degree = |x: usize| -> usize {
        if x < nl {
            g.left_degree(x as u32)
        } else {
            g.right_degree((x - nl) as u32)
        }
    };

    let mut deg: Vec<usize> = (0..n).map(global_degree).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // Bucket queue: bucket[d] holds vertices of current degree d.
    let mut bucket_heads: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (x, &d) in deg.iter().enumerate() {
        bucket_heads[d].push(x as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut core_number = vec![0u32; n];
    let mut degeneracy = 0u32;
    let mut cur = 0usize;

    // Loop until every vertex is peeled: an iteration that only discards
    // stale lazy-deletion entries removes nothing, so a fixed `n`-iteration
    // loop would terminate early. Each iteration pops at least one queue
    // entry (or breaks), and the total number of entries is O(n + m).
    while order.len() < n {
        // Find the lowest non-empty bucket at or above `cur` rewinding as
        // needed (degrees only decrease by 1 per removal, so cur-1 suffices,
        // but we rewind defensively to 0 on exhaustion).
        while cur <= max_deg && bucket_heads[cur].is_empty() {
            cur += 1;
        }
        if cur > max_deg {
            break;
        }
        // Lazy deletion: skip stale entries (vertex already removed or its
        // degree has since dropped below this bucket).
        let x = loop {
            match bucket_heads[cur].pop() {
                Some(x) if !removed[x as usize] && deg[x as usize] == cur => break Some(x),
                Some(_) => continue,
                None => break None,
            }
        };
        let Some(x) = x else {
            continue;
        };
        removed[x as usize] = true;
        degeneracy = degeneracy.max(cur as u32);
        core_number[x as usize] = degeneracy;
        order.push(x);

        let x = x as usize;
        let neighbors: &mut dyn Iterator<Item = usize> = if x < nl {
            &mut g.left_neighbors(x as u32).iter().map(|&v| nl + v as usize)
        } else {
            &mut g
                .right_neighbors((x - nl) as u32)
                .iter()
                .map(|&u| u as usize)
        };
        for y in neighbors {
            if !removed[y] && deg[y] > 0 {
                deg[y] -= 1;
                bucket_heads[deg[y]].push(y as u32);
                if deg[y] < cur {
                    cur = deg[y];
                }
            }
        }
    }

    Peeling {
        degeneracy,
        order,
        core_number,
    }
}

/// Degeneracy of the graph (`λ ≤ degeneracy ≤ 2λ − 1`).
pub fn degeneracy(g: &Bipartite) -> u32 {
    peel(g).degeneracy
}

/// Nash–Williams lower bound evaluated on the whole graph:
/// `λ ≥ ⌈m / (n − 1)⌉` (0 for graphs with ≤ 1 vertex or no edges).
pub fn nash_williams_whole_graph(g: &Bipartite) -> u32 {
    if g.n() <= 1 || g.m() == 0 {
        return if g.m() > 0 { 1 } else { 0 };
    }
    (g.m() as u64).div_ceil(g.n() as u64 - 1) as u32
}

/// A stronger Nash–Williams lower bound: evaluate `⌈m_H/(n_H − 1)⌉` on every
/// *suffix* of the peel order (the last `k` peeled vertices induce the
/// densest cores) and take the max. `O(n + m)` after peeling.
pub fn nash_williams_peel_suffixes(g: &Bipartite) -> u32 {
    let peeling = peel(g);
    let nl = g.n_left();
    let n = g.n();
    // position of each vertex in peel order
    let mut pos = vec![0u32; n];
    for (i, &x) in peeling.order.iter().enumerate() {
        pos[x as usize] = i as u32;
    }
    // For every edge, it is inside the suffix starting at index i iff both
    // endpoints have pos ≥ i, i.e. min(pos_u, pos_v) ≥ i. Count edges by
    // min-pos and suffix-sum.
    let mut edges_by_minpos = vec![0u64; n + 1];
    for (_, u, v) in g.edges() {
        let pu = pos[u as usize];
        let pv = pos[nl + v as usize];
        edges_by_minpos[pu.min(pv) as usize] += 1;
    }
    let mut best = 0u32;
    let mut m_suffix = 0u64;
    for i in (0..n).rev() {
        m_suffix += edges_by_minpos[i];
        let n_suffix = (n - i) as u64;
        if n_suffix >= 2 && m_suffix > 0 {
            best = best.max(m_suffix.div_ceil(n_suffix - 1) as u32);
        }
    }
    if best == 0 && g.m() > 0 {
        best = 1;
    }
    best
}

/// Certified bracket `[lo, hi]` with `lo ≤ λ(G) ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArboricityBracket {
    /// Nash–Williams lower bound over peel suffixes.
    pub lower: u32,
    /// Degeneracy upper bound.
    pub upper: u32,
}

/// Bracket the arboricity from both sides in `O(n + m)`.
pub fn arboricity_bracket(g: &Bipartite) -> ArboricityBracket {
    ArboricityBracket {
        lower: nash_williams_peel_suffixes(g),
        upper: degeneracy(g).max(if g.m() > 0 { 1 } else { 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, star, union_of_spanning_trees};
    use crate::BipartiteBuilder;

    #[test]
    fn star_degeneracy_is_one() {
        let g = star(50, 3).graph;
        assert_eq!(degeneracy(&g), 1);
        let br = arboricity_bracket(&g);
        assert_eq!(br.lower, 1);
        assert_eq!(br.upper, 1);
    }

    #[test]
    fn forest_union_bracket() {
        for k in [1u32, 2, 4, 8] {
            let gen = union_of_spanning_trees(400, 400, k, 1, 3);
            let br = arboricity_bracket(&gen.graph);
            assert!(
                br.lower <= gen.lambda_upper,
                "NW lower {} exceeds certified λ ≤ {}",
                br.lower,
                gen.lambda_upper
            );
            assert!(
                br.upper <= 2 * gen.lambda_upper,
                "degeneracy {} exceeds 2λ bound {}",
                br.upper,
                2 * gen.lambda_upper
            );
            assert!(br.lower >= (k.saturating_sub(1)).max(1));
        }
    }

    #[test]
    fn complete_bipartite_degeneracy() {
        // K_{a,b} has degeneracy min(a, b).
        let (a, b_sz) = (6usize, 9usize);
        let mut b = BipartiteBuilder::new(a, b_sz);
        for u in 0..a as u32 {
            for v in 0..b_sz as u32 {
                b.add_edge(u, v);
            }
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(degeneracy(&g), a.min(b_sz) as u32);
        // NW on whole graph: ⌈54 / 14⌉ = 4 ≤ λ(K_{6,9}).
        assert!(nash_williams_whole_graph(&g) >= 4);
    }

    #[test]
    fn grid_bracket() {
        let g = grid(20, 20, 1).graph;
        let br = arboricity_bracket(&g);
        assert!(br.lower >= 1 && br.lower <= 2);
        assert!(br.upper <= 3, "grid degeneracy is ≤ 2, got {}", br.upper);
    }

    #[test]
    fn peel_order_is_a_permutation() {
        let gen = union_of_spanning_trees(64, 64, 3, 1, 8);
        let p = peel(&gen.graph);
        let mut seen = vec![false; gen.graph.n()];
        for &x in &p.order {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn core_numbers_monotone_under_peel() {
        // Core numbers along the peel order never decrease.
        let gen = union_of_spanning_trees(128, 128, 4, 1, 2);
        let p = peel(&gen.graph);
        let mut last = 0;
        for &x in &p.order {
            let c = p.core_number[x as usize];
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn empty_and_tiny() {
        let g = BipartiteBuilder::new(0, 0)
            .build_with_uniform_capacity(1)
            .unwrap();
        assert_eq!(degeneracy(&g), 0);
        assert_eq!(nash_williams_whole_graph(&g), 0);

        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(nash_williams_whole_graph(&g), 1);
        let br = arboricity_bracket(&g);
        assert_eq!((br.lower, br.upper), (1, 1));
    }

    #[test]
    fn suffix_bound_at_least_whole_graph_bound() {
        let gen = union_of_spanning_trees(256, 256, 5, 1, 77);
        assert!(nash_williams_peel_suffixes(&gen.graph) >= nash_williams_whole_graph(&gen.graph));
    }
}

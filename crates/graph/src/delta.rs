//! A mutable overlay over an immutable [`Bipartite`] snapshot.
//!
//! [`Bipartite`] is frozen CSR by design — every solver in the workspace
//! relies on that. The dynamic-allocation engine
//! (`sparse-alloc-dynamic`) nevertheless has to absorb a live stream of
//! edge inserts/deletes, left-vertex arrivals/departures, and capacity
//! changes. [`DeltaGraph`] reconciles the two: the base snapshot stays
//! immutable, mutations accumulate in small overlay structures, and
//! [`DeltaGraph::compact`] periodically folds the overlay back into a
//! fresh CSR snapshot.
//!
//! Adjacency queries see the *live* graph (base minus removed edges plus
//! overlay edges); their cost is the base CSR scan plus an `O(1)` hash
//! probe per base edge and an `O(deg_overlay)` tail. Left vertices keep
//! stable ids across every mutation and across compaction: departures
//! leave a degree-0 slot behind, arrivals append at the end. The right
//! vertex set is fixed (capacity changes are in-place), matching the
//! paper's serving setting where servers are long-lived and clients churn.

use std::collections::{HashMap, HashSet};

use crate::bipartite::{Bipartite, LeftId, RightId};
use crate::builder::BipartiteBuilder;
use crate::io::{self, ByteReader, ByteWriter, IoError};

/// A live bipartite graph: an immutable base snapshot plus a mutation
/// overlay.
///
/// Construction starts from a snapshot ([`DeltaGraph::new`]); mutations
/// go through [`insert_edge`](DeltaGraph::insert_edge),
/// [`delete_edge`](DeltaGraph::delete_edge),
/// [`arrive`](DeltaGraph::arrive), [`depart`](DeltaGraph::depart) and
/// [`set_capacity`](DeltaGraph::set_capacity). When
/// [`overlay_edges`](DeltaGraph::overlay_edges) grows past the caller's
/// budget, [`compact`](DeltaGraph::compact) produces a fresh snapshot
/// with identical vertex ids.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Bipartite,
    /// Adjacency of arrived left vertices (ids `base.n_left()..`).
    extra_adj: Vec<Vec<RightId>>,
    /// Overlay edges attached to *base* left vertices.
    added: HashMap<LeftId, Vec<RightId>>,
    /// Deleted base edges (overlay edges are deleted in place instead).
    removed: HashSet<(LeftId, RightId)>,
    /// Per-vertex counts of removed base edges: the adjacency iterators
    /// skip the hash probe entirely for the (at low churn, vast) majority
    /// of vertices with no deletions.
    removed_left: Vec<u32>,
    removed_right: Vec<u32>,
    /// Reverse index of all overlay edges, per right vertex.
    added_right: HashMap<RightId, Vec<LeftId>>,
    /// Per-vertex counts of overlay edges, the additive mirror of
    /// `removed_left`/`removed_right`: adjacency scans hash into
    /// `added`/`added_right` only for vertices that actually carry staged
    /// edges. (`added_left_n` covers base lefts; arrivals live in
    /// `extra_adj` and never hash.)
    added_left_n: Vec<u32>,
    added_right_n: Vec<u32>,
    /// Live capacities (base capacities with in-place overrides).
    caps: Vec<u64>,
    /// Live edge count.
    m_live: usize,
}

impl DeltaGraph {
    /// Wrap a frozen snapshot with an empty overlay.
    pub fn new(base: Bipartite) -> Self {
        let caps = base.capacities().to_vec();
        let m_live = base.m();
        let removed_left = vec![0; base.n_left()];
        let removed_right = vec![0; base.n_right()];
        let added_left_n = vec![0; base.n_left()];
        let added_right_n = vec![0; base.n_right()];
        DeltaGraph {
            base,
            extra_adj: Vec::new(),
            added: HashMap::new(),
            removed: HashSet::new(),
            removed_left,
            removed_right,
            added_right: HashMap::new(),
            added_left_n,
            added_right_n,
            caps,
            m_live,
        }
    }

    /// The underlying frozen snapshot (pre-overlay).
    pub fn base(&self) -> &Bipartite {
        &self.base
    }

    /// Number of left vertices, including arrivals and departed slots.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.base.n_left() + self.extra_adj.len()
    }

    /// Number of right vertices (fixed for the lifetime of the overlay).
    #[inline]
    pub fn n_right(&self) -> usize {
        self.base.n_right()
    }

    /// Live number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m_live
    }

    /// Live capacity of right vertex `v`.
    #[inline]
    pub fn capacity(&self, v: RightId) -> u64 {
        self.caps[v as usize]
    }

    /// The live capacity vector.
    #[inline]
    pub fn capacities(&self) -> &[u64] {
        &self.caps
    }

    /// Number of edges living in the overlay (deleted base edges count:
    /// they are consulted on every base scan until compaction).
    pub fn overlay_edges(&self) -> usize {
        let added: usize = self.added.values().map(Vec::len).sum();
        let extra: usize = self.extra_adj.iter().map(Vec::len).sum();
        self.removed.len() + added + extra
    }

    /// Does the live graph contain edge `(u, v)`?
    pub fn has_edge(&self, u: LeftId, v: RightId) -> bool {
        if (u as usize) < self.base.n_left() {
            let in_base = self.base.left_neighbors(u).binary_search(&v).is_ok()
                && (self.removed_left[u as usize] == 0 || !self.removed.contains(&(u, v)));
            in_base
                || (self.added_left_n[u as usize] != 0
                    && self.added.get(&u).is_some_and(|a| a.contains(&v)))
        } else {
            self.extra_adj
                .get(u as usize - self.base.n_left())
                .is_some_and(|a| a.contains(&v))
        }
    }

    /// Live neighbors of left vertex `u`.
    pub fn left_neighbors_iter(&self, u: LeftId) -> impl Iterator<Item = RightId> + Clone + '_ {
        static EMPTY: [RightId; 0] = [];
        let (base_slice, overlay): (&[RightId], &[RightId]) = if (u as usize) < self.base.n_left() {
            (
                self.base.left_neighbors(u),
                if self.added_left_n[u as usize] == 0 {
                    &EMPTY[..]
                } else {
                    self.added.get(&u).map_or(&EMPTY[..], Vec::as_slice)
                },
            )
        } else {
            (
                &EMPTY[..],
                self.extra_adj[u as usize - self.base.n_left()].as_slice(),
            )
        };
        let untouched = (u as usize) >= self.base.n_left() || self.removed_left[u as usize] == 0;
        base_slice
            .iter()
            .copied()
            .filter(move |&v| untouched || !self.removed.contains(&(u, v)))
            .chain(overlay.iter().copied())
    }

    /// Live neighbors of right vertex `v`.
    pub fn right_neighbors_iter(&self, v: RightId) -> impl Iterator<Item = LeftId> + Clone + '_ {
        static EMPTY: [LeftId; 0] = [];
        let untouched = self.removed_right[v as usize] == 0;
        self.base
            .right_neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| untouched || !self.removed.contains(&(u, v)))
            .chain(
                if self.added_right_n[v as usize] == 0 {
                    &EMPTY[..]
                } else {
                    self.added_right.get(&v).map_or(&EMPTY[..], Vec::as_slice)
                }
                .iter()
                .copied(),
            )
    }

    /// Visit every live neighbor of left vertex `u` — the closure-based
    /// mirror of [`DeltaGraph::left_neighbors_iter`], same edges in the
    /// same order. On hot paths (the conflict scheduler's ball growth
    /// calls this once per scanned vertex) the visitor form beats the
    /// chained iterator: the deleted-edge branch and the overlay hash
    /// probe are hoisted out of the per-edge loop, which runs over plain
    /// slices.
    #[inline]
    pub fn for_each_left_neighbor(&self, u: LeftId, mut f: impl FnMut(RightId)) {
        if (u as usize) < self.base.n_left() {
            let base = self.base.left_neighbors(u);
            if self.removed_left[u as usize] == 0 {
                for &v in base {
                    f(v);
                }
            } else {
                for &v in base {
                    if !self.removed.contains(&(u, v)) {
                        f(v);
                    }
                }
            }
            if self.added_left_n[u as usize] != 0 {
                if let Some(extra) = self.added.get(&u) {
                    for &v in extra {
                        f(v);
                    }
                }
            }
        } else if let Some(extra) = self.extra_adj.get(u as usize - self.base.n_left()) {
            for &v in extra {
                f(v);
            }
        }
    }

    /// Visit every live neighbor of right vertex `v` — the closure-based
    /// mirror of [`DeltaGraph::right_neighbors_iter`] (see
    /// [`DeltaGraph::for_each_left_neighbor`] for why it exists).
    #[inline]
    pub fn for_each_right_neighbor(&self, v: RightId, mut f: impl FnMut(LeftId)) {
        let base = self.base.right_neighbors(v);
        if self.removed_right[v as usize] == 0 {
            for &u in base {
                f(u);
            }
        } else {
            for &u in base {
                if !self.removed.contains(&(u, v)) {
                    f(u);
                }
            }
        }
        if self.added_right_n[v as usize] != 0 {
            if let Some(extra) = self.added_right.get(&v) {
                for &u in extra {
                    f(u);
                }
            }
        }
    }

    /// Live degree of left vertex `u` (0 after departure).
    pub fn left_degree(&self, u: LeftId) -> usize {
        self.left_neighbors_iter(u).count()
    }

    /// Live degree of right vertex `v`.
    pub fn right_degree(&self, v: RightId) -> usize {
        self.right_neighbors_iter(v).count()
    }

    /// Insert edge `(u, v)`. Returns `false` (and changes nothing) if the
    /// edge already exists.
    ///
    /// # Panics
    /// Panics if `u ≥ n_left()` or `v ≥ n_right()` — grow the left side
    /// with [`arrive`](DeltaGraph::arrive) first.
    pub fn insert_edge(&mut self, u: LeftId, v: RightId) -> bool {
        assert!((u as usize) < self.n_left(), "left vertex {u} out of range");
        assert!(
            (v as usize) < self.n_right(),
            "right vertex {v} out of range"
        );
        if self.has_edge(u, v) {
            return false;
        }
        // Re-inserting a deleted base edge just un-deletes it; the base CSR
        // already stores it in both directions.
        if (u as usize) < self.base.n_left() && self.removed.remove(&(u, v)) {
            self.removed_left[u as usize] -= 1;
            self.removed_right[v as usize] -= 1;
            self.m_live += 1;
            return true;
        }
        if (u as usize) < self.base.n_left() {
            self.added.entry(u).or_default().push(v);
            self.added_left_n[u as usize] += 1;
        } else {
            self.extra_adj[u as usize - self.base.n_left()].push(v);
        }
        self.added_right.entry(v).or_default().push(u);
        self.added_right_n[v as usize] += 1;
        self.m_live += 1;
        true
    }

    /// Delete edge `(u, v)`. Returns `false` if the edge is not live.
    pub fn delete_edge(&mut self, u: LeftId, v: RightId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        let base_edge = (u as usize) < self.base.n_left()
            && self.base.left_neighbors(u).binary_search(&v).is_ok()
            && !self.removed.contains(&(u, v));
        if base_edge {
            self.removed.insert((u, v));
            self.removed_left[u as usize] += 1;
            self.removed_right[v as usize] += 1;
        } else {
            if (u as usize) < self.base.n_left() {
                self.added
                    .get_mut(&u)
                    .expect("overlay edge")
                    .retain(|&w| w != v);
                self.added_left_n[u as usize] -= 1;
            } else {
                self.extra_adj[u as usize - self.base.n_left()].retain(|&w| w != v);
            }
            self.added_right
                .get_mut(&v)
                .expect("reverse overlay edge")
                .retain(|&w| w != u);
            self.added_right_n[v as usize] -= 1;
        }
        self.m_live -= 1;
        true
    }

    /// A new left vertex arrives with the given neighbor set (deduplicated)
    /// and receives the next free id, which is returned.
    ///
    /// # Panics
    /// Panics if any neighbor is out of range.
    pub fn arrive(&mut self, neighbors: &[RightId]) -> LeftId {
        let u = self.n_left() as LeftId;
        self.arrive_at(u, neighbors);
        u
    }

    /// A new left vertex arrives under a *caller-assigned* id `u` — the id
    /// the serial engine would have handed out in batch order. The wave
    /// scheduler precomputes those ids, which lets commuting (footprint-
    /// disjoint) arrivals execute out of batch order: if a later-id arrival
    /// runs first, the id space grows with edge-free placeholder slots that
    /// stay invisible to every traversal (degree 0, unmatched) until their
    /// own arrival fills them. Within one batch every scheduled arrival
    /// executes, so no placeholder outlives the batch.
    ///
    /// # Panics
    /// Panics if `u` addresses a base (pre-overlay) vertex, if the slot is
    /// already occupied by an arrival with edges, or if any neighbor is out
    /// of range.
    pub fn arrive_at(&mut self, u: LeftId, neighbors: &[RightId]) {
        let base = self.base.n_left();
        assert!(
            (u as usize) >= base,
            "arrive_at({u}) addresses a base vertex"
        );
        let slot = u as usize - base;
        if slot >= self.extra_adj.len() {
            self.extra_adj.resize_with(slot + 1, Vec::new);
        }
        assert!(
            self.extra_adj[slot].is_empty(),
            "arrive_at({u}) would overwrite an occupied slot"
        );
        let mut adj: Vec<RightId> = neighbors.to_vec();
        adj.sort_unstable();
        adj.dedup();
        for &v in &adj {
            assert!(
                (v as usize) < self.n_right(),
                "right vertex {v} out of range"
            );
            self.added_right.entry(v).or_default().push(u);
            self.added_right_n[v as usize] += 1;
        }
        self.m_live += adj.len();
        self.extra_adj[slot] = adj;
    }

    /// Left vertex `u` departs: all its incident edges are removed. Its id
    /// stays allocated (degree 0), so per-left arrays never shift. Returns
    /// the neighbors it had at departure.
    pub fn depart(&mut self, u: LeftId) -> Vec<RightId> {
        let neighbors: Vec<RightId> = self.left_neighbors_iter(u).collect();
        for &v in &neighbors {
            self.delete_edge(u, v);
        }
        neighbors
    }

    /// Change the capacity of right vertex `v`.
    ///
    /// # Panics
    /// Panics if `cap == 0` (the allocation problem requires `C_v ≥ 1`).
    pub fn set_capacity(&mut self, v: RightId, cap: u64) {
        assert!(cap >= 1, "capacities must be ≥ 1");
        self.caps[v as usize] = cap;
    }

    /// Split the live graph into per-shard snapshots by right-vertex
    /// ownership: shard `s` receives exactly the live edges whose right
    /// endpoint `v` has `owner(v) == s`. Every shard keeps the full vertex
    /// id space (ids are stable across shards and across compactions) and
    /// the full live capacity vector, so per-shard solvers index the same
    /// arrays the global engine does. `O(n·shards + m)`.
    ///
    /// This is the distributed serve loop's "per-shard compaction": each
    /// machine folds only its owned slice of the overlay, and the union of
    /// the shards' edge sets is the live edge set, each edge appearing on
    /// exactly one shard.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `owner` returns an id `≥ shards`.
    pub fn partition_by_right<F>(&self, shards: usize, owner: F) -> Vec<Bipartite>
    where
        F: Fn(RightId) -> usize,
    {
        assert!(shards >= 1, "partition needs at least one shard");
        let mut builders: Vec<BipartiteBuilder> = (0..shards)
            .map(|_| BipartiteBuilder::new(self.n_left(), self.n_right()))
            .collect();
        for u in 0..self.n_left() as u32 {
            for v in self.left_neighbors_iter(u) {
                let s = owner(v);
                assert!(s < shards, "owner({v}) = {s} out of range");
                builders[s].add_edge(u, v);
            }
        }
        builders
            .into_iter()
            .map(|b| {
                b.build(self.caps.clone())
                    .expect("overlay edges are range-checked on insertion")
            })
            .collect()
    }

    /// Start a thin insert-only overlay view over the live graph — the
    /// union graph `G⁺` of a scheduling batch. See [`InsertOverlay`].
    pub fn insert_overlay(&self) -> InsertOverlay<'_> {
        InsertOverlay::new(self)
    }

    /// Serialize the *full* overlay state — base snapshot, staged edges,
    /// arrivals, deletions, reverse index, live capacities — into the
    /// binary snapshot encoding.
    ///
    /// Why not just [`compact`](DeltaGraph::compact) and serialize the
    /// CSR? Because adjacency *iteration order* is observable: the
    /// dynamic engine's bounded augmenting-walk searches traverse
    /// [`left_neighbors_iter`](DeltaGraph::left_neighbors_iter) /
    /// [`right_neighbors_iter`](DeltaGraph::right_neighbors_iter) in
    /// base-then-overlay order, and a warm restart that silently
    /// compacted would explore walks in CSR order instead — same live
    /// graph, different repairs, diverging state. Persisting the overlay
    /// verbatim (per-vertex list order included) is what makes a restored
    /// engine bit-identical to the uninterrupted one. Hash-map sections
    /// are written in sorted key order, so identical overlays produce
    /// identical bytes.
    pub fn encode(&self, w: &mut ByteWriter) {
        io::write_bipartite(&self.base, w);
        w.put_vec_u64(&self.caps);
        w.put_u64(self.extra_adj.len() as u64);
        for adj in &self.extra_adj {
            w.put_vec_u32(adj);
        }
        let mut added: Vec<(LeftId, &Vec<RightId>)> =
            self.added.iter().map(|(&u, vs)| (u, vs)).collect();
        added.sort_unstable_by_key(|&(u, _)| u);
        w.put_u64(added.len() as u64);
        for (u, vs) in added {
            w.put_u32(u);
            w.put_vec_u32(vs);
        }
        let mut removed: Vec<(LeftId, RightId)> = self.removed.iter().copied().collect();
        removed.sort_unstable();
        w.put_u64(removed.len() as u64);
        for (u, v) in removed {
            w.put_u32(u);
            w.put_u32(v);
        }
        let mut added_right: Vec<(RightId, &Vec<LeftId>)> =
            self.added_right.iter().map(|(&v, us)| (v, us)).collect();
        added_right.sort_unstable_by_key(|&(v, _)| v);
        w.put_u64(added_right.len() as u64);
        for (v, us) in added_right {
            w.put_u32(v);
            w.put_vec_u32(us);
        }
    }

    /// Parse the overlay state written by [`encode`](DeltaGraph::encode),
    /// re-validating every structural invariant (the payload is an
    /// external input): index ranges, deletions that name real base
    /// edges, duplicate-free staged adjacency, and a reverse index that
    /// is exactly the forward overlay transposed. Derived fields (live
    /// edge count, per-vertex deletion counters) are recomputed rather
    /// than trusted.
    pub fn decode(r: &mut ByteReader) -> Result<DeltaGraph, IoError> {
        let bad = |msg: String| IoError::Parse(format!("delta overlay: {msg}"));
        let base = io::read_bipartite(r)?;
        let caps = r.take_vec_u64()?;
        if caps.len() != base.n_right() {
            return Err(bad(format!(
                "{} live capacities for {} right vertices",
                caps.len(),
                base.n_right()
            )));
        }
        if caps.contains(&0) {
            return Err(bad("live capacity 0 (capacities must be ≥ 1)".into()));
        }
        let n_right = base.n_right();
        let check_right = |v: u32| (v as usize) < n_right;
        let n_extra = r.take_len(8)?;
        let mut extra_adj: Vec<Vec<RightId>> = Vec::with_capacity(n_extra);
        for _ in 0..n_extra {
            let adj = r.take_vec_u32()?;
            let mut sorted = adj.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != adj.len() {
                return Err(bad("duplicate edge in an arrival's adjacency".into()));
            }
            if adj.iter().any(|&v| !check_right(v)) {
                return Err(bad("arrival neighbor out of range".into()));
            }
            extra_adj.push(adj);
        }
        let n_left_total = base.n_left() + extra_adj.len();

        let n_added = r.take_len(12)?;
        let mut added: HashMap<LeftId, Vec<RightId>> = HashMap::with_capacity(n_added);
        for _ in 0..n_added {
            let u = r.take_u32()?;
            let vs = r.take_vec_u32()?;
            if (u as usize) >= base.n_left() {
                return Err(bad(format!("overlay edges staged on non-base left {u}")));
            }
            let mut sorted = vs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != vs.len() {
                return Err(bad(format!("duplicate overlay edge at left {u}")));
            }
            for &v in &vs {
                if !check_right(v) {
                    return Err(bad(format!("overlay edge ({u}, {v}) out of range")));
                }
                if base.left_neighbors(u).binary_search(&v).is_ok() {
                    return Err(bad(format!("overlay edge ({u}, {v}) duplicates the base")));
                }
            }
            if added.insert(u, vs).is_some() {
                return Err(bad(format!("left {u} listed twice in the overlay")));
            }
        }

        let n_removed = r.take_len(8)?;
        let mut removed: HashSet<(LeftId, RightId)> = HashSet::with_capacity(n_removed);
        let mut removed_left = vec![0u32; base.n_left()];
        let mut removed_right = vec![0u32; base.n_right()];
        for _ in 0..n_removed {
            let u = r.take_u32()?;
            let v = r.take_u32()?;
            if (u as usize) >= base.n_left() || base.left_neighbors(u).binary_search(&v).is_err() {
                return Err(bad(format!("deleted edge ({u}, {v}) is not a base edge")));
            }
            if !removed.insert((u, v)) {
                return Err(bad(format!("edge ({u}, {v}) deleted twice")));
            }
            removed_left[u as usize] += 1;
            removed_right[v as usize] += 1;
        }

        // The reverse index must be exactly the forward overlay
        // transposed — count every staged edge in both directions.
        let mut pending: HashMap<(LeftId, RightId), i64> = HashMap::new();
        for (&u, vs) in &added {
            for &v in vs {
                *pending.entry((u, v)).or_insert(0) += 1;
            }
        }
        for (i, adj) in extra_adj.iter().enumerate() {
            let u = (base.n_left() + i) as u32;
            for &v in adj {
                *pending.entry((u, v)).or_insert(0) += 1;
            }
        }
        let n_ar = r.take_len(12)?;
        let mut added_right: HashMap<RightId, Vec<LeftId>> = HashMap::with_capacity(n_ar);
        for _ in 0..n_ar {
            let v = r.take_u32()?;
            let us = r.take_vec_u32()?;
            if !check_right(v) {
                return Err(bad(format!("reverse index right {v} out of range")));
            }
            for &u in &us {
                if (u as usize) >= n_left_total {
                    return Err(bad(format!("reverse index left {u} out of range")));
                }
                *pending.entry((u, v)).or_insert(0) -= 1;
            }
            if added_right.insert(v, us).is_some() {
                return Err(bad(format!("right {v} listed twice in the reverse index")));
            }
        }
        if pending.values().any(|&c| c != 0) {
            return Err(bad(
                "reverse index disagrees with the staged adjacency".into()
            ));
        }

        let staged: usize = added.values().map(Vec::len).sum::<usize>()
            + extra_adj.iter().map(Vec::len).sum::<usize>();
        let m_live = base.m() - removed.len() + staged;
        let mut added_left_n = vec![0u32; base.n_left()];
        for (&u, vs) in &added {
            added_left_n[u as usize] = vs.len() as u32;
        }
        let mut added_right_n = vec![0u32; base.n_right()];
        for (&v, us) in &added_right {
            added_right_n[v as usize] = us.len() as u32;
        }
        Ok(DeltaGraph {
            base,
            extra_adj,
            added,
            removed,
            removed_left,
            removed_right,
            added_right,
            added_left_n,
            added_right_n,
            caps,
            m_live,
        })
    }

    /// Fold the overlay into a fresh frozen snapshot with identical vertex
    /// ids (departed left slots persist with degree 0). `O(n + m)`.
    pub fn compact(&self) -> Bipartite {
        let mut b = BipartiteBuilder::with_edge_capacity(self.n_left(), self.n_right(), self.m());
        for u in 0..self.n_left() as u32 {
            for v in self.left_neighbors_iter(u) {
                b.add_edge(u, v);
            }
        }
        b.build(self.caps.clone())
            .expect("overlay edges are range-checked on insertion")
    }
}

/// Sentinel for "no further overlay edge" in [`InsertOverlay`]'s links.
const NO_LINK: u32 = u32::MAX;

/// A thin insert-only view over a [`DeltaGraph`]: the live graph plus a
/// batch of pending edge inserts and left-vertex arrivals, **without
/// copying the base**.
///
/// The conflict scheduler of the dynamic subsystem computes update
/// footprints on the batch's union graph `G⁺` (live edges plus every edge
/// any update in the batch inserts — deletions are ignored, they only
/// shrink reachability). Cloning the whole `DeltaGraph` per batch costs
/// `O(n + m)` with hashing; this view costs `O(n)` dense index arrays at
/// construction plus `O(1)` per staged insert, and adjacency queries pay
/// the underlying live scan plus an `O(deg⁺)` linked-list tail — no
/// hashing on the per-edge path.
///
/// The view is *additive only*: staged inserts cannot be deleted, and the
/// underlying graph stays untouched (scheduling "reverts" by dropping the
/// view). Staged adjacency is set-equal to applying the same inserts to a
/// clone; iteration *order* of overlay tails may differ for re-inserted
/// deleted base edges (the clone would revive them in CSR position), which
/// is immaterial to ball/reachability computations.
#[derive(Debug)]
pub struct InsertOverlay<'a> {
    dg: &'a DeltaGraph,
    base_n_left: usize,
    /// Adjacency of staged arrivals (ids `dg.n_left()..`), including any
    /// staged inserts that target them.
    extra: Vec<Vec<RightId>>,
    /// Per base-left first/last staged edge (index into `left_links`).
    left_head: Vec<u32>,
    left_tail: Vec<u32>,
    /// `(right endpoint, next link)` chains of staged base-left edges.
    left_links: Vec<(RightId, u32)>,
    /// Per right vertex first/last staged edge (index into `right_links`).
    right_head: Vec<u32>,
    right_tail: Vec<u32>,
    /// `(left endpoint, next link)` chains of staged right-side edges.
    right_links: Vec<(LeftId, u32)>,
}

impl<'a> InsertOverlay<'a> {
    /// An empty overlay view of `dg`. `O(n_left + n_right)`.
    pub fn new(dg: &'a DeltaGraph) -> Self {
        InsertOverlay {
            dg,
            base_n_left: dg.n_left(),
            extra: Vec::new(),
            left_head: vec![NO_LINK; dg.n_left()],
            left_tail: vec![NO_LINK; dg.n_left()],
            left_links: Vec::new(),
            right_head: vec![NO_LINK; dg.n_right()],
            right_tail: vec![NO_LINK; dg.n_right()],
            right_links: Vec::new(),
        }
    }

    /// Number of left vertices, including staged arrivals.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.base_n_left + self.extra.len()
    }

    /// Number of right vertices (fixed).
    #[inline]
    pub fn n_right(&self) -> usize {
        self.dg.n_right()
    }

    /// Stage a left-vertex arrival with the given neighbor set
    /// (deduplicated), mirroring [`DeltaGraph::arrive`]. Returns the id
    /// the real arrival will be assigned.
    ///
    /// # Panics
    /// Panics if any neighbor is out of range.
    pub fn arrive(&mut self, neighbors: &[RightId]) -> LeftId {
        let u = self.n_left() as LeftId;
        let mut adj: Vec<RightId> = neighbors.to_vec();
        adj.sort_unstable();
        adj.dedup();
        for &v in &adj {
            assert!(
                (v as usize) < self.n_right(),
                "right vertex {v} out of range"
            );
            self.link_right(v, u);
        }
        self.extra.push(adj);
        u
    }

    /// Stage edge `(u, v)`. Returns `false` (and stages nothing) if the
    /// edge is already live or already staged.
    ///
    /// # Panics
    /// Panics if `u ≥ n_left()` (staged arrivals included) or
    /// `v ≥ n_right()`.
    pub fn insert(&mut self, u: LeftId, v: RightId) -> bool {
        assert!((u as usize) < self.n_left(), "left vertex {u} out of range");
        assert!(
            (v as usize) < self.n_right(),
            "right vertex {v} out of range"
        );
        if self.has_edge(u, v) {
            return false;
        }
        if (u as usize) < self.base_n_left {
            let link = self.left_links.len() as u32;
            self.left_links.push((v, NO_LINK));
            match self.left_tail[u as usize] {
                NO_LINK => self.left_head[u as usize] = link,
                tail => self.left_links[tail as usize].1 = link,
            }
            self.left_tail[u as usize] = link;
        } else {
            self.extra[u as usize - self.base_n_left].push(v);
        }
        self.link_right(v, u);
        true
    }

    fn link_right(&mut self, v: RightId, u: LeftId) {
        let link = self.right_links.len() as u32;
        self.right_links.push((u, NO_LINK));
        match self.right_tail[v as usize] {
            NO_LINK => self.right_head[v as usize] = link,
            tail => self.right_links[tail as usize].1 = link,
        }
        self.right_tail[v as usize] = link;
    }

    /// Does the union graph contain edge `(u, v)`?
    pub fn has_edge(&self, u: LeftId, v: RightId) -> bool {
        if (u as usize) >= self.base_n_left {
            return self
                .extra
                .get(u as usize - self.base_n_left)
                .is_some_and(|a| a.contains(&v));
        }
        if self.dg.has_edge(u, v) {
            return true;
        }
        let mut at = self.left_head[u as usize];
        while at != NO_LINK {
            let (w, next) = self.left_links[at as usize];
            if w == v {
                return true;
            }
            at = next;
        }
        false
    }

    /// Union-graph neighbors of left vertex `u` (live edges, then staged).
    pub fn left_neighbors_iter(&self, u: LeftId) -> impl Iterator<Item = RightId> + '_ {
        let (live, head, extra): (bool, u32, &[RightId]) = if (u as usize) < self.base_n_left {
            (true, self.left_head[u as usize], &[])
        } else {
            (
                false,
                NO_LINK,
                self.extra[u as usize - self.base_n_left].as_slice(),
            )
        };
        let base = live
            .then(|| self.dg.left_neighbors_iter(u))
            .into_iter()
            .flatten();
        base.chain(LinkIter {
            links: &self.left_links,
            at: head,
        })
        .chain(extra.iter().copied())
    }

    /// Union-graph neighbors of right vertex `v` (live edges, then staged).
    pub fn right_neighbors_iter(&self, v: RightId) -> impl Iterator<Item = LeftId> + '_ {
        self.dg.right_neighbors_iter(v).chain(LinkIter {
            links: &self.right_links,
            at: self.right_head[v as usize],
        })
    }

    /// Visit every union-graph neighbor of left vertex `u` — the
    /// closure-based mirror of [`InsertOverlay::left_neighbors_iter`],
    /// same edges in the same order. The scheduler's ball growth calls
    /// this once per scanned vertex; the visitor form skips the chained
    /// iterator state machine and runs the base slice, the link chain,
    /// and the arrival slice as three plain loops.
    #[inline]
    pub fn for_each_left_neighbor(&self, u: LeftId, mut f: impl FnMut(RightId)) {
        if (u as usize) < self.base_n_left {
            self.dg.for_each_left_neighbor(u, &mut f);
            let mut at = self.left_head[u as usize];
            while at != NO_LINK {
                let (v, next) = self.left_links[at as usize];
                f(v);
                at = next;
            }
        } else {
            for &v in &self.extra[u as usize - self.base_n_left] {
                f(v);
            }
        }
    }

    /// Visit every union-graph neighbor of right vertex `v` — the
    /// closure-based mirror of [`InsertOverlay::right_neighbors_iter`].
    #[inline]
    pub fn for_each_right_neighbor(&self, v: RightId, mut f: impl FnMut(LeftId)) {
        self.dg.for_each_right_neighbor(v, &mut f);
        let mut at = self.right_head[v as usize];
        while at != NO_LINK {
            let (u, next) = self.right_links[at as usize];
            f(u);
            at = next;
        }
    }
}

/// Iterator over one vertex's staged-edge chain.
struct LinkIter<'a> {
    links: &'a [(u32, u32)],
    at: u32,
}

impl Iterator for LinkIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.at == NO_LINK {
            return None;
        }
        let (v, next) = self.links[self.at as usize];
        self.at = next;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Bipartite {
        // L = {0,1,2}, R = {0,1}; edges (0,0) (0,1) (1,0) (2,1), caps [2, 3].
        let mut b = BipartiteBuilder::new(3, 2);
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 0), (2, 1)] {
            b.add_edge(u, v);
        }
        b.build(vec![2, 3]).unwrap()
    }

    #[test]
    fn fresh_overlay_mirrors_base() {
        let g = base();
        let d = DeltaGraph::new(g.clone());
        assert_eq!(d.n_left(), 3);
        assert_eq!(d.n_right(), 2);
        assert_eq!(d.m(), 4);
        assert_eq!(d.overlay_edges(), 0);
        for u in 0..3u32 {
            let live: Vec<u32> = d.left_neighbors_iter(u).collect();
            assert_eq!(live, g.left_neighbors(u));
        }
        for v in 0..2u32 {
            let live: Vec<u32> = d.right_neighbors_iter(v).collect();
            assert_eq!(live, g.right_neighbors(v));
        }
    }

    #[test]
    fn insert_and_delete_edges() {
        let mut d = DeltaGraph::new(base());
        assert!(d.insert_edge(1, 1));
        assert!(!d.insert_edge(1, 1), "duplicate insert is a no-op");
        assert_eq!(d.m(), 5);
        assert!(d.has_edge(1, 1));
        assert_eq!(d.right_neighbors_iter(1).collect::<Vec<_>>(), [0, 2, 1]);

        assert!(d.delete_edge(0, 0), "delete a base edge");
        assert!(!d.has_edge(0, 0));
        assert!(!d.delete_edge(0, 0), "double delete is a no-op");
        assert!(d.delete_edge(1, 1), "delete an overlay edge");
        assert_eq!(d.m(), 3);
        assert_eq!(d.right_neighbors_iter(0).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn deleted_base_edge_can_be_restored() {
        let mut d = DeltaGraph::new(base());
        assert!(d.delete_edge(0, 1));
        assert!(!d.has_edge(0, 1));
        assert!(d.insert_edge(0, 1), "re-insert restores the base edge");
        assert!(d.has_edge(0, 1));
        assert_eq!(d.m(), 4);
        assert_eq!(d.overlay_edges(), 0, "restore leaves no overlay residue");
    }

    #[test]
    fn arrivals_and_departures() {
        let mut d = DeltaGraph::new(base());
        let u = d.arrive(&[1, 0, 1]); // dup deduplicated
        assert_eq!(u, 3);
        assert_eq!(d.n_left(), 4);
        assert_eq!(d.left_neighbors_iter(u).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(d.m(), 6);

        let gone = d.depart(0);
        assert_eq!(gone, vec![0, 1]);
        assert_eq!(d.left_degree(0), 0);
        assert_eq!(d.n_left(), 4, "departed slot keeps its id");
        assert_eq!(d.m(), 4);
        // Departed arrivals clean up the reverse index too.
        d.depart(u);
        assert_eq!(d.right_neighbors_iter(0).collect::<Vec<_>>(), [1]);
        assert_eq!(d.right_neighbors_iter(1).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn out_of_order_arrivals_converge_to_batch_order() {
        // Serial: arrive([0]) = id 3, arrive([1]) = id 4. Out-of-order
        // execution of the commuting pair must land on the same state.
        let mut serial = DeltaGraph::new(base());
        serial.arrive(&[0]);
        serial.arrive(&[1]);

        let mut d = DeltaGraph::new(base());
        d.arrive_at(4, &[1]); // later id first: slot 3 becomes a placeholder
        assert_eq!(d.n_left(), 5);
        assert_eq!(d.left_degree(3), 0, "placeholder is edge-free");
        assert_eq!(d.right_neighbors_iter(1).collect::<Vec<_>>(), [0, 2, 4]);
        d.arrive_at(3, &[0]); // its own arrival fills the placeholder
        assert_eq!(d.n_left(), serial.n_left());
        assert_eq!(d.m(), serial.m());
        for u in 0..d.n_left() as u32 {
            assert_eq!(
                d.left_neighbors_iter(u).collect::<Vec<_>>(),
                serial.left_neighbors_iter(u).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "would overwrite an occupied slot")]
    fn arrive_at_rejects_double_fill() {
        let mut d = DeltaGraph::new(base());
        d.arrive_at(3, &[0]);
        d.arrive_at(3, &[1]);
    }

    #[test]
    #[should_panic(expected = "addresses a base vertex")]
    fn arrive_at_rejects_base_ids() {
        let mut d = DeltaGraph::new(base());
        d.arrive_at(1, &[0]);
    }

    #[test]
    fn capacity_overrides() {
        let mut d = DeltaGraph::new(base());
        assert_eq!(d.capacity(0), 2);
        d.set_capacity(0, 7);
        assert_eq!(d.capacity(0), 7);
        assert_eq!(d.capacities(), &[7, 3]);
    }

    #[test]
    #[should_panic(expected = "capacities must be ≥ 1")]
    fn zero_capacity_rejected() {
        let mut d = DeltaGraph::new(base());
        d.set_capacity(0, 0);
    }

    #[test]
    fn compact_roundtrips_the_live_graph() {
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0);
        d.insert_edge(1, 1);
        let u = d.arrive(&[0]);
        d.depart(2);
        d.set_capacity(1, 9);

        let g = d.compact();
        g.validate().unwrap();
        assert_eq!(g.n_left(), d.n_left());
        assert_eq!(g.m(), d.m());
        assert_eq!(g.capacities(), d.capacities());
        for w in 0..d.n_left() as u32 {
            let mut live: Vec<u32> = d.left_neighbors_iter(w).collect();
            live.sort_unstable();
            assert_eq!(live, g.left_neighbors(w), "left {w}");
        }
        assert_eq!(g.left_neighbors(u), &[0]);
        assert_eq!(g.left_degree(2), 0);

        // Compacting twice is stable.
        let d2 = DeltaGraph::new(g.clone());
        let g2 = d2.compact();
        assert_eq!(g2.m(), g.m());
        assert_eq!(g2.edge_right_endpoints(), g.edge_right_endpoints());
    }

    #[test]
    fn compact_with_pending_insert_and_delete_of_the_same_edge() {
        // Overlay insert followed by delete of the same edge must leave no
        // residue; delete of a base edge followed by re-insert likewise.
        // Both pairs pending at compaction time must fold to the original
        // live edge set.
        let mut d = DeltaGraph::new(base());
        assert!(d.insert_edge(1, 1)); // overlay insert …
        assert!(d.delete_edge(1, 1)); // … cancelled before compaction
        assert!(d.delete_edge(0, 0)); // base delete …
        assert!(d.insert_edge(0, 0)); // … cancelled by re-insert
        assert_eq!(d.m(), 4);
        assert_eq!(d.overlay_edges(), 0, "cancelling pairs leave no residue");
        let g = d.compact();
        g.validate().unwrap();
        assert_eq!(g.m(), 4);
        let orig = base();
        for u in 0..3u32 {
            assert_eq!(g.left_neighbors(u), orig.left_neighbors(u), "left {u}");
        }
    }

    #[test]
    fn compact_preserves_capacity_lowered_below_live_degree() {
        // Lowering a capacity below the number of live neighbors is legal
        // at the graph layer (feasibility is the matching's concern); the
        // compacted snapshot must carry the low capacity verbatim, and so
        // must every further compaction.
        let mut d = DeltaGraph::new(base());
        assert_eq!(d.right_degree(0), 2);
        d.set_capacity(0, 1); // below the live degree of v0
        let g = d.compact();
        g.validate().unwrap();
        assert_eq!(g.capacity(0), 1);
        assert_eq!(g.right_degree(0), 2, "edges survive a capacity cut");
        let g2 = DeltaGraph::new(g).compact();
        assert_eq!(g2.capacity(0), 1);
    }

    #[test]
    fn vertex_ids_are_stable_across_repeated_compactions() {
        // Arrivals and departures interleaved with compactions: ids
        // assigned before a compaction must address the same vertices
        // after any number of further compactions.
        let mut d = DeltaGraph::new(base());
        let a = d.arrive(&[0, 1]);
        d.depart(1);
        let g1 = DeltaGraph::new(d.compact());
        let mut d2 = g1.clone();
        let b = d2.arrive(&[1]);
        assert_eq!(b, a + 1, "fresh ids continue after the departed slots");
        d2.depart(a);
        let g2 = DeltaGraph::new(d2.compact());
        let mut d3 = g2.clone();
        assert_eq!(d3.n_left(), 5);
        assert_eq!(d3.left_degree(1), 0, "slot of departed base vertex");
        assert_eq!(d3.left_degree(a), 0, "slot of departed arrival");
        assert_eq!(d3.left_neighbors_iter(b).collect::<Vec<_>>(), [1]);
        // A departed slot can be revived by edge inserts under its old id.
        assert!(d3.insert_edge(1, 0));
        assert_eq!(d3.left_neighbors_iter(1).collect::<Vec<_>>(), [0]);
        let g3 = d3.compact();
        assert_eq!(g3.left_neighbors(1), &[0]);
        assert_eq!(g3.n_left(), 5);
    }

    #[test]
    fn partition_by_right_covers_each_live_edge_once() {
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0);
        d.insert_edge(1, 1);
        let u = d.arrive(&[0, 1]);
        d.set_capacity(1, 9);
        let parts = d.partition_by_right(3, |v| (v as usize + 1) % 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Bipartite::m).sum();
        assert_eq!(total, d.m(), "edges are covered exactly once");
        for (s, p) in parts.iter().enumerate() {
            p.validate().unwrap();
            assert_eq!(p.n_left(), d.n_left());
            assert_eq!(p.n_right(), d.n_right());
            assert_eq!(p.capacities(), d.capacities(), "full caps on shard {s}");
            for v in 0..d.n_right() as u32 {
                let deg = p.right_degree(v);
                if (v as usize + 1) % 3 == s {
                    assert_eq!(deg, d.right_degree(v), "owned right {v}");
                } else {
                    assert_eq!(deg, 0, "foreign right {v} on shard {s}");
                }
            }
        }
        // The arrival's edges land on the shards owning its neighbors.
        let on = |s: usize| parts[s].left_degree(u);
        assert_eq!(on(0) + on(1) + on(2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_bad_owners() {
        let d = DeltaGraph::new(base());
        let _ = d.partition_by_right(2, |_| 5);
    }

    #[test]
    fn insert_overlay_stages_without_touching_the_base() {
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0); // removed base edge: re-staging must revive it
        let mut g = d.insert_overlay();
        assert_eq!(g.n_left(), 3);
        assert!(!g.has_edge(0, 0), "deleted base edge is not live");
        assert!(g.insert(0, 0), "staging revives the deleted base edge");
        assert!(!g.insert(0, 0), "duplicate stage is a no-op");
        assert!(!g.insert(0, 1), "live edges cannot be staged again");
        assert!(g.insert(1, 1));
        let a = g.arrive(&[1, 0, 1]); // dup deduplicated, mirroring arrive()
        assert_eq!(a, 3);
        assert!(!g.insert(a, 1), "arrival edge already staged");
        assert!(g.insert(2, 0));

        // The union adjacency is set-equal to cloning + applying.
        let mut clone = d.clone();
        clone.insert_edge(0, 0);
        clone.insert_edge(1, 1);
        clone.arrive(&[1, 0, 1]);
        clone.insert_edge(2, 0);
        for u in 0..g.n_left() as u32 {
            let mut mine: Vec<u32> = g.left_neighbors_iter(u).collect();
            let mut theirs: Vec<u32> = clone.left_neighbors_iter(u).collect();
            mine.sort_unstable();
            theirs.sort_unstable();
            assert_eq!(mine, theirs, "left {u}");
        }
        for v in 0..g.n_right() as u32 {
            let mut mine: Vec<u32> = g.right_neighbors_iter(v).collect();
            let mut theirs: Vec<u32> = clone.right_neighbors_iter(v).collect();
            mine.sort_unstable();
            theirs.sort_unstable();
            assert_eq!(mine, theirs, "right {v}");
        }

        // Dropping the view reverts the batch: the base never moved.
        drop(g);
        assert_eq!(d.m(), 3);
        assert!(!d.has_edge(0, 0));
        assert_eq!(d.n_left(), 3);
    }

    #[test]
    fn insert_overlay_chains_preserve_per_vertex_order() {
        let d = DeltaGraph::new(base());
        let mut g = d.insert_overlay();
        // Interleave inserts of two lefts: each chain must come back in
        // insertion order despite sharing the links arena.
        assert!(g.insert(2, 0));
        assert!(g.insert(1, 1));
        assert!(!g.insert(2, 1), "(2,1) is a live base edge");
        let l2: Vec<u32> = g.left_neighbors_iter(2).collect();
        assert_eq!(l2, vec![1, 0], "base edge first, staged tail after");
        let r0: Vec<u32> = g.right_neighbors_iter(0).collect();
        assert_eq!(r0, vec![0, 1, 2], "base scan then staged tail");
    }

    #[test]
    fn encode_decode_roundtrips_the_overlay_verbatim() {
        // Exercise every overlay structure: deletions, overlay inserts,
        // arrivals (with later edge churn on them), revived base edges,
        // capacity overrides — then check the decoded graph is
        // *behaviorally* identical, iteration order included.
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0);
        d.insert_edge(2, 0);
        let a = d.arrive(&[1, 0]);
        let b = d.arrive(&[1]);
        d.insert_edge(b, 0); // appended after the sorted arrival adjacency
        d.depart(a);
        d.delete_edge(0, 1);
        d.insert_edge(0, 1); // revive: no overlay residue
        d.set_capacity(1, 9);

        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let d2 = DeltaGraph::decode(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(d2.n_left(), d.n_left());
        assert_eq!(d2.n_right(), d.n_right());
        assert_eq!(d2.m(), d.m());
        assert_eq!(d2.capacities(), d.capacities());
        assert_eq!(d2.overlay_edges(), d.overlay_edges());
        for u in 0..d.n_left() as u32 {
            assert_eq!(
                d2.left_neighbors_iter(u).collect::<Vec<_>>(),
                d.left_neighbors_iter(u).collect::<Vec<_>>(),
                "left {u} adjacency (order matters)"
            );
        }
        for v in 0..d.n_right() as u32 {
            assert_eq!(
                d2.right_neighbors_iter(v).collect::<Vec<_>>(),
                d.right_neighbors_iter(v).collect::<Vec<_>>(),
                "right {v} adjacency (order matters)"
            );
        }
        // Determinism: encoding the decoded graph reproduces the bytes.
        let mut w2 = ByteWriter::new();
        d2.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn decode_rejects_inconsistent_overlays() {
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0);
        d.insert_edge(2, 0);
        d.arrive(&[1]);
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        // Every strict prefix is a typed parse error, never a panic.
        for cut in [0, 9, 40, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut.min(bytes.len())]);
            assert!(DeltaGraph::decode(&mut r).is_err(), "prefix {cut}");
        }
        // A deletion naming a non-edge is rejected: re-encode with a bad
        // removed pair by mutating a fresh graph's encode input.
        let clean = DeltaGraph::new(base());
        let mut w = ByteWriter::new();
        clean.encode(&mut w);
        let mut bytes = w.into_bytes();
        // The final three u64 section counts are empty (no overlay): the
        // removed count sits 16 bytes before the trailing added_right
        // count. Bump it to 1 without providing the pair.
        let at = bytes.len() - 16;
        bytes[at] = 1;
        let mut r = ByteReader::new(&bytes);
        assert!(DeltaGraph::decode(&mut r).is_err());
    }

    #[test]
    fn overlay_edge_count_tracks_mutations() {
        let mut d = DeltaGraph::new(base());
        assert_eq!(d.overlay_edges(), 0);
        d.delete_edge(0, 0); // removed base edge lives in the overlay
        d.insert_edge(2, 0);
        d.arrive(&[1]);
        assert_eq!(d.overlay_edges(), 3);
    }

    #[test]
    fn visitors_agree_with_iterators_across_every_overlay_shape() {
        // A graph exercising all adjacency sources at once: removed base
        // edges, added edges on both sides, a departed vertex, a live
        // arrival, and on top of it an overlay with staged inserts plus
        // a staged arrival.
        let mut d = DeltaGraph::new(base());
        d.delete_edge(0, 0); // removed base edge
        d.insert_edge(2, 0); // delta-added edge
        d.depart(1); // all of 1's edges removed
        let a = d.arrive(&[0, 1]); // live arrival (id 3, extra_adj)
        let mut ov = d.insert_overlay();
        ov.insert(0, 0); // staged re-insert of a deleted base edge
        ov.insert(2, 0); // no-op: already live, must stage nothing
        ov.insert(a, 1); // no-op: arrival already has it
        let s = ov.arrive(&[0, 1]); // staged arrival (id 4)
        ov.insert(s, 1); // no-op: staged arrival already has it

        for u in 0..d.n_left() as LeftId {
            let mut seen = Vec::new();
            d.for_each_left_neighbor(u, |v| seen.push(v));
            assert_eq!(
                seen,
                d.left_neighbors_iter(u).collect::<Vec<_>>(),
                "DeltaGraph left {u}"
            );
        }
        for v in 0..d.n_right() as RightId {
            let mut seen = Vec::new();
            d.for_each_right_neighbor(v, |u| seen.push(u));
            assert_eq!(
                seen,
                d.right_neighbors_iter(v).collect::<Vec<_>>(),
                "DeltaGraph right {v}"
            );
        }
        for u in 0..ov.n_left() as LeftId {
            let mut seen = Vec::new();
            ov.for_each_left_neighbor(u, |v| seen.push(v));
            assert_eq!(
                seen,
                ov.left_neighbors_iter(u).collect::<Vec<_>>(),
                "overlay left {u}"
            );
        }
        for v in 0..ov.n_right() as RightId {
            let mut seen = Vec::new();
            ov.for_each_right_neighbor(v, |u| seen.push(u));
            assert_eq!(
                seen,
                ov.right_neighbors_iter(v).collect::<Vec<_>>(),
                "overlay right {v}"
            );
        }
    }
}

//! Bipartite-graph substrate for the `sparse-alloc` workspace.
//!
//! This crate provides everything the allocation algorithms of
//! Łącki–Mitrović–Ramachandran–Sheu (SPAA 2025) need from a graph library:
//!
//! * [`Bipartite`] — an immutable, doubly-indexed CSR representation of a
//!   bipartite graph `G = (L ∪ R, E)` with integer capacities on `R`.
//! * [`BipartiteBuilder`] — a mutable edge-list builder with validation and
//!   deduplication.
//! * [`DeltaGraph`] — a mutation overlay over a frozen snapshot (edge
//!   inserts/deletes, left arrivals/departures, capacity changes) with
//!   periodic compaction, for the dynamic-allocation engine.
//! * [`generators`] — graph families with *controllable arboricity*
//!   (union-of-random-spanning-trees, stars, random bipartite, power-law
//!   ad-workloads, grids, adversarial layered instances).
//! * [`capacities`] — capacity models for the `R` side.
//! * [`sparsity`] — the uniform-sparsity toolkit: degeneracy via bucket
//!   peeling and Nash–Williams density lower bounds, which bracket the
//!   arboricity `λ` from both sides.
//! * [`reduction`] — the vertex-split reduction from allocation to plain
//!   matching, used to reproduce the paper's Remark 1 (the reduction can
//!   blow up arboricity from `Θ(1)` to `Θ(n)`).
//! * [`io`] — JSON (serde) and plain edge-list serialization.
//!
//! # Conventions
//!
//! Vertices on each side are dense `u32` indices: `u ∈ 0..n_left()` and
//! `v ∈ 0..n_right()`. Every edge has a dense *edge id* equal to its position
//! in the left-side CSR; per-edge data (e.g. fractional allocation values)
//! is stored in `Vec`s indexed by edge id.

//! # Example
//!
//! ```
//! use sparse_alloc_graph::BipartiteBuilder;
//! use sparse_alloc_graph::sparsity::arboricity_bracket;
//!
//! // Two clients, one server with 2 slots.
//! let mut b = BipartiteBuilder::new(2, 1);
//! b.add_edge(0, 0);
//! b.add_edge(1, 0);
//! let g = b.build(vec![2]).unwrap();
//!
//! assert_eq!(g.m(), 2);
//! assert_eq!(g.right_degree(0), 2);
//! assert_eq!(g.capacity(0), 2);
//!
//! // A path is a forest: arboricity exactly 1.
//! let bracket = arboricity_bracket(&g);
//! assert_eq!((bracket.lower, bracket.upper), (1, 1));
//! ```

#![warn(missing_docs)]

pub mod assignment;
pub mod bipartite;
pub mod builder;
pub mod capacities;
pub mod delta;
pub mod generators;
pub mod io;
pub mod reduction;
pub mod sparsity;
pub mod stats;

pub use assignment::Assignment;
pub use bipartite::{Bipartite, EdgeId, LeftId, RightId, Side};
pub use builder::BipartiteBuilder;
pub use capacities::CapacityModel;
pub use delta::{DeltaGraph, InsertOverlay};

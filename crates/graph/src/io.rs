//! Serialization: JSON via serde and a plain-text edge-list format.
//!
//! The text format is line-oriented and diff-friendly, used by the
//! experiment harness to persist generated instances:
//!
//! ```text
//! # sparse-alloc v1
//! n_left n_right
//! c_0 c_1 ... c_{n_right-1}
//! u v          (one edge per line)
//! ```

use std::io::{BufRead, Write};

use crate::bipartite::Bipartite;
use crate::builder::BipartiteBuilder;

/// Errors from the text reader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the input.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Parse(msg) => write!(f, "parse: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialize `g` in the plain-text edge-list format.
pub fn write_text(g: &Bipartite, w: &mut impl Write) -> Result<(), IoError> {
    writeln!(w, "# sparse-alloc v1")?;
    writeln!(w, "{} {}", g.n_left(), g.n_right())?;
    let caps: Vec<String> = g.capacities().iter().map(|c| c.to_string()).collect();
    writeln!(w, "{}", caps.join(" "))?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Parse the plain-text edge-list format.
pub fn read_text(r: &mut impl BufRead) -> Result<Bipartite, IoError> {
    let mut lines = r.lines();
    let header =
        |lines: &mut dyn Iterator<Item = std::io::Result<String>>| -> Result<String, IoError> {
            loop {
                match lines.next() {
                    None => return Err(IoError::Parse("unexpected end of input".into())),
                    Some(Err(e)) => return Err(IoError::Io(e)),
                    Some(Ok(l)) => {
                        let t = l.trim().to_string();
                        if !t.is_empty() && !t.starts_with('#') {
                            return Ok(t);
                        }
                    }
                }
            }
        };

    let sizes = header(&mut lines)?;
    let mut it = sizes.split_whitespace();
    let n_left: usize = it
        .next()
        .ok_or_else(|| IoError::Parse("missing n_left".into()))?
        .parse()
        .map_err(|e| IoError::Parse(format!("n_left: {e}")))?;
    let n_right: usize = it
        .next()
        .ok_or_else(|| IoError::Parse("missing n_right".into()))?
        .parse()
        .map_err(|e| IoError::Parse(format!("n_right: {e}")))?;

    let caps_line = header(&mut lines)?;
    let capacities: Vec<u64> = caps_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::Parse(format!("capacity: {e}")))?;
    if capacities.len() != n_right {
        return Err(IoError::Parse(format!(
            "expected {n_right} capacities, got {}",
            capacities.len()
        )));
    }

    let mut b = BipartiteBuilder::new(n_left, n_right);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| IoError::Parse("edge missing u".into()))?
            .parse()
            .map_err(|e| IoError::Parse(format!("edge u: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| IoError::Parse("edge missing v".into()))?
            .parse()
            .map_err(|e| IoError::Parse(format!("edge v: {e}")))?;
        b.add_edge(u, v);
    }
    b.build(capacities)
        .map_err(|e| IoError::Parse(e.to_string()))
}

/// FNV-1a, 64-bit: the checksum of the binary snapshot format. Chosen for
/// being dependency-free, stable across platforms, and byte-order
/// independent (it consumes bytes, never words) — it detects corruption
/// and truncation, it is *not* a cryptographic integrity guarantee.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte sink of the binary snapshot format: fixed-width
/// primitives and `u64`-length-prefixed vectors, written into an
/// in-memory buffer so callers can checksum the finished payload before
/// it reaches a file.
///
/// The encoding has no self-describing structure — [`ByteReader`] must
/// consume fields in exactly the order they were written, which is why
/// every snapshot carries a format version in its header.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one `u32`, little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append one `u64`, little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append one `i64`, little-endian.
    pub fn put_i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append one `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Append a `u64` length prefix followed by the items.
    pub fn put_vec_u32(&mut self, xs: &[u32]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_u32(x);
        }
    }

    /// Append a `u64` length prefix followed by the items.
    pub fn put_vec_u64(&mut self, xs: &[u64]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_u64(x);
        }
    }

    /// Append a `u64` length prefix followed by the items.
    pub fn put_vec_i64(&mut self, xs: &[i64]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_i64(x);
        }
    }

    /// Append a `u64` length prefix followed by the raw bytes (nested
    /// payloads, strings).
    pub fn put_bytes(&mut self, xs: &[u8]) {
        self.put_u64(xs.len() as u64);
        self.buf.extend_from_slice(xs);
    }
}

/// Cursor over a [`ByteWriter`]-encoded payload. Every `take_*` verifies
/// the remaining length first, so a truncated or mis-framed payload
/// surfaces as [`IoError::Parse`] instead of a panic; vector reads bound
/// the declared length by the bytes actually present, so a corrupt length
/// prefix cannot trigger an absurd allocation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.remaining() < n {
            return Err(IoError::Parse(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read one `u32`, little-endian.
    pub fn take_u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read one `u64`, little-endian.
    pub fn take_u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read one `i64`, little-endian.
    pub fn take_i64(&mut self) -> Result<i64, IoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read one `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, IoError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a length-prefixed count, verifying that `count × elem_bytes`
    /// fits in the unconsumed payload.
    pub fn take_len(&mut self, elem_bytes: usize) -> Result<usize, IoError> {
        let n = self.take_u64()?;
        let need = (n as u128) * elem_bytes.max(1) as u128;
        if need > self.remaining() as u128 {
            return Err(IoError::Parse(format!(
                "length prefix {n} exceeds the remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn take_vec_u32(&mut self) -> Result<Vec<u32>, IoError> {
        let n = self.take_len(4)?;
        (0..n).map(|_| self.take_u32()).collect()
    }

    /// Read a length-prefixed `u64` vector.
    pub fn take_vec_u64(&mut self) -> Result<Vec<u64>, IoError> {
        let n = self.take_len(8)?;
        (0..n).map(|_| self.take_u64()).collect()
    }

    /// Read a length-prefixed `i64` vector.
    pub fn take_vec_i64(&mut self) -> Result<Vec<i64>, IoError> {
        let n = self.take_len(8)?;
        (0..n).map(|_| self.take_i64()).collect()
    }

    /// Read a length-prefixed byte string ([`ByteWriter::put_bytes`]).
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, IoError> {
        let n = self.take_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Require that the payload was consumed exactly.
    pub fn expect_end(&self) -> Result<(), IoError> {
        if self.remaining() != 0 {
            return Err(IoError::Parse(format!(
                "{} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Serialize `g` into the binary snapshot encoding: sizes, capacities,
/// then per-left adjacency in CSR order. Deterministic — identical graphs
/// produce identical bytes.
pub fn write_bipartite(g: &Bipartite, w: &mut ByteWriter) {
    w.put_u64(g.n_left() as u64);
    w.put_u64(g.n_right() as u64);
    w.put_vec_u64(g.capacities());
    w.put_u64(g.m() as u64);
    for u in 0..g.n_left() as u32 {
        let ns = g.left_neighbors(u);
        w.put_u32(ns.len() as u32);
        for &v in ns {
            w.put_u32(v);
        }
    }
}

/// Parse a graph from the encoding of [`write_bipartite`], re-validating
/// the structural invariants (the payload is an external input).
pub fn read_bipartite(r: &mut ByteReader) -> Result<Bipartite, IoError> {
    let n_left = r.take_u64()? as usize;
    let n_right = r.take_u64()? as usize;
    let caps = r.take_vec_u64()?;
    if caps.len() != n_right {
        return Err(IoError::Parse(format!(
            "expected {n_right} capacities, got {}",
            caps.len()
        )));
    }
    let m = r.take_u64()? as usize;
    // Bound both counts by the bytes actually present before any
    // allocation: every left contributes ≥ 4 bytes (its degree word) and
    // every edge 4 more, so a corrupt count is a typed error here, not a
    // giant allocation in the builder. (`n_right` is already bounded by
    // the capacity vector length check above.)
    if n_left > u32::MAX as usize {
        return Err(IoError::Parse(format!(
            "left vertex count {n_left} does not fit 32-bit ids"
        )));
    }
    if (n_left as u128 + m as u128) * 4 > r.remaining() as u128 {
        return Err(IoError::Parse(format!(
            "counts (n_left {n_left}, m {m}) exceed the remaining payload"
        )));
    }
    let mut b = BipartiteBuilder::with_edge_capacity(n_left, n_right, m);
    for u in 0..n_left as u32 {
        let deg = r.take_u32()? as usize;
        for _ in 0..deg {
            b.add_edge(u, r.take_u32()?);
        }
    }
    if b.n_edges() != m {
        return Err(IoError::Parse(format!(
            "edge count {m} but {} adjacency entries",
            b.n_edges()
        )));
    }
    let g = b.build(caps).map_err(|e| IoError::Parse(e.to_string()))?;
    g.validate().map_err(IoError::Parse)?;
    Ok(g)
}

/// JSON round-trip helpers (thin wrappers over serde_json, provided so that
/// downstream crates don't need a serde_json dependency of their own).
pub fn to_json(g: &Bipartite) -> String {
    serde_json::to_string(g).expect("Bipartite is serializable")
}

/// Parse a graph from the JSON produced by [`to_json`], re-validating the
/// structural invariants (JSON is an external input).
pub fn from_json(s: &str) -> Result<Bipartite, IoError> {
    let g: Bipartite = serde_json::from_str(s).map_err(|e| IoError::Parse(format!("json: {e}")))?;
    g.validate().map_err(IoError::Parse)?;
    Ok(g)
}

// ------------------------------------------------------------ frame codec

/// Magic prefix of every transport frame (`"SALF"` little-endian).
pub const FRAME_MAGIC: u32 = 0x464c_4153;
/// The frame format version this build writes and the only one it reads.
pub const FRAME_VERSION: u32 = 1;
/// Hard cap on a frame payload: a corrupted length field must bound the
/// allocation it can provoke, not request exabytes.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;
/// Fixed byte length of the frame header (magic, version, src, phase,
/// epoch, seq, payload length).
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8 + 8 + 8;

/// Routing metadata of one transport frame.
///
/// The wire layout is fixed-width little-endian, checksummed end to end:
///
/// ```text
/// [ 0.. 4)  magic "SALF"                [ 4.. 8)  format version (u32)
/// [ 8..12)  src machine id (u32)        [12..16)  protocol phase (u32)
/// [16..24)  epoch (u64)                 [24..32)  channel sequence (u64)
/// [32..40)  payload length (u64)        [40.. n)  payload bytes
/// [ n..n+8) FNV-1a-64 over bytes [0..n)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sender machine id (`u32::MAX` conventionally marks a coordinator).
    pub src: u32,
    /// Protocol phase tag; the transport does not interpret it.
    pub phase: u32,
    /// Epoch the frame belongs to.
    pub epoch: u64,
    /// Per-directed-channel sequence number (receivers detect reordering).
    pub seq: u64,
}

/// Why a byte stream is not a well-formed frame. Every corruption mode —
/// short reads, wrong magic, version skew, an absurd length field, a
/// flipped bit anywhere — maps to its own variant; none of them panics.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended before the frame did.
    Truncated {
        /// Bytes the frame needed.
        wanted: usize,
        /// Bytes the stream delivered.
        got: usize,
    },
    /// The first word is not [`FRAME_MAGIC`].
    BadMagic {
        /// The word found instead.
        found: u32,
    },
    /// The frame was written by an unsupported format version.
    Version {
        /// Version recorded in the frame.
        found: u32,
        /// The only version this build reads.
        expected: u32,
    },
    /// The payload length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// Length the frame claimed.
        len: u64,
        /// The cap it violated.
        cap: u64,
    },
    /// The trailing FNV-1a-64 does not match the received bytes.
    Checksum {
        /// Checksum recomputed over the received bytes.
        expected: u64,
        /// Checksum the frame carried.
        found: u64,
    },
    /// Underlying I/O failure while reading from a stream.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:#010x}"),
            FrameError::Version { found, expected } => {
                write!(f, "frame version {found}, this build reads {expected}")
            }
            FrameError::Oversized { len, cap } => {
                write!(f, "frame payload of {len} bytes exceeds the {cap}-byte cap")
            }
            FrameError::Checksum { expected, found } => write!(
                f,
                "frame checksum mismatch: computed {expected:#018x}, carried {found:#018x}"
            ),
            FrameError::Io(e) => write!(f, "frame io: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one frame: header, payload, trailing checksum. The inverse of
/// [`decode_frame`].
///
/// # Panics
///
/// If `payload` exceeds [`MAX_FRAME_PAYLOAD`] — senders own their payload
/// sizes; the cap exists to bound what a *corrupted length field* can
/// demand of a receiver.
pub fn encode_frame(h: &FrameHeader, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_FRAME_PAYLOAD,
        "frame payload exceeds MAX_FRAME_PAYLOAD"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&h.src.to_le_bytes());
    out.extend_from_slice(&h.phase.to_le_bytes());
    out.extend_from_slice(&h.epoch.to_le_bytes());
    out.extend_from_slice(&h.seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn header_of(bytes: &[u8; FRAME_HEADER_LEN]) -> Result<(FrameHeader, u64), FrameError> {
    let word_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let word_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let magic = word_u32(0);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = word_u32(4);
    if version != FRAME_VERSION {
        return Err(FrameError::Version {
            found: version,
            expected: FRAME_VERSION,
        });
    }
    let len = word_u64(32);
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized {
            len,
            cap: MAX_FRAME_PAYLOAD,
        });
    }
    Ok((
        FrameHeader {
            src: word_u32(8),
            phase: word_u32(12),
            epoch: word_u64(16),
            seq: word_u64(24),
        },
        len,
    ))
}

/// Decode one frame from a complete in-memory buffer (the loopback
/// transport's receive path). Trailing bytes after the frame are an
/// error: a frame buffer carries exactly one frame.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, Vec<u8>), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated {
            wanted: FRAME_HEADER_LEN,
            got: bytes.len(),
        });
    }
    let head: &[u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
    let (header, len) = header_of(head)?;
    let total = FRAME_HEADER_LEN + len as usize + 8;
    if bytes.len() < total {
        return Err(FrameError::Truncated {
            wanted: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(FrameError::Truncated {
            wanted: total,
            got: bytes.len(),
        });
    }
    let body = &bytes[..total - 8];
    let carried = u64::from_le_bytes(bytes[total - 8..total].try_into().unwrap());
    let computed = fnv1a64(body);
    if carried != computed {
        return Err(FrameError::Checksum {
            expected: computed,
            found: carried,
        });
    }
    Ok((header, bytes[FRAME_HEADER_LEN..total - 8].to_vec()))
}

/// Read exactly `buf.len()` bytes; distinguish a clean end-of-stream at
/// offset 0 (`Ok(false)`) from a mid-frame truncation (typed error).
fn read_full(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    wanted: usize,
    already: usize,
) -> Result<bool, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && already == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated {
                    wanted,
                    got: already + got,
                });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame from a byte stream (the TCP transport's receive path).
/// A clean end-of-stream at a frame boundary returns `Ok(None)`; ending
/// *inside* a frame is [`FrameError::Truncated`]; every other corruption
/// is its typed variant.
pub fn read_frame(
    r: &mut impl std::io::Read,
) -> Result<Option<(FrameHeader, Vec<u8>)>, FrameError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    if !read_full(r, &mut head, FRAME_HEADER_LEN, 0)? {
        return Ok(None);
    }
    let (header, len) = header_of(&head)?;
    let total = FRAME_HEADER_LEN + len as usize + 8;
    let mut rest = vec![0u8; len as usize + 8];
    read_full(r, &mut rest, total, FRAME_HEADER_LEN)?;
    let mut body = head.to_vec();
    body.extend_from_slice(&rest[..len as usize]);
    let carried = u64::from_le_bytes(rest[len as usize..].try_into().unwrap());
    let computed = fnv1a64(&body);
    if carried != computed {
        return Err(FrameError::Checksum {
            expected: computed,
            found: carried,
        });
    }
    Ok(Some((header, rest[..len as usize].to_vec())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::union_of_spanning_trees;

    #[test]
    fn text_roundtrip() {
        let g = union_of_spanning_trees(20, 15, 2, 3, 4).graph;
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&mut &buf[..]).unwrap();
        assert_eq!(g.n_left(), g2.n_left());
        assert_eq!(g.n_right(), g2.n_right());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.capacities(), g2.capacities());
        assert_eq!(g.edge_right_endpoints(), g2.edge_right_endpoints());
    }

    #[test]
    fn json_roundtrip() {
        let g = union_of_spanning_trees(12, 12, 3, 2, 9).graph;
        let s = to_json(&g);
        let g2 = from_json(&s).unwrap();
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.capacities(), g2.capacities());
        g2.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n2 2\n# caps\n3 4\n0 0\n\n# edge\n1 1\n";
        let g = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(g.n_left(), 2);
        assert_eq!(g.m(), 2);
        assert_eq!(g.capacities(), &[3, 4]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(read_text(&mut "".as_bytes()).is_err());
        assert!(read_text(&mut "2".as_bytes()).is_err());
        assert!(read_text(&mut "2 2\n1".as_bytes()).is_err()); // wrong cap count
        assert!(read_text(&mut "2 2\n1 1\nx y".as_bytes()).is_err());
        assert!(read_text(&mut "2 2\n1 1\n5 0".as_bytes()).is_err()); // out of range
    }

    #[test]
    fn bad_json_rejected() {
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn binary_bipartite_roundtrip_is_deterministic() {
        let g = union_of_spanning_trees(25, 18, 3, 2, 11).graph;
        let mut w = ByteWriter::new();
        write_bipartite(&g, &mut w);
        let bytes = w.into_bytes();
        let mut w2 = ByteWriter::new();
        write_bipartite(&g, &mut w2);
        assert_eq!(bytes, w2.into_bytes(), "identical graphs, identical bytes");

        let mut r = ByteReader::new(&bytes);
        let g2 = read_bipartite(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(g.n_left(), g2.n_left());
        assert_eq!(g.capacities(), g2.capacities());
        assert_eq!(g.edge_right_endpoints(), g2.edge_right_endpoints());
    }

    #[test]
    fn byte_reader_rejects_truncation_and_absurd_lengths() {
        let g = union_of_spanning_trees(10, 8, 2, 2, 3).graph;
        let mut w = ByteWriter::new();
        write_bipartite(&g, &mut w);
        let bytes = w.into_bytes();
        // Any strict prefix fails with a parse error, never a panic.
        for cut in [0, 1, 8, 17, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(read_bipartite(&mut r).is_err(), "prefix of {cut} bytes");
        }
        // A corrupt length prefix larger than the payload is rejected
        // before any allocation happens.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let huge = w.into_bytes();
        assert!(ByteReader::new(&huge).take_vec_u64().is_err());
        // Likewise a corrupt vertex count: n_left has no length prefix of
        // its own, so the decoder must bound it against the payload
        // before the builder allocates per-vertex arrays.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX - 7); // n_left
        w.put_u64(0); // n_right
        w.put_vec_u64(&[]); // capacities
        w.put_u64(0); // m
        let bytes = w.into_bytes();
        assert!(read_bipartite(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let a = fnv1a64(b"snapshot payload");
        let b = fnv1a64(b"snapshot payloae");
        assert_ne!(a, b, "single-byte flip changes the checksum");
    }

    #[test]
    fn byte_writer_primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(0.25);
        w.put_vec_i64(&[-1, 0, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap(), 0.25);
        assert_eq!(r.take_vec_i64().unwrap(), vec![-1, 0, 9]);
        r.expect_end().unwrap();
        assert!(r.take_u32().is_err(), "reading past the end errors");
    }

    fn a_header() -> FrameHeader {
        FrameHeader {
            src: 3,
            phase: 11,
            epoch: 42,
            seq: 7,
        }
    }

    #[test]
    fn frame_roundtrips_through_buffer_and_stream() {
        let payload = b"route batch for shard 3".to_vec();
        let bytes = encode_frame(&a_header(), &payload);
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + payload.len() + 8);

        let (h, p) = decode_frame(&bytes).unwrap();
        assert_eq!(h, a_header());
        assert_eq!(p, payload);

        // Streaming path: two frames back to back, then clean EOF.
        let mut stream = bytes.clone();
        stream.extend_from_slice(&encode_frame(&a_header(), b""));
        let mut r = &stream[..];
        let (h1, p1) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((h1, p1), (a_header(), payload));
        let (_, p2) = read_frame(&mut r).unwrap().unwrap();
        assert!(p2.is_empty());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF is None");
    }

    #[test]
    fn every_frame_prefix_is_a_typed_truncation() {
        let bytes = encode_frame(&a_header(), b"payload");
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes decoded to {other:?}"),
            }
            if cut > 0 {
                // Mid-frame EOF on the stream path, too (cut 0 is a clean
                // end-of-stream, reported as None).
                match read_frame(&mut &bytes[..cut]) {
                    Err(FrameError::Truncated { .. }) => {}
                    other => panic!("stream prefix of {cut} bytes read as {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error() {
        let bytes = encode_frame(&a_header(), b"bits");
        for i in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[i / 8] ^= 1 << (i % 8);
            assert!(
                decode_frame(&bad).is_err(),
                "bit flip at {i} went undetected"
            );
        }
    }

    #[test]
    fn version_skew_and_magic_and_oversize_are_typed() {
        let mut bytes = encode_frame(&a_header(), b"x");
        bytes[4..8].copy_from_slice(&(FRAME_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Version { found, expected })
                if found == FRAME_VERSION + 1 && expected == FRAME_VERSION
        ));

        let mut bytes = encode_frame(&a_header(), b"x");
        bytes[0] = 0;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bytes = encode_frame(&a_header(), b"x");
        bytes[32..40].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn checksum_flip_is_a_checksum_error() {
        let mut bytes = encode_frame(&a_header(), b"checked");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Checksum { .. })
        ));
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::Checksum { .. })
        ));
    }
}

//! Serialization: JSON via serde and a plain-text edge-list format.
//!
//! The text format is line-oriented and diff-friendly, used by the
//! experiment harness to persist generated instances:
//!
//! ```text
//! # sparse-alloc v1
//! n_left n_right
//! c_0 c_1 ... c_{n_right-1}
//! u v          (one edge per line)
//! ```

use std::io::{BufRead, Write};

use crate::bipartite::Bipartite;
use crate::builder::BipartiteBuilder;

/// Errors from the text reader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the input.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Parse(msg) => write!(f, "parse: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialize `g` in the plain-text edge-list format.
pub fn write_text(g: &Bipartite, w: &mut impl Write) -> Result<(), IoError> {
    writeln!(w, "# sparse-alloc v1")?;
    writeln!(w, "{} {}", g.n_left(), g.n_right())?;
    let caps: Vec<String> = g.capacities().iter().map(|c| c.to_string()).collect();
    writeln!(w, "{}", caps.join(" "))?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Parse the plain-text edge-list format.
pub fn read_text(r: &mut impl BufRead) -> Result<Bipartite, IoError> {
    let mut lines = r.lines();
    let header =
        |lines: &mut dyn Iterator<Item = std::io::Result<String>>| -> Result<String, IoError> {
            loop {
                match lines.next() {
                    None => return Err(IoError::Parse("unexpected end of input".into())),
                    Some(Err(e)) => return Err(IoError::Io(e)),
                    Some(Ok(l)) => {
                        let t = l.trim().to_string();
                        if !t.is_empty() && !t.starts_with('#') {
                            return Ok(t);
                        }
                    }
                }
            }
        };

    let sizes = header(&mut lines)?;
    let mut it = sizes.split_whitespace();
    let n_left: usize = it
        .next()
        .ok_or_else(|| IoError::Parse("missing n_left".into()))?
        .parse()
        .map_err(|e| IoError::Parse(format!("n_left: {e}")))?;
    let n_right: usize = it
        .next()
        .ok_or_else(|| IoError::Parse("missing n_right".into()))?
        .parse()
        .map_err(|e| IoError::Parse(format!("n_right: {e}")))?;

    let caps_line = header(&mut lines)?;
    let capacities: Vec<u64> = caps_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::Parse(format!("capacity: {e}")))?;
    if capacities.len() != n_right {
        return Err(IoError::Parse(format!(
            "expected {n_right} capacities, got {}",
            capacities.len()
        )));
    }

    let mut b = BipartiteBuilder::new(n_left, n_right);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| IoError::Parse("edge missing u".into()))?
            .parse()
            .map_err(|e| IoError::Parse(format!("edge u: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| IoError::Parse("edge missing v".into()))?
            .parse()
            .map_err(|e| IoError::Parse(format!("edge v: {e}")))?;
        b.add_edge(u, v);
    }
    b.build(capacities)
        .map_err(|e| IoError::Parse(e.to_string()))
}

/// JSON round-trip helpers (thin wrappers over serde_json, provided so that
/// downstream crates don't need a serde_json dependency of their own).
pub fn to_json(g: &Bipartite) -> String {
    serde_json::to_string(g).expect("Bipartite is serializable")
}

/// Parse a graph from the JSON produced by [`to_json`], re-validating the
/// structural invariants (JSON is an external input).
pub fn from_json(s: &str) -> Result<Bipartite, IoError> {
    let g: Bipartite = serde_json::from_str(s).map_err(|e| IoError::Parse(format!("json: {e}")))?;
    g.validate().map_err(IoError::Parse)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::union_of_spanning_trees;

    #[test]
    fn text_roundtrip() {
        let g = union_of_spanning_trees(20, 15, 2, 3, 4).graph;
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&mut &buf[..]).unwrap();
        assert_eq!(g.n_left(), g2.n_left());
        assert_eq!(g.n_right(), g2.n_right());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.capacities(), g2.capacities());
        assert_eq!(g.edge_right_endpoints(), g2.edge_right_endpoints());
    }

    #[test]
    fn json_roundtrip() {
        let g = union_of_spanning_trees(12, 12, 3, 2, 9).graph;
        let s = to_json(&g);
        let g2 = from_json(&s).unwrap();
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.capacities(), g2.capacities());
        g2.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n2 2\n# caps\n3 4\n0 0\n\n# edge\n1 1\n";
        let g = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(g.n_left(), 2);
        assert_eq!(g.m(), 2);
        assert_eq!(g.capacities(), &[3, 4]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(read_text(&mut "".as_bytes()).is_err());
        assert!(read_text(&mut "2".as_bytes()).is_err());
        assert!(read_text(&mut "2 2\n1".as_bytes()).is_err()); // wrong cap count
        assert!(read_text(&mut "2 2\n1 1\nx y".as_bytes()).is_err());
        assert!(read_text(&mut "2 2\n1 1\n5 0".as_bytes()).is_err()); // out of range
    }

    #[test]
    fn bad_json_rejected() {
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
    }
}

//! R-MAT (recursive-matrix) bipartite generator — the classic model for
//! web/social workloads with *correlated* skew on both sides
//! (Chakrabarti–Zhan–Faloutsos).
//!
//! Each edge is placed by recursively descending the adjacency matrix:
//! at every level one of the four quadrants is chosen with probabilities
//! `(a, b, c, d)`, halving the row and column ranges until a single cell
//! remains. Unbalanced probabilities (`a` large) yield a dense "celebrity"
//! corner and a long sparse tail — the dense-core/sparse-fringe structure
//! in which the paper's level-set dynamics are most visible, without the
//! hand-crafted layering of
//! [`crate::generators::layered::dense_core_sparse_fringe`].
//!
//! Unlike the forest generators, R-MAT certifies no arboricity bound by
//! construction; [`rmat`] reports the measured degeneracy-based upper
//! bound (still a true upper bound on `λ`) in
//! [`crate::generators::Generated::lambda_upper`], and the experiments
//! bracket it with Nash–Williams as usual.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;
use crate::sparsity::arboricity_bracket;

/// Parameters of the R-MAT recursion.
#[derive(Debug, Clone, PartialEq)]
pub struct RmatParams {
    /// Left vertices (rows); rounded up to a power of two internally.
    pub n_left: usize,
    /// Right vertices (columns); rounded up to a power of two internally.
    pub n_right: usize,
    /// Edges to attempt (duplicates are merged, so the final `m` is ≤ this).
    pub edges: usize,
    /// Quadrant probabilities `(a, b, c, d)`, positive, summing to ≈ 1.
    /// The canonical skewed setting is `(0.57, 0.19, 0.19, 0.05)`.
    pub quadrants: (f64, f64, f64, f64),
    /// Per-quadrant noise: each level multiplies the probabilities by a
    /// uniform factor in `[1−noise, 1+noise]` (renormalized), the standard
    /// smoothing that avoids exactly self-similar artifacts. `0.0` = off.
    pub noise: f64,
    /// Uniform capacity for the right side.
    pub cap: u64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            n_left: 1 << 12,
            n_right: 1 << 10,
            edges: 1 << 14,
            quadrants: (0.57, 0.19, 0.19, 0.05),
            noise: 0.1,
            cap: 4,
        }
    }
}

/// Generate a bipartite R-MAT graph. Deterministic in `seed`.
///
/// # Panics
/// Panics if a dimension or the edge count is zero, a quadrant probability
/// is non-positive, the probabilities do not sum to ≈ 1, or `cap = 0`.
pub fn rmat(params: &RmatParams, seed: u64) -> Generated {
    let (a, b, c, d) = params.quadrants;
    assert!(params.n_left > 0 && params.n_right > 0, "empty dimension");
    assert!(params.edges > 0, "need at least one edge");
    assert!(params.cap >= 1, "capacity must be ≥ 1");
    assert!(
        a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0,
        "quadrant probabilities must be positive"
    );
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1"
    );
    assert!(
        (0.0..1.0).contains(&params.noise),
        "noise must be in [0, 1)"
    );

    let rows = params.n_left.next_power_of_two();
    let cols = params.n_right.next_power_of_two();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = BipartiteBuilder::new(params.n_left, params.n_right);

    for _ in 0..params.edges {
        // Resample a cell until it lands inside the (possibly non-power-of-
        // two) real matrix; the expected number of retries is < 4.
        loop {
            let (u, v) = sample_cell(rows, cols, params, &mut rng);
            if u < params.n_left && v < params.n_right {
                builder.add_edge(u as u32, v as u32);
                break;
            }
        }
    }
    let graph = builder
        .build_with_uniform_capacity(params.cap)
        .expect("in-range edges by construction");
    let measured_upper = arboricity_bracket(&graph).upper;
    Generated {
        family: format!(
            "rmat({}×{}, m≤{}, a={a})",
            params.n_left, params.n_right, params.edges
        ),
        lambda_upper: measured_upper,
        graph,
    }
}

fn sample_cell(
    rows: usize,
    cols: usize,
    params: &RmatParams,
    rng: &mut SmallRng,
) -> (usize, usize) {
    let (mut r0, mut r1) = (0usize, rows);
    let (mut c0, mut c1) = (0usize, cols);
    while r1 - r0 > 1 || c1 - c0 > 1 {
        let (mut a, mut b, mut c, mut d) = params.quadrants;
        if params.noise > 0.0 {
            let mut jitter = |p: f64| p * rng.gen_range(1.0 - params.noise..1.0 + params.noise);
            a = jitter(a);
            b = jitter(b);
            c = jitter(c);
            d = jitter(d);
            // `d` needs no explicit normalization: the quadrant choice
            // below only compares against the cumulative a, a+b, a+b+c.
            let total = a + b + c + d;
            a /= total;
            b /= total;
            c /= total;
        }
        let x: f64 = rng.gen();
        let (down, right) = if x < a {
            (false, false)
        } else if x < a + b {
            (false, true)
        } else if x < a + b + c {
            (true, false)
        } else {
            (true, true)
        };
        if r1 - r0 > 1 {
            let mid = r0 + (r1 - r0) / 2;
            if down {
                r0 = mid;
            } else {
                r1 = mid;
            }
        }
        if c1 - c0 > 1 {
            let mid = c0 + (c1 - c0) / 2;
            if right {
                c0 = mid;
            } else {
                c1 = mid;
            }
        }
    }
    (r0, c0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let gen = rmat(&RmatParams::default(), 3);
        gen.graph.validate().unwrap();
        assert_eq!(gen.graph.n_left(), 1 << 12);
        assert_eq!(gen.graph.n_right(), 1 << 10);
        assert!(gen.graph.m() > 0 && gen.graph.m() <= 1 << 14);
        assert!(gen.lambda_upper >= gen.lambda_lower());
    }

    #[test]
    fn deterministic_in_seed() {
        let p = RmatParams {
            edges: 2000,
            ..RmatParams::default()
        };
        let a = rmat(&p, 7);
        let b = rmat(&p, 7);
        let c = rmat(&p, 8);
        assert_eq!(
            a.graph.edge_right_endpoints(),
            b.graph.edge_right_endpoints()
        );
        assert_ne!(
            a.graph.edge_right_endpoints(),
            c.graph.edge_right_endpoints()
        );
    }

    #[test]
    fn skewed_quadrants_produce_skewed_degrees() {
        // With a = 0.57 the top-left corner is dense: the max right degree
        // should far exceed the mean.
        let p = RmatParams {
            n_left: 2048,
            n_right: 512,
            edges: 8192,
            ..RmatParams::default()
        };
        let g = rmat(&p, 5).graph;
        let mean = g.m() as f64 / g.n_right() as f64;
        let max = (0..g.n_right() as u32)
            .map(|v| g.right_degree(v))
            .max()
            .unwrap() as f64;
        assert!(
            max > 5.0 * mean,
            "max right degree {max} vs mean {mean} not skewed"
        );
    }

    #[test]
    fn uniform_quadrants_are_not_skewed() {
        // (¼, ¼, ¼, ¼) degenerates to uniform random placement.
        let p = RmatParams {
            n_left: 2048,
            n_right: 512,
            edges: 8192,
            quadrants: (0.25, 0.25, 0.25, 0.25),
            noise: 0.0,
            ..RmatParams::default()
        };
        let g = rmat(&p, 5).graph;
        let mean = g.m() as f64 / g.n_right() as f64;
        let max = (0..g.n_right() as u32)
            .map(|v| g.right_degree(v))
            .max()
            .unwrap() as f64;
        assert!(
            max < 4.0 * mean,
            "uniform quadrants should stay near-balanced (max {max}, mean {mean})"
        );
    }

    #[test]
    fn non_power_of_two_dimensions() {
        let p = RmatParams {
            n_left: 1000,
            n_right: 300,
            edges: 3000,
            cap: 2,
            ..RmatParams::default()
        };
        let gen = rmat(&p, 11);
        gen.graph.validate().unwrap();
        assert_eq!(gen.graph.n_left(), 1000);
        assert_eq!(gen.graph.n_right(), 300);
        assert_eq!(gen.graph.capacity(0), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let p = RmatParams {
            quadrants: (0.5, 0.5, 0.5, 0.5),
            ..RmatParams::default()
        };
        let _ = rmat(&p, 0);
    }
}

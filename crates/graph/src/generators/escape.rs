//! The "escape" family: instances on which proportional allocation
//! genuinely needs `Θ(log λ)` rounds.
//!
//! Each block is a complete bipartite core `K_{λ², λ}` with unit
//! capacities on the core-right side, plus one *private* fringe right
//! vertex (capacity 1) per core-left vertex. Initially every core-right
//! vertex is over-subscribed by a factor `≈ λ`, so its β must sink — and
//! the left vertices only shift their mass to the fringe once the β-gap
//! between core and fringe reaches `≈ λ/ε`, which takes
//! `≈ ½·log_{1+ε}(λ/ε)` rounds (the gap grows two levels per round). The
//! core's Nash–Williams density is `≈ λ/2`, so the arboricity really is
//! `Θ(λ)` — this is the tight instance for Theorem 9, and experiments
//! E1/E2/E4/E9 sweep it.

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;

/// Build `blocks` disjoint escape blocks with core parameter `lambda ≥ 1`.
///
/// Per block: `λ²` left vertices, `λ` core-right vertices (capacity 1,
/// degree `λ²`), `λ²` fringe-right vertices (capacity 1, degree 1). The
/// optimum matches every left vertex (via its fringe escape), so
/// `OPT = blocks · λ²` exactly.
pub fn escape_blocks(lambda: u32, blocks: usize) -> Generated {
    assert!(lambda >= 1 && blocks >= 1);
    let l2 = (lambda as usize) * (lambda as usize);
    let nl = blocks * l2;
    let nr = blocks * (lambda as usize + l2);
    let mut b = BipartiteBuilder::with_edge_capacity(nl, nr, blocks * (l2 * lambda as usize + l2));
    for blk in 0..blocks {
        let left0 = (blk * l2) as u32;
        let core0 = (blk * (lambda as usize + l2)) as u32;
        let fringe0 = core0 + lambda;
        for i in 0..l2 as u32 {
            let u = left0 + i;
            for c in 0..lambda {
                b.add_edge(u, core0 + c);
            }
            b.add_edge(u, fringe0 + i);
        }
    }
    let graph = b
        .build_with_uniform_capacity(1)
        .expect("escape edges are in range");
    Generated {
        graph,
        // Orient core edges toward the left (out-degree λ) plus the fringe
        // edge: out-degree λ+1 ⇒ arboricity ≤ λ+2 (out-degree-d graphs
        // decompose into ≤ d+1 forests... we certify the safe 2(λ+1)).
        lambda_upper: 2 * (lambda + 1),
        family: format!("escape(λ={lambda}, blocks={blocks})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::arboricity_bracket;

    #[test]
    fn counts_and_opt_structure() {
        let gen = escape_blocks(4, 3);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.n_left(), 3 * 16);
        assert_eq!(g.n_right(), 3 * (4 + 16));
        assert_eq!(g.m(), 3 * (16 * 4 + 16));
        // Every left vertex has its private escape ⇒ perfect allocation
        // exists (degree-1 fringe vertices absorb everyone).
        for u in 0..g.n_left() as u32 {
            assert_eq!(g.left_degree(u), 5);
        }
    }

    #[test]
    fn arboricity_scales_with_lambda() {
        for lambda in [2u32, 4, 8] {
            let gen = escape_blocks(lambda, 1);
            let br = arboricity_bracket(&gen.graph);
            assert!(
                br.lower >= lambda / 2,
                "λ={lambda}: NW lower {} too small",
                br.lower
            );
            assert!(
                br.upper <= gen.lambda_upper,
                "λ={lambda}: degeneracy {} above certificate {}",
                br.upper,
                gen.lambda_upper
            );
        }
    }

    #[test]
    fn core_is_oversubscribed() {
        let gen = escape_blocks(6, 1);
        let g = &gen.graph;
        // Core vertices: degree λ² = 36 with capacity 1.
        for v in 0..6u32 {
            assert_eq!(g.right_degree(v), 36);
            assert_eq!(g.capacity(v), 1);
        }
        // Fringe vertices: degree 1.
        for v in 6..g.n_right() as u32 {
            assert_eq!(g.right_degree(v), 1);
        }
    }

    #[test]
    fn blocks_are_disjoint() {
        let gen = escape_blocks(3, 2);
        let g = &gen.graph;
        // No edge crosses the block boundary.
        for (_, u, v) in g.edges() {
            let block_u = u as usize / 9;
            let block_v = v as usize / (3 + 9);
            assert_eq!(block_u, block_v, "edge ({u},{v}) crosses blocks");
        }
    }
}

//! Bipartite grid graphs: planar, hence arboricity ≤ 3 (tight bound for
//! grids is 2).
//!
//! A `w × h` grid is naturally bipartite by the parity of `x + y`; cells of
//! even parity go to `L`, odd parity to `R`. Useful as a structured
//! constant-arboricity family with non-trivial diameter (unlike stars).

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;

/// A `w × h` grid, 4-neighbor connectivity, bipartitioned by parity.
///
/// Right-side capacities are uniform `cap`.
pub fn grid(w: usize, h: usize, cap: u64) -> Generated {
    assert!(w >= 1 && h >= 1, "grid must be non-empty");
    // Dense ids per side: cell (x, y) with (x + y) even → L, odd → R.
    let mut left_id = vec![u32::MAX; w * h];
    let mut right_id = vec![u32::MAX; w * h];
    let (mut nl, mut nr) = (0u32, 0u32);
    for y in 0..h {
        for x in 0..w {
            let c = y * w + x;
            if (x + y) % 2 == 0 {
                left_id[c] = nl;
                nl += 1;
            } else {
                right_id[c] = nr;
                nr += 1;
            }
        }
    }
    if nr == 0 {
        // A 1×1 grid has no odd-parity cell; degenerate but valid: emit a
        // single isolated right vertex so that capacities are non-empty.
        nr = 1;
    }
    let mut b = BipartiteBuilder::with_edge_capacity(nl as usize, nr as usize, 2 * w * h);
    for y in 0..h {
        for x in 0..w {
            let c = y * w + x;
            // Right and down neighbors cover every edge once.
            if x + 1 < w {
                let d = y * w + (x + 1);
                push_edge(&mut b, &left_id, &right_id, c, d);
            }
            if y + 1 < h {
                let d = (y + 1) * w + x;
                push_edge(&mut b, &left_id, &right_id, c, d);
            }
        }
    }
    let graph = b
        .build_with_uniform_capacity(cap)
        .expect("grid edges are in range");
    Generated {
        graph,
        lambda_upper: 3, // planar bound; grids actually satisfy λ ≤ 2
        family: format!("grid({w}x{h})"),
    }
}

fn push_edge(b: &mut BipartiteBuilder, left_id: &[u32], right_id: &[u32], c: usize, d: usize) {
    // Exactly one of c, d has even parity.
    if left_id[c] != u32::MAX {
        b.add_edge(left_id[c], right_id[d]);
    } else {
        b.add_edge(left_id[d], right_id[c]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let gen = grid(4, 3, 1);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.n(), 12);
        // Edges in a 4x3 grid: 3*3 horizontal + 4*2 vertical = 17.
        assert_eq!(g.m(), 17);
        assert_eq!(gen.lambda_upper, 3);
        assert!(gen.lambda_lower() <= 2);
    }

    #[test]
    fn max_degree_four() {
        let gen = grid(10, 10, 1);
        assert!(gen.graph.max_degree() <= 4);
    }

    #[test]
    fn one_by_one() {
        let gen = grid(1, 1, 1);
        gen.graph.validate().unwrap();
        assert_eq!(gen.graph.m(), 0);
    }

    #[test]
    fn path_graph() {
        let gen = grid(5, 1, 2);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.m(), 4);
        assert!(g.max_degree() <= 2);
    }
}

//! Power-law ad-allocation workloads.
//!
//! The paper motivates allocation by online advertising and client–server
//! assignment (§1): many low-degree impressions (`L`), few high-degree
//! advertisers (`R`) with skewed budgets. Production traces are proprietary,
//! so this generator reproduces the shape: right-side degrees follow a
//! bounded Pareto distribution (Zipf-like), and each right vertex connects
//! to uniformly random left vertices.

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;

/// Parameters for [`power_law`].
#[derive(Debug, Clone)]
pub struct PowerLawParams {
    /// Number of left vertices (impressions / clients).
    pub n_left: usize,
    /// Number of right vertices (advertisers / servers).
    pub n_right: usize,
    /// Pareto shape for right-side degrees; smaller ⇒ heavier tail.
    pub exponent: f64,
    /// Minimum right degree.
    pub min_degree: usize,
    /// Maximum right degree (truncation; also bounded by `n_left`).
    pub max_degree: usize,
    /// Uniform capacity to assign (callers often re-assign with a
    /// [`crate::CapacityModel`] afterwards).
    pub cap: u64,
}

impl Default for PowerLawParams {
    fn default() -> Self {
        PowerLawParams {
            n_left: 10_000,
            n_right: 1_000,
            exponent: 1.5,
            min_degree: 2,
            max_degree: 512,
            cap: 4,
        }
    }
}

/// Sample one bounded-Pareto degree in `[lo, hi]`.
fn pareto_degree(lo: f64, hi: f64, alpha: f64, rng: &mut SmallRng) -> usize {
    let uniform = rand::distributions::Uniform::new(0.0f64, 1.0);
    let u: f64 = uniform.sample(rng);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
    x.floor() as usize
}

/// Generate a power-law bipartite workload. Deterministic in `seed`.
pub fn power_law(p: &PowerLawParams, seed: u64) -> Generated {
    assert!(p.n_left >= 1 && p.n_right >= 1);
    assert!(p.exponent > 0.0, "exponent must be positive");
    assert!(1 <= p.min_degree && p.min_degree <= p.max_degree);
    let mut rng = SmallRng::seed_from_u64(seed);
    let hi = p.max_degree.min(p.n_left) as f64 + 1.0;
    let lo = p.min_degree.min(p.n_left) as f64;

    let mut b = BipartiteBuilder::new(p.n_left, p.n_right);
    for v in 0..p.n_right as u32 {
        let d = pareto_degree(lo, hi, p.exponent, &mut rng)
            .clamp(p.min_degree.min(p.n_left), p.max_degree.min(p.n_left));
        for _ in 0..d {
            b.add_edge(rng.gen_range(0..p.n_left as u32), v);
        }
    }
    let graph = b
        .build_with_uniform_capacity(p.cap)
        .expect("generator produces in-range edges");
    let n = graph.n();
    let dens = if n > 1 {
        (graph.m() as u64).div_ceil(n as u64 - 1) as u32
    } else {
        1
    };
    Generated {
        graph,
        // Power-law graphs are not uniformly sparse in general; certify only
        // the safe doubled-density bound and let callers measure degeneracy.
        lambda_upper: dens.saturating_mul(2).max(1),
        family: format!(
            "power_law(nl={}, nr={}, α={}, d∈[{},{}])",
            p.n_left, p.n_right, p.exponent, p.min_degree, p.max_degree
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let gen = power_law(
            &PowerLawParams {
                n_left: 500,
                n_right: 100,
                exponent: 1.2,
                min_degree: 1,
                max_degree: 64,
                cap: 3,
            },
            21,
        );
        gen.graph.validate().unwrap();
        assert_eq!(gen.graph.n_left(), 500);
        assert_eq!(gen.graph.n_right(), 100);
        for v in 0..100u32 {
            assert!(gen.graph.right_degree(v) <= 64);
        }
    }

    #[test]
    fn degrees_are_skewed() {
        let gen = power_law(
            &PowerLawParams {
                n_left: 5_000,
                n_right: 1_000,
                exponent: 1.0,
                min_degree: 1,
                max_degree: 1_000,
                cap: 1,
            },
            3,
        );
        let mut degs: Vec<usize> = (0..1_000u32).map(|v| gen.graph.right_degree(v)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(
            max >= 20 * median.max(1),
            "expected heavy tail, median {median}, max {max}"
        );
    }

    #[test]
    fn deterministic() {
        let p = PowerLawParams::default();
        let a = power_law(&p, 5);
        let b = power_law(&p, 5);
        assert_eq!(a.graph.m(), b.graph.m());
        assert_eq!(
            a.graph.edge_right_endpoints(),
            b.graph.edge_right_endpoints()
        );
    }

    #[test]
    fn degree_cap_respected_when_exceeding_n_left() {
        let gen = power_law(
            &PowerLawParams {
                n_left: 10,
                n_right: 5,
                exponent: 0.8,
                min_degree: 2,
                max_degree: 1_000,
                cap: 1,
            },
            9,
        );
        gen.graph.validate().unwrap();
        for v in 0..5u32 {
            assert!(gen.graph.right_degree(v) <= 10);
        }
    }
}

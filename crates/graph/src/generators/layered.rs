//! Adversarial dense-core / sparse-fringe instances.
//!
//! The paper's analysis (§3.2, Remark 2) identifies the hard case for the
//! proportional-allocation dynamics: an over-subscribed *dense core* whose
//! `β` values sink while an under-subscribed *sparse fringe* competes for
//! the same left vertices. This generator builds exactly that shape:
//!
//! * a core `K ⊆ R` of `core_right` vertices with tiny capacities, densely
//!   connected to a pool of `core_left` left vertices (so the core is
//!   heavily over-subscribed and its `β` values fall),
//! * a fringe forest hanging off the same left pool plus fresh left
//!   vertices, with generous capacities (so fringe `β` values rise),
//!
//! which maximizes the level-set spread the termination condition watches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::BipartiteBuilder;
use crate::generators::forests::random_spanning_tree_edges;
use crate::generators::Generated;

/// Parameters for [`dense_core_sparse_fringe`].
#[derive(Debug, Clone)]
pub struct LayeredParams {
    /// Left vertices shared between the core and the fringe.
    pub core_left: usize,
    /// Right vertices in the dense core.
    pub core_right: usize,
    /// Each core-right vertex connects to this many random core-left
    /// vertices; this is the density knob (core arboricity ≈ this value).
    pub core_degree: usize,
    /// Capacity of each core-right vertex (small ⇒ over-subscribed).
    pub core_capacity: u64,
    /// Extra left vertices only touched by the fringe.
    pub fringe_left: usize,
    /// Right vertices in the sparse fringe.
    pub fringe_right: usize,
    /// Capacity of each fringe-right vertex (large ⇒ under-subscribed).
    pub fringe_capacity: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            core_left: 256,
            core_right: 64,
            core_degree: 32,
            core_capacity: 1,
            fringe_left: 1024,
            fringe_right: 512,
            fringe_capacity: 8,
        }
    }
}

/// Build a dense-core / sparse-fringe instance. Deterministic in `seed`.
pub fn dense_core_sparse_fringe(p: &LayeredParams, seed: u64) -> Generated {
    assert!(p.core_left >= 1 && p.core_right >= 1 && p.fringe_right >= 1);
    assert!(p.core_degree >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);

    let n_left = p.core_left + p.fringe_left;
    let n_right = p.core_right + p.fringe_right;
    let mut b = BipartiteBuilder::with_edge_capacity(
        n_left,
        n_right,
        p.core_right * p.core_degree + n_left + p.fringe_right,
    );

    // Core: each core-right vertex picks core_degree random core-left
    // partners.
    for v in 0..p.core_right as u32 {
        for _ in 0..p.core_degree.min(p.core_left) {
            b.add_edge(rng.gen_range(0..p.core_left as u32), v);
        }
    }

    // Fringe: one random spanning tree over (all left) × (fringe right),
    // re-indexed into the global id spaces.
    let tree = random_spanning_tree_edges(n_left, p.fringe_right, &mut rng);
    for (u, v) in tree {
        b.add_edge(u, p.core_right as u32 + v);
    }

    let mut caps = vec![p.core_capacity; p.core_right];
    caps.extend(std::iter::repeat_n(p.fringe_capacity, p.fringe_right));
    let graph = b.build(caps).expect("generator produces in-range edges");
    Generated {
        graph,
        // Core is (≤ core_degree)-orientable toward R (+1), fringe adds one
        // forest: certified bound core_degree + 2.
        lambda_upper: p.core_degree as u32 + 2,
        family: format!(
            "layered(core={}x{} d={}, fringe={}x{})",
            p.core_left, p.core_right, p.core_degree, p.fringe_left, p.fringe_right
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_sound() {
        let p = LayeredParams::default();
        let gen = dense_core_sparse_fringe(&p, 17);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.n_left(), p.core_left + p.fringe_left);
        assert_eq!(g.n_right(), p.core_right + p.fringe_right);
        // Core capacities small, fringe capacities large.
        for v in 0..p.core_right as u32 {
            assert_eq!(g.capacity(v), p.core_capacity);
        }
        for v in p.core_right as u32..(p.core_right + p.fringe_right) as u32 {
            assert_eq!(g.capacity(v), p.fringe_capacity);
        }
    }

    #[test]
    fn core_is_oversubscribed() {
        let p = LayeredParams::default();
        let gen = dense_core_sparse_fringe(&p, 17);
        let g = &gen.graph;
        let core_demand: usize = (0..p.core_right as u32).map(|v| g.right_degree(v)).sum();
        let core_capacity: u64 = (0..p.core_right as u32).map(|v| g.capacity(v)).sum();
        assert!(
            core_demand as u64 > 4 * core_capacity,
            "core demand {core_demand} should dwarf capacity {core_capacity}"
        );
    }

    #[test]
    fn fringe_is_a_forest() {
        // fringe edges = spanning tree over n_left + fringe_right vertices
        // minus dedup losses; its edge count must be < vertex count.
        let p = LayeredParams {
            core_left: 8,
            core_right: 4,
            core_degree: 4,
            core_capacity: 1,
            fringe_left: 64,
            fringe_right: 32,
            fringe_capacity: 4,
        };
        let gen = dense_core_sparse_fringe(&p, 5);
        let g = &gen.graph;
        let fringe_edges: usize = (p.core_right as u32..(p.core_right + p.fringe_right) as u32)
            .map(|v| g.right_degree(v))
            .sum();
        assert!(fringe_edges < g.n_left() + p.fringe_right);
    }

    #[test]
    fn deterministic() {
        let p = LayeredParams::default();
        let a = dense_core_sparse_fringe(&p, 1);
        let b = dense_core_sparse_fringe(&p, 1);
        assert_eq!(a.graph.m(), b.graph.m());
    }
}

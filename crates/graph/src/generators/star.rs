//! The star instance from the paper's Remark 1.
//!
//! `G` is a star whose center lies in `R` with capacity `c` and whose
//! `n` leaves lie in `L`. Its arboricity is 1, yet the vertex-split
//! reduction to plain matching (see [`crate::reduction`]) turns it into a
//! complete bipartite graph with arboricity `Θ(n)` — the paper's argument
//! for why allocation cannot simply be reduced to matching on uniformly
//! sparse graphs.

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;

/// A star with `n_leaves` left leaves and one right center of capacity
/// `center_capacity`.
pub fn star(n_leaves: usize, center_capacity: u64) -> Generated {
    assert!(n_leaves >= 1, "a star needs at least one leaf");
    let mut b = BipartiteBuilder::with_edge_capacity(n_leaves, 1, n_leaves);
    for u in 0..n_leaves as u32 {
        b.add_edge(u, 0);
    }
    let graph = b
        .build(vec![center_capacity])
        .expect("star edges are in range");
    Generated {
        graph,
        lambda_upper: 1,
        family: format!("star(n={n_leaves}, C={center_capacity})"),
    }
}

/// A disjoint union of `k` stars, each with `n_leaves` leaves and capacity
/// `center_capacity`; still arboricity 1 but with many components —
/// exercises component-independence of the algorithms.
pub fn star_forest(k: usize, n_leaves: usize, center_capacity: u64) -> Generated {
    assert!(k >= 1 && n_leaves >= 1);
    let mut b = BipartiteBuilder::with_edge_capacity(k * n_leaves, k, k * n_leaves);
    for s in 0..k {
        for i in 0..n_leaves {
            b.add_edge((s * n_leaves + i) as u32, s as u32);
        }
    }
    let graph = b
        .build(vec![center_capacity; k])
        .expect("star forest edges are in range");
    Generated {
        graph,
        lambda_upper: 1,
        family: format!("star_forest(k={k}, n={n_leaves}, C={center_capacity})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let gen = star(10, 4);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.n_left(), 10);
        assert_eq!(g.n_right(), 1);
        assert_eq!(g.m(), 10);
        assert_eq!(g.right_degree(0), 10);
        assert_eq!(g.capacity(0), 4);
        assert_eq!(gen.lambda_upper, 1);
        assert_eq!(gen.lambda_lower(), 1);
    }

    #[test]
    fn star_forest_components() {
        let gen = star_forest(3, 4, 2);
        let g = &gen.graph;
        g.validate().unwrap();
        assert_eq!(g.n_left(), 12);
        assert_eq!(g.n_right(), 3);
        assert_eq!(g.m(), 12);
        for v in 0..3u32 {
            assert_eq!(g.right_degree(v), 4);
            // Leaves of star v are exactly block v.
            for &u in g.right_neighbors(v) {
                assert_eq!(u / 4, v);
            }
        }
    }
}

//! Erdős–Rényi-style random bipartite graphs `G(n_l, n_r, m)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::BipartiteBuilder;
use crate::generators::Generated;

/// A uniformly random simple bipartite graph with (up to) `m` edges.
///
/// Edges are sampled with replacement and deduplicated, so the final edge
/// count can be slightly below `m` when `m` is a large fraction of
/// `n_l · n_r`. The arboricity of such a graph is `Θ(m/n)` with high
/// probability; the returned `lambda_upper` is the trivial bound
/// `⌈m / 1⌉`-free estimate `max_degree`-independent value `m.div_ceil(n−1)`
/// *doubled* — a safe certified bound via the fact that a graph with max
/// density `d` has arboricity at most `2d` (actually `d + 1`); experiments
/// that need exact control should use
/// [`crate::generators::union_of_spanning_trees`] instead.
pub fn random_bipartite(n_left: usize, n_right: usize, m: usize, cap: u64, seed: u64) -> Generated {
    assert!(n_left >= 1 && n_right >= 1, "both sides must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BipartiteBuilder::with_edge_capacity(n_left, n_right, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n_left as u32);
        let v = rng.gen_range(0..n_right as u32);
        b.add_edge(u, v);
    }
    let graph = b
        .build_with_uniform_capacity(cap)
        .expect("generator produces in-range edges");
    let n = graph.n();
    // Any graph satisfies λ ≤ max_H ⌈m_H/(n_H−1)⌉ ≤ m/(n−1) + 1 only for
    // *uniformly* dense graphs; the always-valid certificate we can give
    // cheaply is degeneracy-based and computed on demand, so here we store
    // the weak-but-true bound λ ≤ ⌈m/(n−1)⌉ + small slack via the global
    // density plus the classical "+1" of random graphs. Use
    // `sparsity::degeneracy` for a certified bound.
    let dens = if n > 1 {
        (graph.m() as u64).div_ceil(n as u64 - 1) as u32
    } else {
        1
    };
    Generated {
        graph,
        lambda_upper: dens.saturating_mul(2).max(1),
        family: format!("random(nl={n_left}, nr={n_right}, m={m})"),
    }
}

/// A random *biregular-ish* bipartite graph: every left vertex gets exactly
/// `d` random right neighbors (before deduplication). Left degrees are
/// `≤ d`, so the graph has arboricity at most `d` — a convenient certified
/// family when a degree bound is what matters.
pub fn random_left_regular(
    n_left: usize,
    n_right: usize,
    d: usize,
    cap: u64,
    seed: u64,
) -> Generated {
    assert!(n_left >= 1 && n_right >= 1 && d >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = BipartiteBuilder::with_edge_capacity(n_left, n_right, n_left * d);
    for u in 0..n_left as u32 {
        for _ in 0..d {
            b.add_edge(u, rng.gen_range(0..n_right as u32));
        }
    }
    let graph = b
        .build_with_uniform_capacity(cap)
        .expect("generator produces in-range edges");
    Generated {
        graph,
        // Orienting every edge toward its left endpoint gives out-degree
        // ≤ d, and a graph that admits an orientation with out-degree ≤ d
        // has arboricity ≤ d + 1 (and ≤ 2d forests trivially); the tight
        // certified bound we use is d + 1.
        lambda_upper: d as u32 + 1,
        family: format!("left_regular(nl={n_left}, nr={n_right}, d={d})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bipartite_basic() {
        let gen = random_bipartite(100, 80, 400, 2, 7);
        let g = &gen.graph;
        g.validate().unwrap();
        assert!(g.m() <= 400);
        assert!(g.m() >= 350, "too many duplicates: m = {}", g.m());
        assert_eq!(g.n_left(), 100);
        assert_eq!(g.n_right(), 80);
        assert!(gen.lambda_lower() <= gen.lambda_upper);
    }

    #[test]
    fn random_deterministic() {
        let a = random_bipartite(50, 50, 200, 1, 3);
        let b = random_bipartite(50, 50, 200, 1, 3);
        assert_eq!(
            a.graph.edge_right_endpoints(),
            b.graph.edge_right_endpoints()
        );
    }

    #[test]
    fn left_regular_degrees() {
        let gen = random_left_regular(60, 40, 5, 1, 9);
        let g = &gen.graph;
        g.validate().unwrap();
        for u in 0..g.n_left() as u32 {
            assert!(g.left_degree(u) <= 5);
            assert!(g.left_degree(u) >= 1);
        }
        assert_eq!(gen.lambda_upper, 6);
    }

    #[test]
    fn dense_case_saturates() {
        // m close to nl*nr: dedup kicks in but the graph stays valid.
        let gen = random_bipartite(10, 10, 200, 1, 5);
        gen.graph.validate().unwrap();
        assert!(gen.graph.m() <= 100);
    }
}

//! Graph families with controllable arboricity.
//!
//! The paper's complexity parameter is the arboricity `λ` of the input. To
//! validate `O(log λ)`-type claims we need families where `λ` is known (or
//! tightly bracketed) *by construction*:
//!
//! * [`forests::union_of_spanning_trees`] — exactly `k` edge-disjoint
//!   spanning trees, so `λ ≤ k` and (by Nash–Williams, since
//!   `m = k(n−1)` before dedup) `λ = k` whenever no duplicates collide.
//! * [`star::star`] — the paper's Remark 1 example, `λ = 1`.
//! * [`random::random_bipartite`] — G(n,m) bipartite, `λ = Θ(m/n)` whp.
//! * [`power_law::power_law`] — skewed ad-workload instances.
//! * [`grid::grid`] — planar, `λ ≤ 3`.
//! * [`layered::dense_core_sparse_fringe`] — adversarial instances that
//!   exercise the level-set dynamics of the proportional-allocation
//!   algorithm (a dense over-subscribed core feeding a sparse fringe).
//! * [`rmat::rmat`] — recursive-matrix (R-MAT) instances with correlated
//!   two-sided skew; no constructive λ bound, so the measured degeneracy
//!   bound is reported instead.
//!
//! Every generator is deterministic in its `seed` argument.

pub mod escape;
pub mod forests;
pub mod grid;
pub mod layered;
pub mod power_law;
pub mod random;
pub mod rmat;
pub mod star;

pub use escape::escape_blocks;
pub use forests::union_of_spanning_trees;
pub use grid::grid;
pub use layered::{dense_core_sparse_fringe, LayeredParams};
pub use power_law::{power_law, PowerLawParams};
pub use random::{random_bipartite, random_left_regular};
pub use rmat::{rmat, RmatParams};
pub use star::{star, star_forest};

use crate::bipartite::Bipartite;

/// A generated graph together with what the generator *guarantees* about its
/// arboricity.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The graph itself.
    pub graph: Bipartite,
    /// A certified upper bound on the arboricity `λ(G)` (from the
    /// construction, e.g. "union of `k` forests").
    pub lambda_upper: u32,
    /// Human-readable provenance for experiment tables.
    pub family: String,
}

impl Generated {
    /// Nash–Williams lower bound `⌈m / (n − 1)⌉` computed from the final
    /// (deduplicated) edge count; combined with `lambda_upper` this brackets
    /// the true arboricity.
    pub fn lambda_lower(&self) -> u32 {
        let n = self.graph.n();
        let m = self.graph.m();
        if n <= 1 || m == 0 {
            return if m > 0 { 1 } else { 0 };
        }
        (m as u64).div_ceil(n as u64 - 1) as u32
    }
}

//! Instance statistics: degree and capacity distributions.
//!
//! Allocation behavior is driven by the *shape* of the degree and budget
//! distributions (the paper's motivating workloads are heavy-tailed);
//! this module computes the summaries the CLI and experiment tables print.

use crate::bipartite::Bipartite;

/// Five-number-ish summary of a non-negative integer distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Smallest value.
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: u64,
    /// 90th percentile.
    pub p90: u64,
}

impl Distribution {
    /// Summarize a list of values (empty input gives all zeros).
    pub fn of(values: impl IntoIterator<Item = u64>) -> Distribution {
        let mut v: Vec<u64> = values.into_iter().collect();
        if v.is_empty() {
            return Distribution {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p90: 0,
            };
        }
        v.sort_unstable();
        let n = v.len();
        Distribution {
            min: v[0],
            max: v[n - 1],
            mean: v.iter().sum::<u64>() as f64 / n as f64,
            median: v[(n - 1) / 2],
            p90: v[((n - 1) * 9) / 10],
        }
    }

    /// Heavy-tail indicator: `max / max(1, median)`.
    pub fn skew(&self) -> f64 {
        self.max as f64 / self.median.max(1) as f64
    }
}

/// Full per-instance summary.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Left-degree distribution.
    pub left_degrees: Distribution,
    /// Right-degree distribution.
    pub right_degrees: Distribution,
    /// Capacity distribution.
    pub capacities: Distribution,
    /// Demand/supply ratio `|L| / Σ C_v` (how over-subscribed the instance
    /// can be at best).
    pub demand_supply_ratio: f64,
    /// Count of isolated left vertices (unmatched no matter what).
    pub isolated_left: usize,
}

/// Compute the summary in `O(n + m)` (plus sorting of degree lists).
pub fn graph_stats(g: &Bipartite) -> GraphStats {
    let left: Vec<u64> = (0..g.n_left() as u32)
        .map(|u| g.left_degree(u) as u64)
        .collect();
    let isolated_left = left.iter().filter(|&&d| d == 0).count();
    let right: Vec<u64> = (0..g.n_right() as u32)
        .map(|v| g.right_degree(v) as u64)
        .collect();
    GraphStats {
        left_degrees: Distribution::of(left),
        right_degrees: Distribution::of(right),
        capacities: Distribution::of(g.capacities().iter().copied()),
        demand_supply_ratio: g.n_left() as f64 / g.total_capacity().max(1) as f64,
        isolated_left,
    }
}

/// Per-advertiser fill-rate summary of an assignment — the ad-serving
/// diagnostic the §1 workloads are judged by in practice: not just *how
/// much* demand was served in total, but how evenly budgets were filled.
#[derive(Debug, Clone, PartialEq)]
pub struct FillReport {
    /// Distribution of per-right-vertex fill rates in percent
    /// (`100·load_v/C_v`, so the summaries stay integral).
    pub fill_percent: Distribution,
    /// Jain's fairness index over the fill rates, in `(0, 1]`; `1` means
    /// every advertiser is filled to the same fraction of its budget.
    pub jain_index: f64,
    /// Number of advertisers at zero fill.
    pub starved: usize,
    /// Number of advertisers at 100% fill.
    pub saturated: usize,
}

/// Summarize the fill profile of `assignment_loads` (as produced by
/// [`crate::Assignment::right_loads`]) against the capacities of `g`.
///
/// # Panics
/// Panics if `assignment_loads.len() != g.n_right()`.
pub fn fill_report(g: &Bipartite, assignment_loads: &[u64]) -> FillReport {
    assert_eq!(
        assignment_loads.len(),
        g.n_right(),
        "one load per right vertex"
    );
    let rates: Vec<f64> = assignment_loads
        .iter()
        .zip(g.capacities())
        .map(|(&load, &cap)| load as f64 / cap as f64)
        .collect();
    let n = rates.len();
    let (sum, sum_sq) = rates
        .iter()
        .fold((0.0f64, 0.0f64), |(s, q), &r| (s + r, q + r * r));
    // Jain's index: (Σx)² / (n·Σx²); defined as 1 on the empty or all-zero
    // profile (nothing is unfairly shared).
    let jain_index = if n == 0 || sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * sum_sq)
    };
    FillReport {
        fill_percent: Distribution::of(rates.iter().map(|r| (r * 100.0).round() as u64)),
        jain_index,
        starved: assignment_loads.iter().filter(|&&l| l == 0).count(),
        saturated: assignment_loads
            .iter()
            .zip(g.capacities())
            .filter(|(&l, &c)| l >= c)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{power_law, star, PowerLawParams};
    use crate::BipartiteBuilder;

    #[test]
    fn distribution_basics() {
        let d = Distribution::of([1u64, 2, 3, 4, 100]);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 100);
        assert_eq!(d.median, 3);
        assert_eq!(d.p90, 4);
        assert!((d.mean - 22.0).abs() < 1e-12);
        assert!((d.skew() - 100.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let d = Distribution::of(std::iter::empty());
        assert_eq!(
            d,
            Distribution {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p90: 0,
            }
        );
    }

    #[test]
    fn star_stats() {
        let g = star(10, 4).graph;
        let s = graph_stats(&g);
        assert_eq!(s.left_degrees.max, 1);
        assert_eq!(s.right_degrees.max, 10);
        assert_eq!(s.capacities.max, 4);
        assert!((s.demand_supply_ratio - 2.5).abs() < 1e-12);
        assert_eq!(s.isolated_left, 0);
    }

    #[test]
    fn isolated_vertices_counted() {
        let mut b = BipartiteBuilder::new(5, 2);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(graph_stats(&g).isolated_left, 3);
    }

    #[test]
    fn fill_report_even_profile_is_fair() {
        // Two advertisers, both half full: Jain = 1.
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        let g = b.build_with_uniform_capacity(2).unwrap();
        let r = fill_report(&g, &[1, 1]);
        assert!((r.jain_index - 1.0).abs() < 1e-12);
        assert_eq!(r.fill_percent.min, 50);
        assert_eq!(r.fill_percent.max, 50);
        assert_eq!(r.starved, 0);
        assert_eq!(r.saturated, 0);
    }

    #[test]
    fn fill_report_skewed_profile_is_unfair() {
        // One advertiser saturated, three starved: Jain = 1/4.
        let mut b = BipartiteBuilder::new(2, 4);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        let g = b.build_with_uniform_capacity(2).unwrap();
        let r = fill_report(&g, &[2, 0, 0, 0]);
        assert!((r.jain_index - 0.25).abs() < 1e-12);
        assert_eq!(r.starved, 3);
        assert_eq!(r.saturated, 1);
    }

    #[test]
    fn fill_report_zero_profile_defined() {
        let mut b = BipartiteBuilder::new(1, 3);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let r = fill_report(&g, &[0, 0, 0]);
        assert_eq!(r.jain_index, 1.0);
        assert_eq!(r.starved, 3);
        assert_eq!(r.saturated, 0);
    }

    #[test]
    #[should_panic(expected = "one load per right vertex")]
    fn fill_report_arity_checked() {
        let mut b = BipartiteBuilder::new(1, 2);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let _ = fill_report(&g, &[0]);
    }

    #[test]
    fn power_law_is_skewed_on_the_right() {
        let g = power_law(
            &PowerLawParams {
                n_left: 4000,
                n_right: 800,
                exponent: 1.0,
                min_degree: 1,
                max_degree: 800,
                cap: 1,
            },
            4,
        )
        .graph;
        let s = graph_stats(&g);
        assert!(
            s.right_degrees.skew() >= 10.0,
            "expected heavy right tail, skew {}",
            s.right_degrees.skew()
        );
        assert!(s.left_degrees.skew() < s.right_degrees.skew());
    }
}

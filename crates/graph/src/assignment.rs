//! Integral allocations (assignments) shared by every solver crate.
//!
//! An allocation (paper, Definition 5) matches each left vertex to at most
//! one right vertex while respecting right capacities. The natural dense
//! encoding is one `Option<RightId>` per left vertex.

use crate::bipartite::{Bipartite, RightId};

/// An integral allocation: `mate[u] = Some(v)` iff edge `(u, v)` is in the
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Per-left-vertex match.
    pub mate: Vec<Option<RightId>>,
}

impl Assignment {
    /// The empty allocation on a graph with `n_left` left vertices.
    pub fn empty(n_left: usize) -> Self {
        Assignment {
            mate: vec![None; n_left],
        }
    }

    /// Cardinality `|M|`.
    pub fn size(&self) -> usize {
        self.mate.iter().filter(|m| m.is_some()).count()
    }

    /// Load of each right vertex (number of matched left partners).
    pub fn right_loads(&self, n_right: usize) -> Vec<u64> {
        let mut loads = vec![0u64; n_right];
        for m in self.mate.iter().flatten() {
            loads[*m as usize] += 1;
        }
        loads
    }

    /// Check feasibility against `g`: every matched pair is an edge of `g`
    /// and no right vertex exceeds its capacity.
    pub fn validate(&self, g: &Bipartite) -> Result<(), String> {
        if self.mate.len() != g.n_left() {
            return Err(format!(
                "assignment has {} slots but graph has {} left vertices",
                self.mate.len(),
                g.n_left()
            ));
        }
        for (u, m) in self.mate.iter().enumerate() {
            if let Some(v) = m {
                if (*v as usize) >= g.n_right() {
                    return Err(format!("left {u} matched to out-of-range right {v}"));
                }
                if !g.left_neighbors(u as u32).contains(v) {
                    return Err(format!("matched pair ({u}, {v}) is not an edge"));
                }
            }
        }
        for (v, &load) in self.right_loads(g.n_right()).iter().enumerate() {
            if load > g.capacity(v as u32) {
                return Err(format!(
                    "right {v} load {load} exceeds capacity {}",
                    g.capacity(v as u32)
                ));
            }
        }
        Ok(())
    }

    /// The matched pairs as `(u, v)` tuples.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, RightId)> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, m)| m.map(|v| (u as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BipartiteBuilder;

    fn toy() -> Bipartite {
        let mut b = BipartiteBuilder::new(3, 2);
        for (u, v) in [(0u32, 0u32), (1, 0), (2, 1)] {
            b.add_edge(u, v);
        }
        b.build(vec![1, 2]).unwrap()
    }

    #[test]
    fn valid_assignment() {
        let g = toy();
        let mut a = Assignment::empty(3);
        a.mate[0] = Some(0);
        a.mate[2] = Some(1);
        a.validate(&g).unwrap();
        assert_eq!(a.size(), 2);
        assert_eq!(a.right_loads(2), vec![1, 1]);
        assert_eq!(a.pairs().collect::<Vec<_>>(), vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn capacity_violation_detected() {
        let g = toy();
        let mut a = Assignment::empty(3);
        a.mate[0] = Some(0);
        a.mate[1] = Some(0); // capacity of right 0 is 1
        assert!(a.validate(&g).is_err());
    }

    #[test]
    fn non_edge_detected() {
        let g = toy();
        let mut a = Assignment::empty(3);
        a.mate[0] = Some(1); // (0, 1) is not an edge
        assert!(a.validate(&g).is_err());
    }

    #[test]
    fn wrong_length_detected() {
        let g = toy();
        let a = Assignment::empty(2);
        assert!(a.validate(&g).is_err());
    }
}

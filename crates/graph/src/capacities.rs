//! Capacity models for the `R` side of an allocation instance.
//!
//! The allocation problem (paper, Definition 5) attaches an integer capacity
//! `C_v ≥ 1` to every right vertex. Real workloads (ad budgets, server
//! slots) are heterogeneous; these models reproduce the common shapes.

use rand::distributions::Distribution;
use rand::Rng;

use crate::bipartite::Bipartite;

/// A recipe for assigning capacities to the right side of a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacityModel {
    /// Every right vertex gets capacity 1 (plain bipartite matching).
    Unit,
    /// Every right vertex gets the same capacity `c ≥ 1`.
    Uniform(u64),
    /// `C_v = max(1, round(scale · deg(v)))` — capacity proportional to
    /// demand, the "well-provisioned server" regime.
    DegreeProportional {
        /// Multiplier on the degree; `scale = 1.0` makes every vertex able
        /// to absorb its whole neighborhood.
        scale: f64,
    },
    /// Bounded Pareto (power-law) capacities in `[1, max]` with shape
    /// `alpha > 0`; models skewed ad budgets.
    PowerLaw {
        /// Pareto shape; smaller = heavier tail.
        alpha: f64,
        /// Upper truncation (inclusive).
        max: u64,
    },
    /// Uniformly random integer capacity in `[lo, hi]` (inclusive).
    UniformRange {
        /// Lower bound (≥ 1).
        lo: u64,
        /// Upper bound (≥ lo).
        hi: u64,
    },
}

impl CapacityModel {
    /// Produce a capacity vector for graph `g` using randomness from `rng`.
    ///
    /// Deterministic models (`Unit`, `Uniform`, `DegreeProportional`) ignore
    /// the RNG.
    pub fn assign(&self, g: &Bipartite, rng: &mut impl Rng) -> Vec<u64> {
        let nr = g.n_right();
        match *self {
            CapacityModel::Unit => vec![1; nr],
            CapacityModel::Uniform(c) => {
                assert!(c >= 1, "uniform capacity must be ≥ 1");
                vec![c; nr]
            }
            CapacityModel::DegreeProportional { scale } => {
                assert!(scale > 0.0, "scale must be positive");
                (0..nr as u32)
                    .map(|v| ((g.right_degree(v) as f64 * scale).round() as u64).max(1))
                    .collect()
            }
            CapacityModel::PowerLaw { alpha, max } => {
                assert!(alpha > 0.0, "alpha must be positive");
                assert!(max >= 1, "max must be ≥ 1");
                // Inverse-CDF sampling from a bounded Pareto on [1, max+1).
                let (l, h) = (1.0f64, (max + 1) as f64);
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let uniform = rand::distributions::Uniform::new(0.0f64, 1.0);
                (0..nr)
                    .map(|_| {
                        let u: f64 = uniform.sample(rng);
                        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                        (x.floor() as u64).clamp(1, max)
                    })
                    .collect()
            }
            CapacityModel::UniformRange { lo, hi } => {
                assert!(lo >= 1 && hi >= lo, "need 1 ≤ lo ≤ hi");
                (0..nr).map(|_| rng.gen_range(lo..=hi)).collect()
            }
        }
    }

    /// Convenience: apply the model to `g`, returning a graph with the new
    /// capacities.
    pub fn apply(&self, g: &Bipartite, rng: &mut impl Rng) -> Bipartite {
        let caps = self.assign(g, rng);
        g.with_capacities(caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BipartiteBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> Bipartite {
        let mut b = BipartiteBuilder::new(4, 3);
        for (u, v) in [(0u32, 0u32), (1, 0), (2, 0), (3, 1), (0, 2), (1, 2)] {
            b.add_edge(u, v);
        }
        b.build_with_uniform_capacity(1).unwrap()
    }

    #[test]
    fn unit_and_uniform() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(CapacityModel::Unit.assign(&g, &mut rng), vec![1, 1, 1]);
        assert_eq!(
            CapacityModel::Uniform(7).assign(&g, &mut rng),
            vec![7, 7, 7]
        );
    }

    #[test]
    fn degree_proportional() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(1);
        // degrees: v0 = 3, v1 = 1, v2 = 2
        let caps = CapacityModel::DegreeProportional { scale: 0.5 }.assign(&g, &mut rng);
        assert_eq!(caps, vec![2, 1, 1]); // round(1.5)=2, max(1,round(0.5))=1, round(1.0)=1
    }

    #[test]
    fn power_law_in_range_and_deterministic() {
        let g = toy();
        let model = CapacityModel::PowerLaw {
            alpha: 1.2,
            max: 100,
        };
        let a = model.assign(&g, &mut SmallRng::seed_from_u64(42));
        let b = model.assign(&g, &mut SmallRng::seed_from_u64(42));
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (1..=100).contains(&c)));
    }

    #[test]
    fn power_law_is_skewed() {
        // With a heavy tail over a big population, the max should far exceed
        // the median.
        let mut b = BipartiteBuilder::new(1, 4000);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut caps = CapacityModel::PowerLaw {
            alpha: 0.8,
            max: 10_000,
        }
        .assign(&g, &mut rng);
        caps.sort_unstable();
        let median = caps[caps.len() / 2];
        let max = *caps.last().unwrap();
        assert!(median <= 10, "median {median} unexpectedly large");
        assert!(max >= 100, "max {max} unexpectedly small");
    }

    #[test]
    fn uniform_range_bounds() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(3);
        let caps = CapacityModel::UniformRange { lo: 2, hi: 5 }.assign(&g, &mut rng);
        assert!(caps.iter().all(|&c| (2..=5).contains(&c)));
    }

    #[test]
    fn apply_replaces_capacities() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(3);
        let g2 = CapacityModel::Uniform(9).apply(&g, &mut rng);
        assert_eq!(g2.capacities(), &[9, 9, 9]);
        assert_eq!(g2.m(), g.m());
    }
}

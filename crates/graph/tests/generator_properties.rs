//! Property-based tests of the generators: every family must produce a
//! structurally valid graph whose certified arboricity bound is consistent
//! with the measured bracket, for arbitrary parameters.

use proptest::prelude::*;
use sparse_alloc_graph::generators::{
    dense_core_sparse_fringe, escape_blocks, grid, power_law, random_bipartite,
    random_left_regular, star_forest, union_of_spanning_trees, LayeredParams, PowerLawParams,
};
use sparse_alloc_graph::sparsity::{arboricity_bracket, degeneracy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn forest_unions_are_consistent(
        nl in 2usize..80, nr in 2usize..80, k in 1u32..6, cap in 1u64..5, seed in 0u64..1000,
    ) {
        let gen = union_of_spanning_trees(nl, nr, k, cap, seed);
        gen.graph.validate().unwrap();
        let b = arboricity_bracket(&gen.graph);
        prop_assert!(b.lower <= gen.lambda_upper, "NW {} vs certificate {}", b.lower, gen.lambda_upper);
        prop_assert!(b.upper <= 2 * gen.lambda_upper, "degeneracy {} vs 2λ {}", b.upper, 2 * gen.lambda_upper);
        prop_assert!(gen.graph.m() >= nl + nr - 1);
        prop_assert!(gen.graph.m() <= k as usize * (nl + nr - 1));
    }

    #[test]
    fn random_bipartite_is_valid(
        nl in 1usize..60, nr in 1usize..60, m in 0usize..400, cap in 1u64..4, seed in 0u64..1000,
    ) {
        let gen = random_bipartite(nl, nr, m, cap, seed);
        gen.graph.validate().unwrap();
        prop_assert!(gen.graph.m() <= m);
        prop_assert!(gen.graph.m() <= nl * nr);
    }

    #[test]
    fn left_regular_degree_bound(
        nl in 1usize..50, nr in 1usize..50, d in 1usize..6, seed in 0u64..500,
    ) {
        let gen = random_left_regular(nl, nr, d, 1, seed);
        gen.graph.validate().unwrap();
        for u in 0..nl as u32 {
            prop_assert!(gen.graph.left_degree(u) <= d);
            prop_assert!(gen.graph.left_degree(u) >= 1);
        }
        prop_assert!(degeneracy(&gen.graph) <= gen.lambda_upper * 2);
    }

    #[test]
    fn power_law_respects_caps(
        nl in 4usize..100, nr in 1usize..40, exp in 0.5f64..2.5, seed in 0u64..500,
    ) {
        let gen = power_law(&PowerLawParams {
            n_left: nl,
            n_right: nr,
            exponent: exp,
            min_degree: 1,
            max_degree: 16,
            cap: 2,
        }, seed);
        gen.graph.validate().unwrap();
        for v in 0..nr as u32 {
            prop_assert!(gen.graph.right_degree(v) <= 16.min(nl));
        }
    }

    #[test]
    fn grids_stay_planar_sparse(w in 1usize..24, h in 1usize..24) {
        let gen = grid(w, h, 1);
        gen.graph.validate().unwrap();
        prop_assert!(gen.graph.max_degree() <= 4);
        prop_assert!(degeneracy(&gen.graph) <= 2);
    }

    #[test]
    fn star_forests_have_arboricity_one(
        k in 1usize..10, leaves in 1usize..30, cap in 1u64..8,
    ) {
        let gen = star_forest(k, leaves, cap);
        gen.graph.validate().unwrap();
        prop_assert!(degeneracy(&gen.graph) <= 1);
        prop_assert_eq!(gen.graph.m(), k * leaves);
    }

    #[test]
    fn layered_instances_are_valid(
        core_left in 2usize..40, core_right in 1usize..10, core_degree in 1usize..8,
        fringe_left in 0usize..40, fringe_right in 1usize..30, seed in 0u64..200,
    ) {
        let gen = dense_core_sparse_fringe(&LayeredParams {
            core_left,
            core_right,
            core_degree,
            core_capacity: 1,
            fringe_left,
            fringe_right,
            fringe_capacity: 3,
        }, seed);
        gen.graph.validate().unwrap();
        prop_assert_eq!(gen.graph.n_left(), core_left + fringe_left);
        prop_assert_eq!(gen.graph.n_right(), core_right + fringe_right);
    }

    #[test]
    fn escape_blocks_structure(lambda in 1u32..8, blocks in 1usize..5) {
        let gen = escape_blocks(lambda, blocks);
        gen.graph.validate().unwrap();
        let l2 = (lambda as usize) * (lambda as usize);
        prop_assert_eq!(gen.graph.n_left(), blocks * l2);
        // Every left vertex: λ core edges + 1 private fringe edge.
        for u in 0..gen.graph.n_left() as u32 {
            prop_assert_eq!(gen.graph.left_degree(u), lambda as usize + 1);
        }
        let b = arboricity_bracket(&gen.graph);
        prop_assert!(b.upper <= gen.lambda_upper);
    }
}

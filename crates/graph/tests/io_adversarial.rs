//! Adversarial-bytes property tests for the binary codecs: the frame
//! codec and the `Bipartite`/`DeltaGraph` byte codecs must round-trip
//! every valid value, and must answer **any** corrupted byte stream —
//! truncation, bit flips, checksum damage, version skew, or outright
//! garbage — with a typed error, never a panic and never an unbounded
//! allocation. (The `take_len` readers bound every length prefix by the
//! bytes actually remaining, which is what makes "64-bit length says
//! 2^60 elements" safe to feed the decoder.)

use proptest::prelude::*;
use sparse_alloc_graph::io::{
    self, decode_frame, encode_frame, read_frame, ByteReader, ByteWriter, FrameError, FrameHeader,
    FRAME_VERSION,
};
use sparse_alloc_graph::{Bipartite, BipartiteBuilder, DeltaGraph};

fn instance() -> impl Strategy<Value = Bipartite> {
    (1usize..20, 1usize..16).prop_flat_map(|(nl, nr)| {
        let edges = proptest::collection::vec((0..nl as u32, 0..nr as u32), 0..90);
        let caps = proptest::collection::vec(1u64..=4, nr);
        (Just(nl), edges, caps).prop_map(|(nl, edges, caps)| {
            let mut b = BipartiteBuilder::new(nl, caps.len());
            b.extend_edges(edges);
            b.build(caps).expect("in-range instance")
        })
    })
}

fn header() -> impl Strategy<Value = FrameHeader> {
    (
        0u32..=u32::MAX,
        0u32..=u32::MAX,
        0u64..=u64::MAX,
        0u64..=u64::MAX,
    )
        .prop_map(|(src, phase, epoch, seq)| FrameHeader {
            src,
            phase,
            epoch,
            seq,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_roundtrip_any_header_and_payload(
        h in header(),
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let bytes = encode_frame(&h, &payload);
        let (h2, p2) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&payload, &p2);
        // Stream form agrees, and a clean EOF afterwards is None.
        let mut cursor = &bytes[..];
        let (h3, p3) = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(h, h3);
        prop_assert_eq!(&payload, &p3);
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn every_frame_prefix_is_a_typed_error(
        h in header(),
        payload in proptest::collection::vec(0u8..=255, 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frame(&h, &payload);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
        // Stream form: a prefix that dies inside a frame is Truncated
        // (an *empty* prefix is clean EOF between frames — Ok(None)).
        match read_frame(&mut &bytes[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "EOF mid-frame must not look clean"),
            Ok(Some(_)) => prop_assert!(false, "decoded a cut frame"),
            Err(FrameError::Truncated { .. }) => {}
            Err(e) => prop_assert!(false, "prefix surfaced as {e:?}"),
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_a_typed_error(
        h in header(),
        payload in proptest::collection::vec(0u8..=255, 0..64),
        bit_frac in 0.0f64..1.0,
    ) {
        let mut bytes = encode_frame(&h, &payload);
        let bit = ((bytes.len() * 8 - 1) as f64 * bit_frac) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        // The FNV-1a trailer makes every single-bit flip detectable; which
        // typed error it is depends on the field hit (magic, version,
        // length, checksum, …).
        prop_assert!(decode_frame(&bytes).is_err(), "flip at bit {bit} passed");
    }

    #[test]
    fn version_skew_is_a_typed_version_error(
        h in header(),
        payload in proptest::collection::vec(0u8..=255, 0..64),
        skew in 1u32..0x7fff_ffff,
    ) {
        let mut bytes = encode_frame(&h, &payload);
        let other = FRAME_VERSION.wrapping_add(skew);
        bytes[4..8].copy_from_slice(&other.to_le_bytes());
        // Patch the trailing checksum so the version field is the *only*
        // disagreement — skew must be diagnosed as skew, not as damage.
        let body = bytes.len() - 8;
        let sum = io::fnv1a64(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::Version { found, expected }) => {
                prop_assert_eq!(found, other);
                prop_assert_eq!(expected, FRAME_VERSION);
            }
            other => prop_assert!(false, "version skew surfaced as {other:?}"),
        }
    }

    #[test]
    fn p2p_phase_frames_roundtrip_and_reject_corruption(
        phase in 16u32..=23,
        src in 0u32..=u32::MAX,
        epoch in 0u64..=u64::MAX,
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..256),
        bit_frac in 0.0f64..1.0,
    ) {
        // The peer-to-peer repair protocol added frame phases 16–23
        // (WAVE/WAVE_ACK over the spokes, HANDOFF_REQ/HANDOFF_ACK,
        // FLIP/FLIP_ACK over the worker↔worker links, ARM/ARM_ACK for
        // fault injection). The codec is phase-agnostic by design; this
        // pins that the new range travels unchanged and that the FNV-1a
        // trailer keeps every single-bit corruption of a handoff-sized
        // payload a typed error — the serving layer's "malformed
        // HANDOFF payload" refusals sit on top of exactly this
        // guarantee.
        let h = FrameHeader { src, phase, epoch, seq };
        let bytes = encode_frame(&h, &payload);
        let (h2, p2) = decode_frame(&bytes).expect("p2p phase frame decodes");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&payload, &p2);
        let bit = ((bytes.len() * 8 - 1) as f64 * bit_frac) as usize;
        let mut flipped = bytes;
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_frame(&flipped).is_err(), "flip at bit {bit} passed");
    }

    #[test]
    fn garbage_never_panics_the_frame_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        // Any outcome is fine except a panic or an unbounded allocation.
        let _ = decode_frame(&bytes);
        let _ = read_frame(&mut &bytes[..]);
    }

    #[test]
    fn bipartite_codec_roundtrips(g in instance()) {
        let mut w = ByteWriter::new();
        io::write_bipartite(&g, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let g2 = io::read_bipartite(&mut r).expect("own encoding decodes");
        r.expect_end().unwrap();
        prop_assert_eq!(g.m(), g2.m());
        prop_assert_eq!(g.capacities(), g2.capacities());
        prop_assert_eq!(g.edge_right_endpoints(), g2.edge_right_endpoints());
    }

    #[test]
    fn corrupted_bipartite_bytes_never_panic(
        g in instance(),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        let mut w = ByteWriter::new();
        io::write_bipartite(&g, &mut w);
        let bytes = w.into_bytes();
        // Every truncation is a typed parse error (never Ok: the codec's
        // trailing sections make any strict prefix incomplete).
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(io::read_bipartite(&mut ByteReader::new(&bytes[..cut])).is_err());
        // A bit flip has no checksum to trip — it may decode to a
        // *different valid* graph — but it must never panic, and
        // whatever decodes must pass structural validation.
        let bit = ((bytes.len() * 8 - 1) as f64 * flip_frac) as usize;
        let mut flipped = bytes;
        flipped[bit / 8] ^= 1 << (bit % 8);
        if let Ok(g2) = io::read_bipartite(&mut ByteReader::new(&flipped)) {
            g2.validate().expect("decoder accepted a structurally broken graph");
        }
    }

    #[test]
    fn delta_codec_roundtrips_and_survives_corruption(
        g in instance(),
        ops in proptest::collection::vec((0u8..4, 0u32..=u32::MAX, 0u32..=u32::MAX), 0..20),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        // Build an overlay with real churn so the encoding exercises
        // tombstones, arrivals, and capacity changes.
        let mut dg = DeltaGraph::new(g);
        for &(kind, a, b) in &ops {
            let nl = dg.n_left() as u32;
            let nr = dg.n_right() as u32;
            match kind {
                0 => { dg.arrive(&[a % nr, b % nr]); }
                1 => { dg.insert_edge(a % nl, b % nr); }
                2 => { dg.delete_edge(a % nl, b % nr); }
                _ => { dg.set_capacity(a % nr, 1 + (b % 4) as u64); }
            }
        }
        let mut w = ByteWriter::new();
        dg.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let dg2 = DeltaGraph::decode(&mut r).expect("own encoding decodes");
        r.expect_end().unwrap();
        prop_assert_eq!(dg.n_left(), dg2.n_left());
        prop_assert_eq!(dg.m(), dg2.m());
        prop_assert_eq!(dg.compact().edge_right_endpoints(),
                        dg2.compact().edge_right_endpoints());
        // Adversarial bytes: truncations and flips are typed or benign,
        // never a panic.
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(DeltaGraph::decode(&mut ByteReader::new(&bytes[..cut])).is_err());
        let bit = ((bytes.len() * 8 - 1) as f64 * flip_frac) as usize;
        let mut flipped = bytes;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let _ = DeltaGraph::decode(&mut ByteReader::new(&flipped));
    }
}

//! Distributed prefix sums in `O(1)` rounds.
//!
//! The classical two-round scan: every machine reduces its items locally,
//! ships the local total to machine 0, machine 0 computes per-machine
//! exclusive offsets and ships them back, and each machine finishes with a
//! local scan. This is the workhorse behind MPC dedup-with-ranks, stable
//! renumbering, and histogram levelling; the paper charges such "standard
//! primitives" `O(1)` rounds (§5), which the ledger verifies here.
//!
//! The scan order is the cluster's *current* global item order (machine
//! index, then local position) — callers who need key order sort first
//! with [`crate::primitives::sort::sort_by_key`].
//!
//! Requires `p ≤ S` (machine 0 receives one word per machine), which holds
//! throughout the sublinear regime where `p·S ≈ total` and `S = n^α`.

use crate::cluster::Cluster;
use crate::error::MpcError;
use crate::words::Words;

/// Attach to every item its *inclusive* prefix sum of `weight` in global
/// item order. Two communication rounds (plus none for `p = 1`).
pub fn prefix_sums<T, F>(cluster: Cluster<T>, weight: F) -> Result<Cluster<(T, u64)>, MpcError>
where
    T: Words + Send + Sync,
    F: Fn(&T) -> u64 + Sync + Copy,
{
    let p = cluster.n_machines();
    if p == 1 {
        return cluster.map_local("prefix-local", move |_, items| {
            let mut acc = 0u64;
            items
                .into_iter()
                .map(|it| {
                    acc += weight(&it);
                    (it, acc)
                })
                .collect()
        });
    }

    // Round 1: local totals to machine 0.
    let mut cluster = cluster;
    let mut totals_out: Vec<Vec<(usize, (u64, u64))>> = Vec::with_capacity(p);
    for m in 0..p {
        let local: u64 = cluster.machine(m).iter().map(weight).sum();
        totals_out.push(vec![(0usize, (m as u64, local))]);
    }
    let totals_in = cluster.raw_exchange("prefix-collect", totals_out)?;

    // Machine 0: exclusive offsets per machine.
    let mut totals: Vec<(u64, u64)> = totals_in.into_iter().flatten().collect();
    totals.sort_unstable_by_key(|&(m, _)| m);
    debug_assert_eq!(totals.len(), p);
    let mut offsets = vec![0u64; p];
    let mut acc = 0u64;
    for &(m, total) in &totals {
        offsets[m as usize] = acc;
        acc += total;
    }

    // Round 2: offsets back out (sent from machine 0).
    let mut offsets_out: Vec<Vec<(usize, u64)>> = vec![Vec::new(); p];
    offsets_out[0] = offsets.iter().enumerate().map(|(m, &o)| (m, o)).collect();
    let offsets_in = cluster.raw_exchange("prefix-scatter", offsets_out)?;

    // Local scan from the received offset.
    let offsets: Vec<u64> = offsets_in
        .into_iter()
        .map(|msgs| {
            debug_assert_eq!(msgs.len(), 1);
            msgs.into_iter().next().unwrap_or(0)
        })
        .collect();
    cluster.map_local("prefix-local", move |m, items| {
        let mut acc = offsets[m];
        items
            .into_iter()
            .map(|it| {
                acc += weight(&it);
                (it, acc)
            })
            .collect()
    })
}

/// Global sum of `weight` over all items, in one round (the reduce half of
/// [`prefix_sums`]). The value is returned driver-side; broadcasting it to
/// every machine costs the usual tree rounds via
/// [`crate::primitives::broadcast::broadcast_value`].
pub fn global_sum<T, F>(cluster: &mut Cluster<T>, weight: F) -> Result<u64, MpcError>
where
    T: Words + Send + Sync,
    F: Fn(&T) -> u64 + Sync + Copy,
{
    let p = cluster.n_machines();
    let mut totals_out: Vec<Vec<(usize, u64)>> = Vec::with_capacity(p);
    for m in 0..p {
        let local: u64 = cluster.machine(m).iter().map(weight).sum();
        totals_out.push(vec![(0usize, local)]);
    }
    let totals_in = cluster.raw_exchange("sum-collect", totals_out)?;
    Ok(totals_in.into_iter().flatten().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MpcConfig;

    fn reference_prefix(items: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        items
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    #[test]
    fn matches_sequential_scan() {
        let items: Vec<u64> = (0..500).map(|i| (i * 7 + 3) % 23).collect();
        let c = Cluster::from_items(MpcConfig::lenient(8, 100_000), items).unwrap();
        // The scan follows the cluster's global order (machine, position),
        // which `from_items` chose; snapshot it as the reference order.
        let cluster_order: Vec<u64> = c.iter_items().copied().collect();
        let expect = reference_prefix(&cluster_order);
        let c = prefix_sums(c, |&x| x).unwrap();
        let (got, ledger) = c.into_items();
        let got_items: Vec<u64> = got.iter().map(|&(x, _)| x).collect();
        let got_prefix: Vec<u64> = got.iter().map(|&(_, s)| s).collect();
        assert_eq!(got_items, cluster_order, "item order preserved");
        assert_eq!(got_prefix, expect);
        assert_eq!(ledger.rounds, 2, "O(1)-round claim");
    }

    #[test]
    fn single_machine_zero_rounds() {
        let c = Cluster::from_items(MpcConfig::lenient(1, 10_000), vec![5u64, 1, 2]).unwrap();
        let c = prefix_sums(c, |&x| x).unwrap();
        let (got, ledger) = c.into_items();
        assert_eq!(got, vec![(5, 5), (1, 6), (2, 8)]);
        assert_eq!(ledger.rounds, 0);
    }

    #[test]
    fn zero_weights_and_empty_machines() {
        // More machines than items: several machines hold nothing.
        let c = Cluster::from_items(MpcConfig::lenient(8, 10_000), vec![1u64, 0, 4]).unwrap();
        let c = prefix_sums(c, |&x| x).unwrap();
        let (got, _) = c.into_items();
        assert_eq!(got, vec![(1, 1), (0, 1), (4, 5)]);
    }

    #[test]
    fn unit_weights_give_ranks() {
        let items: Vec<u32> = (0..100).rev().collect();
        let c = Cluster::from_items(MpcConfig::lenient(4, 100_000), items).unwrap();
        let c = prefix_sums(c, |_| 1).unwrap();
        for (rank0, (_, rank)) in c.iter_items().enumerate() {
            assert_eq!(*rank, rank0 as u64 + 1);
        }
    }

    #[test]
    fn global_sum_matches() {
        let items: Vec<u64> = (1..=100).collect();
        let mut c = Cluster::from_items(MpcConfig::lenient(5, 100_000), items).unwrap();
        assert_eq!(global_sum(&mut c, |&x| x).unwrap(), 5050);
        assert_eq!(c.ledger().rounds, 1);
    }

    #[test]
    fn strict_space_accounting_passes_in_regime() {
        // 256 items over 16 machines with S = 64 words: the collect/scatter
        // fan-in is 16 ≤ S, so strict mode must pass.
        let items: Vec<u64> = (0..256).collect();
        let c = Cluster::from_items(MpcConfig::strict(16, 64), items).unwrap();
        let c = prefix_sums(c, |&x| x).unwrap();
        assert_eq!(c.total_items(), 256);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let items: Vec<u64> = (0..300).map(|i| i % 13).collect();
            let c = Cluster::from_items(MpcConfig::lenient(6, 100_000), items).unwrap();
            let (out, _) = prefix_sums(c, |&x| x).unwrap().into_items();
            out
        };
        assert_eq!(run(), run());
    }
}

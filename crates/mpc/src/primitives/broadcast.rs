//! Broadcast a small value to every machine via a fan-out tree.
//!
//! With per-machine space `S`, one machine can forward a `w`-word value to
//! at most `f = max(2, S / w)` other machines per round, so reaching `N`
//! machines takes `⌈log_f N⌉` rounds. In the sublinear regime
//! (`S = n^α`, `N = O(n^{1−α})`) this is the `O(1/α) = O(1)` rounds the
//! paper's accounting assumes. The simulation clones the value; the ledger
//! is charged the tree's true round count and word volume.

use crate::cluster::Cluster;
use crate::error::MpcError;
use crate::ledger::RoundRecord;
use crate::words::Words;

/// Broadcast `value` (resident on one machine) to all machines, charging
/// the tree cost. Returns the per-machine copies.
pub fn broadcast_value<T, V>(cluster: &mut Cluster<T>, value: &V) -> Result<Vec<V>, MpcError>
where
    T: Words + Send + Sync,
    V: Words + Clone,
{
    let p = cluster.config().machines;
    let s = cluster.config().space_words;
    let w = value.words().max(1);

    if p > 1 {
        let fan_out = (s / w).max(2);
        // Tree rounds: informed machines multiply by (fan_out + 1) per round.
        let mut informed: u64 = 1;
        while informed < p as u64 {
            let newly = (informed * fan_out as u64).min(p as u64 - informed);
            let words_moved = newly * w as u64;
            // Per-machine send this round ≤ fan_out · w ≤ S by construction;
            // receive = w.
            cluster.charge_round(RoundRecord {
                words_moved,
                max_sent: (fan_out * w).min(newly as usize * w),
                max_received: w,
                max_storage: 0,
                total_storage: 0,
                label: "broadcast",
            });
            informed += newly;
        }
    }
    Ok(vec![value.clone(); p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MpcConfig;

    #[test]
    fn single_round_when_fanout_covers() {
        let mut c = Cluster::from_items(MpcConfig::lenient(8, 1000), (0u32..8).collect()).unwrap();
        let copies = broadcast_value(&mut c, &42u64).unwrap();
        assert_eq!(copies, vec![42u64; 8]);
        // fan-out = 1000 ≥ 7, one round.
        assert_eq!(c.ledger().rounds, 1);
        assert_eq!(c.ledger().rounds_labeled("broadcast"), 1);
    }

    #[test]
    fn tree_rounds_when_space_small() {
        // S = 2, value 1 word → fan-out 2: informed 1→3→9→27→64.
        let mut c = Cluster::from_items(MpcConfig::lenient(64, 2), vec![0u32]).unwrap();
        let _ = broadcast_value(&mut c, &7u32).unwrap();
        assert_eq!(c.ledger().rounds, 4);
    }

    #[test]
    fn single_machine_is_free() {
        let mut c = Cluster::from_items(MpcConfig::lenient(1, 10), vec![0u32]).unwrap();
        let copies = broadcast_value(&mut c, &vec![1u32, 2, 3]).unwrap();
        assert_eq!(copies.len(), 1);
        assert_eq!(c.ledger().rounds, 0);
    }

    #[test]
    fn word_volume_accounts_all_copies() {
        let mut c = Cluster::from_items(MpcConfig::lenient(5, 100), vec![0u32]).unwrap();
        let v = vec![1u32, 2, 3]; // 4 words
        let _ = broadcast_value(&mut c, &v).unwrap();
        // 4 copies delivered × 4 words.
        assert_eq!(c.ledger().words_total, 16);
    }
}

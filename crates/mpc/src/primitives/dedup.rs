//! Distributed deduplication by key in `O(1)` rounds on top of sample
//! sort.
//!
//! After [`crate::primitives::sort::sort_by_key`] brings equal keys
//! together (possibly spanning machine boundaries), each machine dedups
//! locally and then the boundary pass removes the survivors whose key
//! already occurs on an earlier machine: every machine reports its last
//! key to machine 0, machine 0 tells each machine the last key held by its
//! nearest non-empty predecessor, and machines drop their leading run if
//! it matches. Duplicate runs spanning any number of machines are handled
//! because a machine that loses *all* its items still reported the
//! offending key forward.
//!
//! Used by the graph-loading path (edge lists with repeats) and by the
//! E-suite's distinct-count diagnostics.

use crate::cluster::Cluster;
use crate::error::MpcError;
use crate::primitives::sort::sort_by_key;
use crate::words::Words;

/// Globally sort by `key` and keep exactly one item per distinct key (the
/// first in sorted order). Costs the sample-sort rounds plus two boundary
/// rounds.
pub fn dedup_by_key<T, K, F>(cluster: Cluster<T>, key: F) -> Result<Cluster<T>, MpcError>
where
    T: Words + Send + Sync,
    K: Ord + Clone + Words + Send + Sync,
    F: Fn(&T) -> K + Sync + Copy,
{
    let sorted = sort_by_key(cluster, key)?;
    dedup_sorted_by_key(sorted, key)
}

/// The dedup pass alone, for clusters already globally sorted by `key`.
///
/// # Panics
/// Debug builds assert the input is globally sorted.
pub fn dedup_sorted_by_key<T, K, F>(cluster: Cluster<T>, key: F) -> Result<Cluster<T>, MpcError>
where
    T: Words + Send + Sync,
    K: Ord + Clone + Words + Send + Sync,
    F: Fn(&T) -> K + Sync + Copy,
{
    debug_assert!(crate::primitives::sort::is_globally_sorted(&cluster, key));
    let p = cluster.n_machines();

    // Local dedup (keys are adjacent after the sort).
    let mut cluster = cluster.map_local("dedup-local", move |_, items| {
        let mut out: Vec<T> = Vec::with_capacity(items.len());
        for it in items {
            if out.last().map(key) != Some(key(&it)) {
                out.push(it);
            }
        }
        out
    })?;
    if p == 1 {
        return Ok(cluster);
    }

    // Boundary round 1: every non-empty machine reports (machine, last key)
    // to machine 0.
    let mut lasts_out: Vec<Vec<(usize, (u64, K))>> = Vec::with_capacity(p);
    for m in 0..p {
        let items = cluster.machine(m);
        lasts_out.push(match items.last() {
            Some(it) => vec![(0usize, (m as u64, key(it)))],
            None => Vec::new(),
        });
    }
    let lasts_in = cluster.raw_exchange("dedup-collect", lasts_out)?;
    let mut lasts: Vec<(u64, K)> = lasts_in.into_iter().flatten().collect();
    lasts.sort_by_key(|&(m, _)| m);

    // Machine 0 computes, for each machine, the last key of its nearest
    // non-empty predecessor.
    let mut pred_out: Vec<Vec<(usize, K)>> = vec![Vec::new(); p];
    let mut prev: Option<K> = None;
    let mut lasts_iter = lasts.into_iter().peekable();
    for m in 0..p {
        if let Some(k) = prev.clone() {
            pred_out[0].push((m, k));
        }
        if let Some(&(lm, _)) = lasts_iter.peek() {
            if lm as usize == m {
                prev = Some(lasts_iter.next().unwrap().1);
            }
        }
    }
    // Boundary round 2: scatter predecessor keys from machine 0.
    let pred_in = cluster.raw_exchange("dedup-scatter", pred_out)?;
    let preds: Vec<Option<K>> = pred_in
        .into_iter()
        .map(|msgs| msgs.into_iter().next())
        .collect();

    cluster.map_local("dedup-boundary", move |m, items| match &preds[m] {
        None => items,
        Some(boundary) => items
            .into_iter()
            .skip_while(|it| key(it) == *boundary)
            .collect(),
    })
}

/// Number of distinct keys across the cluster (consumes the cluster).
pub fn count_distinct<T, K, F>(cluster: Cluster<T>, key: F) -> Result<u64, MpcError>
where
    T: Words + Send + Sync,
    K: Ord + Clone + Words + Send + Sync,
    F: Fn(&T) -> K + Sync + Copy,
{
    Ok(dedup_by_key(cluster, key)?.total_items() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MpcConfig;
    use std::collections::BTreeSet;

    fn check_dedup(items: Vec<u64>, machines: usize) {
        let expect: Vec<u64> = items
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let c = Cluster::from_items(MpcConfig::lenient(machines, 1_000_000), items).unwrap();
        let c = dedup_by_key(c, |&x| x).unwrap();
        let (got, _) = c.into_items();
        assert_eq!(got, expect);
    }

    #[test]
    fn removes_scattered_duplicates() {
        let items: Vec<u64> = (0..600).map(|i| (i * 48271) % 37).collect();
        check_dedup(items, 7);
    }

    #[test]
    fn all_identical_keys_leave_one() {
        check_dedup(vec![42; 500], 6);
    }

    #[test]
    fn already_unique_is_untouched() {
        check_dedup((0..200).collect(), 4);
    }

    #[test]
    fn run_spanning_many_machines() {
        // 300 copies of one key followed by a few unique ones on 8 machines:
        // after sorting, the duplicate run covers several whole machines.
        let mut items = vec![7u64; 300];
        items.extend([1, 2, 3]);
        check_dedup(items, 8);
    }

    #[test]
    fn empty_input() {
        check_dedup(Vec::new(), 4);
    }

    #[test]
    fn single_machine() {
        check_dedup(vec![5, 5, 1, 3, 3, 3], 1);
    }

    #[test]
    fn compound_items_keep_first_per_key() {
        // Items (key, payload): exactly one survivor per key.
        let items: Vec<(u32, u32)> = (0..300).map(|i| ((i % 10) as u32, i as u32)).collect();
        let c = Cluster::from_items(MpcConfig::lenient(5, 1_000_000), items).unwrap();
        let c = dedup_by_key(c, |&(k, _)| k).unwrap();
        let (got, _) = c.into_items();
        assert_eq!(got.len(), 10);
        let keys: Vec<u32> = got.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn count_distinct_matches_reference() {
        let items: Vec<u64> = (0..500).map(|i| i % 91).collect();
        let c = Cluster::from_items(MpcConfig::lenient(6, 1_000_000), items).unwrap();
        assert_eq!(count_distinct(c, |&x| x).unwrap(), 91);
    }

    #[test]
    fn constant_extra_rounds_over_sort() {
        let items: Vec<u64> = (0..400).map(|i| i % 50).collect();
        let sort_rounds = {
            let c = Cluster::from_items(MpcConfig::lenient(6, 1_000_000), items.clone()).unwrap();
            sort_by_key(c, |&x| x).unwrap().ledger().rounds
        };
        let dedup_rounds = {
            let c = Cluster::from_items(MpcConfig::lenient(6, 1_000_000), items).unwrap();
            dedup_by_key(c, |&x| x).unwrap().ledger().rounds
        };
        assert_eq!(dedup_rounds, sort_rounds + 2, "exactly two boundary rounds");
    }
}

//! Aggregate-by-key: the MPC reduce.
//!
//! Each machine first *combines locally* (the MapReduce combiner trick —
//! without it a heavy key would exceed the receive budget), then keys are
//! hashed to a home machine and combined again. One communication round.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::cluster::Cluster;
use crate::error::MpcError;
use crate::words::Words;

fn home_of<K: Hash>(key: &K, p: usize) -> usize {
    // FNV-style stand-alone hash: stable across platforms and runs
    // (std's SipHash is randomly keyed per process, which would break
    // replay determinism).
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    (h.finish() % p as u64) as usize
}

/// Reduce a cluster of `(key, value)` pairs to one pair per key, combining
/// values with `combine`. Output: each key lives on its hash-home machine,
/// pairs sorted by key within each machine (for determinism).
pub fn aggregate_by_key<K, V, F>(
    cluster: Cluster<(K, V)>,
    combine: F,
) -> Result<Cluster<(K, V)>, MpcError>
where
    K: Words + Hash + Eq + Ord + Clone + Send + Sync,
    V: Words + Send + Sync,
    F: Fn(V, V) -> V + Sync,
{
    let p = cluster.n_machines();
    let combined = cluster.exchange_multi("aggregate", |_, items| {
        // Local combine before shipping.
        let mut local: HashMap<K, V> = HashMap::new();
        for (k, v) in items {
            match local.remove(&k) {
                Some(acc) => {
                    let merged = combine(acc, v);
                    local.insert(k, merged);
                }
                None => {
                    local.insert(k, v);
                }
            }
        }
        local
            .into_iter()
            .map(|(k, v)| (home_of(&k, p), (k, v)))
            .collect()
    })?;
    combined.map_local("aggregate-merge", |_, items| {
        let mut local: HashMap<K, V> = HashMap::new();
        for (k, v) in items {
            match local.remove(&k) {
                Some(acc) => {
                    let merged = combine(acc, v);
                    local.insert(k, merged);
                }
                None => {
                    local.insert(k, v);
                }
            }
        }
        let mut out: Vec<(K, V)> = local.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MpcConfig;

    #[test]
    fn sums_by_key() {
        let pairs: Vec<(u32, u64)> = (0u32..100).map(|i| (i % 7, 1u64)).collect();
        let c = Cluster::from_items(MpcConfig::lenient(4, 10_000), pairs).unwrap();
        let c = aggregate_by_key(c, |a, b| a + b).unwrap();
        assert_eq!(c.ledger().rounds, 1);
        let (mut items, _) = c.into_items();
        items.sort();
        let expect: Vec<(u32, u64)> = (0u32..7)
            .map(|k| (k, (100 / 7 + usize::from(k < 100 % 7)) as u64))
            .collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn each_key_on_one_machine() {
        let pairs: Vec<(u32, u64)> = (0u32..50).map(|i| (i % 5, i as u64)).collect();
        let c = Cluster::from_items(MpcConfig::lenient(3, 10_000), pairs).unwrap();
        let c = aggregate_by_key(c, |a, b| a + b).unwrap();
        let mut seen = std::collections::HashMap::new();
        for m in 0..c.n_machines() {
            for (k, _) in c.machine(m) {
                assert!(seen.insert(*k, m).is_none(), "key {k} on two machines");
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn local_combine_tames_heavy_keys() {
        // 1000 copies of one key with S = 64: without local combining the
        // home machine would receive 2000 words; with it, ≤ p pairs arrive.
        let pairs: Vec<(u32, u64)> = (0..1000).map(|_| (1u32, 1u64)).collect();
        let c = Cluster::from_items(MpcConfig::lenient(4, 64), pairs).unwrap();
        // lenient construction (storage 500 > 64 would fail strict), but
        // verify the *communication* stayed within a strict budget:
        let c = aggregate_by_key(c, |a, b| a + b).unwrap();
        assert!(
            c.ledger().peak_round_io <= 16,
            "io = {}",
            c.ledger().peak_round_io
        );
        let (items, _) = c.into_items();
        assert_eq!(items, vec![(1u32, 1000u64)]);
    }

    #[test]
    fn deterministic_output() {
        let run = || {
            let pairs: Vec<(u32, u64)> = (0u32..200).map(|i| (i % 13, i as u64)).collect();
            let c = Cluster::from_items(MpcConfig::lenient(5, 100_000), pairs).unwrap();
            let c = aggregate_by_key(c, |a, b| a + b).unwrap();
            (0..c.n_machines())
                .map(|m| c.machine(m).to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

//! Standard MPC primitives (paper §5: "standard primitives such as graph
//! exponentiation and sorting, which are by now standard in the MPC
//! literature").
//!
//! Each primitive charges its true communication cost to the cluster's
//! [`crate::Ledger`]:
//!
//! | primitive | rounds |
//! |---|---|
//! | [`sort::sort_by_key`] | 2 + broadcast (sample sort) |
//! | [`aggregate::aggregate_by_key`] | 1 (with local combining) |
//! | [`broadcast::broadcast_value`] | `⌈log_f N⌉` for fan-out `f = S / |v|` |
//! | [`ball::grow_balls`] | `2⌈log₂ r⌉` (graph exponentiation) |
//! | [`prefix::prefix_sums`] | 2 (reduce + scatter) |
//! | [`dedup::dedup_by_key`] | sort + 2 boundary rounds |

pub mod aggregate;
pub mod ball;
pub mod broadcast;
pub mod dedup;
pub mod prefix;
pub mod sort;

pub use aggregate::aggregate_by_key;
pub use ball::{grow_balls, Ball, BallInput};
pub use broadcast::broadcast_value;
pub use dedup::{count_distinct, dedup_by_key};
pub use prefix::{global_sum, prefix_sums};
pub use sort::sort_by_key;

//! Graph exponentiation: collecting radius-`r` balls in `O(log r)` rounds.
//!
//! The doubling technique of Lenzen–Wattenhofer \[LW10\], the engine of the
//! paper's §3.2.1: if every vertex knows its radius-`r` ball, one
//! request/reply exchange pair yields the radius-`2r` ball
//! (`B_{2r}(v) = ∪_{w ∈ B_r(v)} B_r(w)`). The paper uses it to collect the
//! `B`-hop neighborhoods of the *sampled* communication graph `H` so that a
//! whole phase of `B` LOCAL rounds runs without communication (§5).
//!
//! Radii reached are powers of two; [`grow_balls`] grows to the smallest
//! power of two ≥ the requested radius (a superset ball is always safe for
//! simulation). Cost: `2⌈log₂ r⌉` exchange rounds after homing.

use std::collections::HashMap;

use crate::cluster::{Cluster, MpcConfig};
use crate::error::MpcError;
use crate::ledger::Ledger;
use crate::words::Words;

/// Input adjacency record: one per vertex, on any machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallInput {
    /// The vertex id (global, dense).
    pub vertex: u32,
    /// Its neighbors in the (sampled) communication graph.
    pub neighbors: Vec<u32>,
}

impl Words for BallInput {
    fn words(&self) -> usize {
        1 + self.neighbors.words()
    }
}

/// A collected ball.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ball {
    /// The center vertex.
    pub center: u32,
    /// Radius actually reached (smallest power of two ≥ requested; 0 or 1
    /// for trivial requests).
    pub radius: u32,
    /// All vertices at distance `1..=radius` from the center, sorted,
    /// excluding the center itself.
    pub members: Vec<u32>,
}

impl Words for Ball {
    fn words(&self) -> usize {
        2 + self.members.words()
    }
}

fn home(v: u32, p: usize) -> usize {
    v as usize % p
}

/// Outgoing reply messages per machine: `(destination, (requester, ball))`.
type ReplyBatch = Vec<(usize, (u32, Vec<u32>))>;

/// Grow radius-`radius` balls around every vertex of the graph given by
/// `adjacency`, on a cluster described by `config`.
///
/// Vertices are homed by `v mod machines`. Returns the balls (sorted by
/// center) and the accounting ledger. Fails in strict mode if any machine's
/// ball storage or per-round I/O exceeds `S` — which is precisely the
/// regime check behind eq. (4) in the paper.
pub fn grow_balls(
    config: MpcConfig,
    adjacency: Vec<BallInput>,
    radius: u32,
) -> Result<(Vec<Ball>, Ledger), MpcError> {
    let p = config.machines;
    let cluster = Cluster::from_items(config, adjacency)?;
    // One shuffle to home every vertex record (labeled separately from the
    // exponentiation rounds).
    let cluster = cluster.exchange_by("ball-home", |b| home(b.vertex, p))?;

    // Radius-1 balls are the (deduplicated) adjacency lists.
    let mut cluster = cluster.map_local("ball-init", |_, items| {
        items
            .into_iter()
            .map(|b| {
                let mut members = b.neighbors;
                members.sort_unstable();
                members.dedup();
                members.retain(|&w| w != b.vertex);
                Ball {
                    center: b.vertex,
                    radius: 1,
                    members,
                }
            })
            .collect::<Vec<Ball>>()
    })?;

    if radius == 0 {
        cluster = cluster.map_local("ball-zero", |_, items| {
            items
                .into_iter()
                .map(|b| Ball {
                    center: b.center,
                    radius: 0,
                    members: Vec::new(),
                })
                .collect::<Vec<Ball>>()
        })?;
        return finish(cluster);
    }

    let mut r = 1u32;
    while r < radius {
        // Request phase: for each ball center v and member w, ask w's home
        // machine for B_r(w). Message: (w, v).
        let mut requests: Vec<Vec<(usize, (u32, u32))>> = Vec::with_capacity(p);
        for m in 0..p {
            let mut out = Vec::new();
            for ball in cluster.machine(m) {
                for &w in &ball.members {
                    out.push((home(w, p), (w, ball.center)));
                }
            }
            requests.push(out);
        }
        let requests_in = cluster.raw_exchange("ball-request", requests)?;

        // Reply phase: the machine holding w answers with (v, B_r(w)).
        let mut replies: Vec<ReplyBatch> = Vec::with_capacity(p);
        for (m, reqs) in requests_in.iter().enumerate() {
            let index: HashMap<u32, &Vec<u32>> = cluster
                .machine(m)
                .iter()
                .map(|b| (b.center, &b.members))
                .collect();
            let mut out = Vec::with_capacity(reqs.len());
            for &(w, v) in reqs {
                let members = index
                    .get(&w)
                    .expect("request routed to w's home must find w");
                out.push((home(v, p), (v, (*members).clone())));
            }
            replies.push(out);
        }
        let replies_in = cluster.raw_exchange("ball-reply", replies)?;

        // Merge phase (local): B_{2r}(v) = B_r(v) ∪ ∪_{w ∈ B_r(v)} B_r(w).
        let extras: Vec<HashMap<u32, Vec<u32>>> = replies_in
            .into_iter()
            .map(|reply_list| {
                let mut per_center: HashMap<u32, Vec<u32>> = HashMap::new();
                for (v, members) in reply_list {
                    per_center.entry(v).or_default().extend(members);
                }
                per_center
            })
            .collect();
        let new_r = r * 2;
        cluster = cluster.map_local("ball-merge", |m, balls| {
            let extra = &extras[m];
            balls
                .into_iter()
                .map(|mut b| {
                    if let Some(ext) = extra.get(&b.center) {
                        b.members.extend(ext.iter().copied());
                    }
                    b.members.sort_unstable();
                    b.members.dedup();
                    b.members.retain(|&w| w != b.center);
                    Ball {
                        center: b.center,
                        radius: new_r,
                        members: b.members,
                    }
                })
                .collect::<Vec<Ball>>()
        })?;
        r = new_r;
    }

    finish(cluster)
}

fn finish(cluster: Cluster<Ball>) -> Result<(Vec<Ball>, Ledger), MpcError> {
    let (mut balls, ledger) = cluster.into_items();
    balls.sort_by_key(|b| b.center);
    Ok((balls, ledger))
}

/// Sequential reference: the radius-`r` ball around `v` by BFS.
/// Used by tests and debug assertions.
pub fn bfs_ball(adjacency: &[BallInput], center: u32, radius: u32) -> Vec<u32> {
    let index: HashMap<u32, &Vec<u32>> =
        adjacency.iter().map(|b| (b.vertex, &b.neighbors)).collect();
    let mut dist: HashMap<u32, u32> = HashMap::new();
    dist.insert(center, 0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(center);
    while let Some(x) = queue.pop_front() {
        let d = dist[&x];
        if d == radius {
            continue;
        }
        if let Some(neighbors) = index.get(&x) {
            for &y in *neighbors {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(y) {
                    e.insert(d + 1);
                    queue.push_back(y);
                }
            }
        }
    }
    let mut members: Vec<u32> = dist.into_keys().filter(|&x| x != center).collect();
    members.sort_unstable();
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0–1–2–…–(n−1) as BallInput records.
    fn path(n: u32) -> Vec<BallInput> {
        (0..n)
            .map(|v| {
                let mut nb = Vec::new();
                if v > 0 {
                    nb.push(v - 1);
                }
                if v + 1 < n {
                    nb.push(v + 1);
                }
                BallInput {
                    vertex: v,
                    neighbors: nb,
                }
            })
            .collect()
    }

    /// A small random-ish graph via a fixed multiplier walk.
    fn scramble(n: u32, deg: u32) -> Vec<BallInput> {
        (0..n)
            .map(|v| BallInput {
                vertex: v,
                neighbors: (1..=deg).map(|i| (v * 31 + i * 17) % n).collect(),
            })
            .collect()
    }

    #[test]
    fn radius_one_is_adjacency() {
        let adj = path(6);
        let (balls, ledger) = grow_balls(MpcConfig::lenient(3, 100_000), adj.clone(), 1).unwrap();
        for b in &balls {
            assert_eq!(b.radius, 1);
            assert_eq!(
                b.members,
                bfs_ball(&adj, b.center, 1),
                "center {}",
                b.center
            );
        }
        // homing is the only exchange round.
        assert_eq!(ledger.rounds, 1);
    }

    #[test]
    fn doubling_matches_bfs_on_path() {
        let adj = path(20);
        for radius in [2u32, 4, 8] {
            let (balls, _) =
                grow_balls(MpcConfig::lenient(4, 1_000_000), adj.clone(), radius).unwrap();
            for b in &balls {
                assert_eq!(b.radius, radius); // powers of two already
                assert_eq!(
                    b.members,
                    bfs_ball(&adj, b.center, radius),
                    "center {} radius {radius}",
                    b.center
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        let adj = path(30);
        let (balls, _) = grow_balls(MpcConfig::lenient(4, 1_000_000), adj.clone(), 3).unwrap();
        for b in &balls {
            assert_eq!(b.radius, 4);
            assert_eq!(b.members, bfs_ball(&adj, b.center, 4));
        }
    }

    #[test]
    fn doubling_matches_bfs_on_scramble() {
        let adj = scramble(40, 3);
        let (balls, _) = grow_balls(MpcConfig::lenient(5, 10_000_000), adj.clone(), 4).unwrap();
        for b in &balls {
            assert_eq!(
                b.members,
                bfs_ball(&adj, b.center, 4),
                "center {}",
                b.center
            );
        }
    }

    #[test]
    fn round_count_is_two_log_r() {
        let adj = path(40);
        let (_, ledger) = grow_balls(MpcConfig::lenient(4, 1_000_000), adj, 8).unwrap();
        // 1 homing + 3 doublings × 2 exchanges.
        assert_eq!(ledger.rounds, 1 + 2 * 3);
        assert_eq!(ledger.rounds_labeled("ball-request"), 3);
        assert_eq!(ledger.rounds_labeled("ball-reply"), 3);
    }

    #[test]
    fn radius_zero() {
        let adj = path(5);
        let (balls, _) = grow_balls(MpcConfig::lenient(2, 100_000), adj, 0).unwrap();
        assert!(balls.iter().all(|b| b.members.is_empty() && b.radius == 0));
    }

    #[test]
    fn strict_space_violation_surfaces() {
        // Dense graph + tiny S: the reply volume must blow the budget.
        let adj = scramble(60, 10);
        let err = grow_balls(MpcConfig::strict(4, 64), adj, 4);
        assert!(matches!(err, Err(MpcError::SpaceExceeded { .. })));
    }

    #[test]
    fn deterministic() {
        let adj = scramble(30, 3);
        let a = grow_balls(MpcConfig::lenient(3, 10_000_000), adj.clone(), 4).unwrap();
        let b = grow_balls(MpcConfig::lenient(3, 10_000_000), adj, 4).unwrap();
        assert_eq!(a.0, b.0);
    }
}

//! Distributed sample sort: the `O(1)`-round MPC sort of
//! Goodrich–Sitchinava–Zhang, in the form every MPC paper builds on.
//!
//! 1. sort locally (0 rounds);
//! 2. every machine sends `p − 1` evenly spaced local samples to machine 0
//!    (1 round);
//! 3. machine 0 picks `p − 1` global splitters, broadcast (tree rounds);
//! 4. items are routed by splitter bucket (1 round) and sorted locally.
//!
//! After the call, machine `i`'s items are sorted and all ≤ machine
//! `i + 1`'s (global sort order across machines).

use crate::cluster::Cluster;
use crate::error::MpcError;
use crate::primitives::broadcast::broadcast_value;
use crate::words::Words;

/// Sort the cluster's items by `key`. Keys must be cheap to clone; ties are
/// broken by the items' pre-sort (machine, position) order being folded
/// into the local stable sorts, which makes the result deterministic.
pub fn sort_by_key<T, K, F>(cluster: Cluster<T>, key: F) -> Result<Cluster<T>, MpcError>
where
    T: Words + Send + Sync,
    K: Ord + Clone + Words + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    let p = cluster.n_machines();
    if p == 1 {
        return cluster.map_local("sort-local", |_, mut items| {
            items.sort_by_key(|a| key(a));
            items
        });
    }

    // Step 1+2: local sort, then ship samples to machine 0.
    let mut cluster = cluster.map_local("sort-local", |_, mut items| {
        items.sort_by_key(|a| key(a));
        items
    })?;

    let samples_per_machine = p - 1;
    let mut sample_out: Vec<Vec<(usize, K)>> = Vec::with_capacity(p);
    for m in 0..p {
        let items = cluster.machine(m);
        let mut out = Vec::new();
        if !items.is_empty() {
            for j in 1..=samples_per_machine {
                let idx = (j * items.len()) / (samples_per_machine + 1);
                let idx = idx.min(items.len() - 1);
                out.push((0usize, key(&items[idx])));
            }
        }
        sample_out.push(out);
    }
    let samples_in = cluster.raw_exchange("sort-sample", sample_out)?;

    // Step 3: machine 0 computes global splitters.
    let mut all_samples: Vec<K> = samples_in.into_iter().flatten().collect();
    all_samples.sort();
    let mut splitters: Vec<K> = Vec::with_capacity(p - 1);
    if !all_samples.is_empty() {
        for j in 1..p {
            let idx = (j * all_samples.len()) / p;
            splitters.push(all_samples[idx.min(all_samples.len() - 1)].clone());
        }
    }
    let splitters = broadcast_value(&mut cluster, &splitters)?
        .pop()
        .expect("at least one machine");

    // Step 4: route by bucket, then local sort.
    let routed = cluster.exchange_multi("sort-route", |_, items| {
        items
            .into_iter()
            .map(|it| {
                let k = key(&it);
                // First splitter > k determines the bucket.
                let bucket = splitters.partition_point(|s| *s <= k);
                (bucket.min(p - 1), it)
            })
            .collect()
    })?;
    routed.map_local("sort-local", |_, mut items| {
        items.sort_by_key(|a| key(a));
        items
    })
}

/// Check the global sort invariant (tests and debug assertions).
pub fn is_globally_sorted<T, K, F>(cluster: &Cluster<T>, key: F) -> bool
where
    T: Words + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut last: Option<K> = None;
    for m in 0..cluster.n_machines() {
        for item in cluster.machine(m) {
            let k = key(item);
            if let Some(prev) = &last {
                if *prev > k {
                    return false;
                }
            }
            last = Some(k);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MpcConfig;

    #[test]
    fn sorts_scattered_integers() {
        let items: Vec<u32> = (0..500)
            .map(|i| (i * 2654435761u64 % 1000) as u32)
            .collect();
        let mut expect = items.clone();
        expect.sort_unstable();
        let c = Cluster::from_items(MpcConfig::lenient(8, 100_000), items).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        assert!(is_globally_sorted(&c, |&x| x));
        let (got, ledger) = c.into_items();
        assert_eq!(got, expect);
        // Rounds: sample (1) + broadcast (≥1) + route (1).
        assert!(
            ledger.rounds >= 3 && ledger.rounds <= 6,
            "rounds = {}",
            ledger.rounds
        );
    }

    #[test]
    fn single_machine_sort() {
        let c = Cluster::from_items(MpcConfig::lenient(1, 10_000), vec![3u32, 1, 2]).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        let (got, ledger) = c.into_items();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(ledger.rounds, 0);
    }

    #[test]
    fn skewed_input_stays_balanced() {
        // Highly duplicated keys: buckets can't be perfect, but no machine
        // should end up with everything (sanity bound: ≤ 70%).
        let items: Vec<u32> = (0..1000).map(|i| (i % 10) as u32).collect();
        let c = Cluster::from_items(MpcConfig::lenient(4, 1_000_000), items).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        assert!(is_globally_sorted(&c, |&x| x));
        let max_m = (0..4).map(|m| c.machine(m).len()).max().unwrap();
        assert!(max_m <= 700, "machine holds {max_m} of 1000");
    }

    #[test]
    fn sorts_compound_items() {
        let items: Vec<(u32, u32)> = (0..100).map(|i| ((100 - i) as u32, i as u32)).collect();
        let c = Cluster::from_items(MpcConfig::lenient(3, 100_000), items).unwrap();
        let c = sort_by_key(c, |&(a, _)| a).unwrap();
        assert!(is_globally_sorted(&c, |&(a, _)| a));
        let (got, _) = c.into_items();
        assert_eq!(got.first(), Some(&(1u32, 99u32)));
        assert_eq!(got.last(), Some(&(100u32, 0u32)));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let c = Cluster::from_items(MpcConfig::lenient(4, 1000), Vec::<u32>::new()).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        assert_eq!(c.total_items(), 0);

        let c = Cluster::from_items(MpcConfig::lenient(4, 1000), vec![9u32]).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        let (got, _) = c.into_items();
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let items: Vec<u64> = (0..300).map(|i| (i * 48271) % 97).collect();
            let c = Cluster::from_items(MpcConfig::lenient(5, 100_000), items).unwrap();
            let c = sort_by_key(c, |&x| x).unwrap();
            (0..5).map(|m| c.machine(m).to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

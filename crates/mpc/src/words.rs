//! Item sizing: everything stored or shipped in the cluster is measured in
//! machine words (the unit of the MPC space parameter `S`).

/// Size of a value in machine words. A "word" is the unit `S` is expressed
/// in (`O(log n)` bits in the theory; 8 bytes here).
pub trait Words {
    /// Number of words this value occupies.
    fn words(&self) -> usize;
}

macro_rules! one_word {
    ($($t:ty),*) => {
        $(impl Words for $t {
            #[inline]
            fn words(&self) -> usize { 1 }
        })*
    };
}

one_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl Words for () {
    fn words(&self) -> usize {
        0
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: Words, B: Words, C: Words, D: Words> Words for (A, B, C, D) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<A: Words, B: Words, C: Words, D: Words, E: Words> Words for (A, B, C, D, E) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words() + self.4.words()
    }
}

impl<T: Words> Words for Option<T> {
    #[inline]
    fn words(&self) -> usize {
        1 + self.as_ref().map_or(0, Words::words)
    }
}

impl<T: Words> Words for Vec<T> {
    /// One word of length header plus the contents.
    #[inline]
    fn words(&self) -> usize {
        1 + self.iter().map(Words::words).sum::<usize>()
    }
}

impl<T: Words> Words for Box<T> {
    #[inline]
    fn words(&self) -> usize {
        (**self).words()
    }
}

/// Total size of a slice of items (no container header — used for machine
/// storage accounting where items are counted individually).
pub fn slice_words<T: Words>(items: &[T]) -> usize {
    items.iter().map(Words::words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u32.words(), 1);
        assert_eq!(5.0f64.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u64).words(), 2);
        assert_eq!((1u32, 2u64, 3.0f64).words(), 3);
        assert_eq!(Some(7u32).words(), 2);
        assert_eq!(None::<u32>.words(), 1);
        assert_eq!(vec![1u32, 2, 3].words(), 4);
        assert_eq!(Vec::<u32>::new().words(), 1);
        assert_eq!(vec![vec![1u32], vec![]].words(), 1 + 2 + 1);
    }

    #[test]
    fn slice_accounting() {
        let items = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(slice_words(&items), 4);
    }
}

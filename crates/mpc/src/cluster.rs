//! The machine pool: item storage, exchanges, and space enforcement.

use rayon::prelude::*;

use crate::error::{MpcError, SpaceKind};
use crate::ledger::{Ledger, RoundRecord};
use crate::words::{slice_words, Words};

/// Index of a machine in the cluster.
pub type MachineId = usize;

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpcConfig {
    /// Number of machines `N`.
    pub machines: usize,
    /// Per-machine space `S`, in words. In the sublinear regime `S = n^α`.
    pub space_words: usize,
    /// If `true`, any space violation aborts the computation with
    /// [`MpcError::SpaceExceeded`]; if `false`, violations are only
    /// recorded in the ledger peaks.
    pub strict: bool,
}

impl MpcConfig {
    /// A strict cluster with `machines` machines of `space_words` words.
    pub fn strict(machines: usize, space_words: usize) -> Self {
        MpcConfig {
            machines,
            space_words,
            strict: true,
        }
    }

    /// A lenient cluster: peaks are recorded but never enforced.
    pub fn lenient(machines: usize, space_words: usize) -> Self {
        MpcConfig {
            machines,
            space_words,
            strict: false,
        }
    }

    /// The standard sublinear-regime sizing for an input of `total_words`
    /// words: `S = ceil(total^α)`, with enough machines to hold
    /// `2 × total_words` (the factor-2 covers intermediate blowup).
    pub fn sublinear(total_words: usize, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "α ∈ (0, 1)");
        let space = (total_words as f64).powf(alpha).ceil() as usize;
        let space = space.max(16);
        let machines = (2 * total_words).div_ceil(space).max(1);
        MpcConfig::strict(machines, space)
    }
}

/// A simulated MPC cluster holding items of type `T`.
///
/// All bulk operations consume the cluster and return a new one (possibly
/// with a different item type), threading the [`Ledger`] through.
#[derive(Debug)]
pub struct Cluster<T> {
    config: MpcConfig,
    machines: Vec<Vec<T>>,
    /// Cached per-machine storage in words (kept in sync with `machines`).
    storage: Vec<usize>,
    ledger: Ledger,
}

impl<T: Words + Send + Sync> Cluster<T> {
    /// Build a cluster from a flat item list, distributed round-robin
    /// (the MPC model allows arbitrary initial partitioning at no cost).
    pub fn from_items(config: MpcConfig, items: Vec<T>) -> Result<Self, MpcError> {
        let p = config.machines;
        let mut machines: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            machines[i % p].push(item);
        }
        Cluster::from_partitioned(config, machines)
    }

    /// Build a cluster with an explicit initial partition.
    pub fn from_partitioned(config: MpcConfig, machines: Vec<Vec<T>>) -> Result<Self, MpcError> {
        assert_eq!(machines.len(), config.machines, "partition count");
        let storage: Vec<usize> = machines.par_iter().map(|m| slice_words(m)).collect();
        let mut cluster = Cluster {
            config,
            machines,
            storage,
            ledger: Ledger::default(),
        };
        cluster.observe_and_check_storage(0)?;
        Ok(cluster)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The accumulated accounting.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.config.machines
    }

    /// Items currently on machine `i`.
    pub fn machine(&self, i: MachineId) -> &[T] {
        &self.machines[i]
    }

    /// Total number of items across machines.
    pub fn total_items(&self) -> usize {
        self.machines.iter().map(Vec::len).sum()
    }

    /// Iterate all items (machine order, then insertion order) — for
    /// result collection and tests; a real cluster has no such operation.
    pub fn iter_items(&self) -> impl Iterator<Item = &T> {
        self.machines.iter().flatten()
    }

    /// Dissolve into the flat item list and the final ledger.
    pub fn into_items(self) -> (Vec<T>, Ledger) {
        (self.machines.into_iter().flatten().collect(), self.ledger)
    }

    /// Local computation on every machine — costs **zero** rounds. The
    /// closure receives the machine id and its items and returns the
    /// machine's new contents.
    pub fn map_local<U, F>(self, label: &'static str, f: F) -> Result<Cluster<U>, MpcError>
    where
        U: Words + Send + Sync,
        F: Fn(MachineId, Vec<T>) -> Vec<U> + Sync,
    {
        let Cluster {
            config,
            machines,
            mut ledger,
            ..
        } = self;
        let new_machines: Vec<Vec<U>> = machines
            .into_par_iter()
            .enumerate()
            .map(|(i, items)| f(i, items))
            .collect();
        let storage: Vec<usize> = new_machines.par_iter().map(|m| slice_words(m)).collect();
        let max_storage = storage.iter().copied().max().unwrap_or(0);
        let total_storage: u64 = storage.iter().map(|&s| s as u64).sum();
        ledger.observe_storage(max_storage, total_storage);
        let cluster = Cluster {
            config,
            machines: new_machines,
            storage,
            ledger,
        };
        cluster.check_storage(label)?;
        Ok(cluster)
    }

    /// One communication round: every machine maps its items to
    /// `(destination, item)` pairs; the runtime routes them, enforcing the
    /// per-round I/O and storage limits.
    pub fn exchange_multi<U, F>(mut self, label: &'static str, f: F) -> Result<Cluster<U>, MpcError>
    where
        U: Words + Send + Sync,
        F: Fn(MachineId, Vec<T>) -> Vec<(MachineId, U)> + Sync,
    {
        let machines = std::mem::take(&mut self.machines);
        let outgoing: Vec<Vec<(MachineId, U)>> = machines
            .into_par_iter()
            .enumerate()
            .map(|(i, items)| f(i, items))
            .collect();
        let new_machines = self.raw_exchange(label, outgoing)?;
        let storage: Vec<usize> = new_machines.par_iter().map(|m| slice_words(m)).collect();
        let cluster = Cluster {
            config: self.config,
            machines: new_machines,
            storage,
            ledger: self.ledger,
        };
        // raw_exchange recorded the round with receive-side sizes; storage
        // equals receive volume here, already checked. Re-check defensively.
        cluster.check_storage(label)?;
        Ok(cluster)
    }

    /// Route every item to `route(&item)`, keeping the item type.
    pub fn exchange_by<F>(self, label: &'static str, route: F) -> Result<Cluster<T>, MpcError>
    where
        F: Fn(&T) -> MachineId + Sync,
    {
        self.exchange_multi(label, |_, items| {
            items.into_iter().map(|it| (route(&it), it)).collect()
        })
    }

    /// In-place local computation on every machine — zero rounds.
    ///
    /// MPC charges only communication: a phase that moves no words between
    /// machines is free regardless of how much local CPU it burns, so this
    /// combinator never increments [`Ledger::rounds`]. The `label` is
    /// recorded in [`Ledger::local_steps`] (with the post-update storage
    /// peaks) so cost readouts can still attribute local phases.
    pub fn update_local<F>(&mut self, label: &'static str, f: F) -> Result<(), MpcError>
    where
        F: Fn(MachineId, &mut Vec<T>) + Sync,
    {
        self.machines
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, items)| f(i, items));
        self.storage = self.machines.par_iter().map(|m| slice_words(m)).collect();
        let max_storage = self.storage.iter().copied().max().unwrap_or(0);
        let total: u64 = self.storage.iter().map(|&s| s as u64).sum();
        // Local computation moves no words, so the MPC model charges no
        // communication round — but the step is still recorded (with its
        // storage peaks) so cost tables can attribute them.
        self.ledger.observe_local(label, max_storage, total);
        self.check_storage("update")
    }

    /// One communication round that keeps the items in place: every machine
    /// emits addressed messages derived from its items, the runtime routes
    /// them (with the usual I/O enforcement), and each machine merges the
    /// messages it received back into its items.
    ///
    /// This is the state-plus-messages pattern of vertex-centric MPC
    /// algorithms (records stay home; β values / group keys / ball records
    /// travel).
    pub fn side_channel<Msg, E, G>(
        &mut self,
        label: &'static str,
        emit: E,
        merge: G,
    ) -> Result<(), MpcError>
    where
        Msg: Words + Send + Sync,
        E: Fn(MachineId, &[T]) -> Vec<(MachineId, Msg)> + Sync,
        G: Fn(MachineId, &mut Vec<T>, Vec<Msg>) + Sync,
    {
        let outgoing: Vec<Vec<(MachineId, Msg)>> = self
            .machines
            .par_iter()
            .enumerate()
            .map(|(i, items)| emit(i, items))
            .collect();
        let inbound = self.raw_exchange(label, outgoing)?;
        self.machines
            .par_iter_mut()
            .zip(inbound.into_par_iter())
            .enumerate()
            .for_each(|(i, (items, msgs))| merge(i, items, msgs));
        self.storage = self.machines.par_iter().map(|m| slice_words(m)).collect();
        let max_storage = self.storage.iter().copied().max().unwrap_or(0);
        let total: u64 = self.storage.iter().map(|&s| s as u64).sum();
        self.ledger.observe_storage(max_storage, total);
        self.check_storage(label)
    }

    /// Absorb the ledger of a helper computation (e.g. a ball-growing
    /// sub-cluster) into this cluster's accounting.
    pub fn absorb_ledger(&mut self, other: &Ledger) {
        self.ledger.absorb(other);
    }

    /// Core routing step shared by [`Cluster::exchange_multi`] and the
    /// primitives: deliver pre-addressed messages (of *any* `Words` type —
    /// control traffic does not need to match the cluster's item type),
    /// charging exactly one round.
    pub(crate) fn raw_exchange<U: Words + Send + Sync>(
        &mut self,
        label: &'static str,
        outgoing: Vec<Vec<(MachineId, U)>>,
    ) -> Result<Vec<Vec<U>>, MpcError> {
        let p = self.config.machines;
        let round = self.ledger.rounds + 1;

        // Validate destinations and measure send volumes.
        let mut sent_words = vec![0usize; p];
        for (src, msgs) in outgoing.iter().enumerate() {
            for (dst, item) in msgs {
                if *dst >= p {
                    return Err(MpcError::BadRoute {
                        dest: *dst,
                        machines: p,
                    });
                }
                sent_words[src] += item.words();
            }
        }

        // Bucket per source, then transpose (pointer moves only).
        let bucketed: Vec<Vec<Vec<U>>> = outgoing
            .into_par_iter()
            .map(|msgs| {
                let mut buckets: Vec<Vec<U>> = (0..p).map(|_| Vec::new()).collect();
                for (dst, item) in msgs {
                    buckets[dst].push(item);
                }
                buckets
            })
            .collect();
        let mut inbound: Vec<Vec<U>> = (0..p).map(|_| Vec::new()).collect();
        for src_buckets in bucketed {
            for (dst, mut chunk) in src_buckets.into_iter().enumerate() {
                inbound[dst].append(&mut chunk);
            }
        }

        let recv_words: Vec<usize> = inbound.par_iter().map(|m| slice_words(m)).collect();
        let words_moved: u64 = sent_words.iter().map(|&w| w as u64).sum();
        let max_sent = sent_words.iter().copied().max().unwrap_or(0);
        let max_received = recv_words.iter().copied().max().unwrap_or(0);
        // Storage after this round is what landed (callers that retain other
        // state account for it via check_storage afterwards).
        let max_storage = max_received;
        let total_storage: u64 = recv_words.iter().map(|&w| w as u64).sum();

        self.ledger.record(RoundRecord {
            words_moved,
            max_sent,
            max_received,
            max_storage,
            total_storage,
            label,
        });

        if self.config.strict {
            let s = self.config.space_words;
            if let Some((m, &used)) = sent_words.iter().enumerate().find(|(_, &w)| w > s) {
                return Err(MpcError::SpaceExceeded {
                    round,
                    machine: m,
                    kind: SpaceKind::Send,
                    used,
                    limit: s,
                });
            }
            if let Some((m, &used)) = recv_words.iter().enumerate().find(|(_, &w)| w > s) {
                return Err(MpcError::SpaceExceeded {
                    round,
                    machine: m,
                    kind: SpaceKind::Receive,
                    used,
                    limit: s,
                });
            }
        }
        Ok(inbound)
    }

    fn observe_and_check_storage(&mut self, _round: usize) -> Result<(), MpcError> {
        let max_storage = self.storage.iter().copied().max().unwrap_or(0);
        let total: u64 = self.storage.iter().map(|&s| s as u64).sum();
        self.ledger.observe_storage(max_storage, total);
        self.check_storage("init")
    }

    fn check_storage(&self, _label: &'static str) -> Result<(), MpcError> {
        if !self.config.strict {
            return Ok(());
        }
        let s = self.config.space_words;
        if let Some((m, &used)) = self.storage.iter().enumerate().find(|(_, &w)| w > s) {
            return Err(MpcError::SpaceExceeded {
                round: self.ledger.rounds,
                machine: m,
                kind: SpaceKind::Storage,
                used,
                limit: s,
            });
        }
        Ok(())
    }

    /// Record extra rounds computed by a primitive that models its cost
    /// analytically (e.g. a broadcast tree collapses its fan-out rounds).
    pub(crate) fn charge_round(&mut self, rec: RoundRecord) {
        self.ledger.record(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_distribution() {
        let c = Cluster::from_items(MpcConfig::lenient(4, 100), (0u32..10).collect()).unwrap();
        assert_eq!(c.total_items(), 10);
        assert_eq!(c.machine(0), &[0, 4, 8]);
        assert_eq!(c.machine(1), &[1, 5, 9]);
        assert_eq!(c.machine(3), &[3, 7]);
        assert_eq!(c.ledger().rounds, 0);
    }

    #[test]
    fn exchange_by_costs_one_round() {
        let c = Cluster::from_items(MpcConfig::lenient(3, 1000), (0u32..30).collect()).unwrap();
        let c = c.exchange_by("mod3", |&x| (x % 3) as usize).unwrap();
        assert_eq!(c.ledger().rounds, 1);
        for m in 0..3 {
            assert!(c.machine(m).iter().all(|&x| x % 3 == m as u32));
        }
        assert_eq!(c.total_items(), 30);
        assert_eq!(c.ledger().words_total, 30);
    }

    #[test]
    fn map_local_costs_zero_rounds() {
        let c = Cluster::from_items(MpcConfig::lenient(2, 1000), (0u32..8).collect()).unwrap();
        let c = c
            .map_local("double", |_, items| {
                items.into_iter().map(|x| x * 2).collect::<Vec<u32>>()
            })
            .unwrap();
        assert_eq!(c.ledger().rounds, 0);
        let (mut items, _) = c.into_items();
        items.sort_unstable();
        assert_eq!(items, (0..8).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn strict_receive_limit_enforced() {
        // All 50 items (1 word each) routed to machine 0 with S = 20.
        let c = Cluster::from_items(MpcConfig::strict(5, 20), (0u32..50).collect()).unwrap();
        let err = c.exchange_by("funnel", |_| 0).unwrap_err();
        match err {
            MpcError::SpaceExceeded {
                machine,
                kind,
                used,
                limit,
                ..
            } => {
                assert_eq!(machine, 0);
                assert_eq!(kind, SpaceKind::Receive);
                assert_eq!(used, 50);
                assert_eq!(limit, 20);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn strict_send_limit_enforced() {
        // Storage fits (10 words ≤ S = 25) but a 5× message amplification
        // sends 50 words from machine 0 in one round.
        let machines = vec![
            (0u32..10).collect::<Vec<_>>(),
            vec![],
            vec![],
            vec![],
            vec![],
        ];
        let c = Cluster::from_partitioned(MpcConfig::strict(5, 25), machines).unwrap();
        let err = c
            .exchange_multi("amplify", |_, items| {
                items
                    .into_iter()
                    .flat_map(|x| (0..5usize).map(move |d| (d, x)))
                    .collect::<Vec<(usize, u32)>>()
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MpcError::SpaceExceeded {
                kind: SpaceKind::Send,
                machine: 0,
                used: 50,
                limit: 25,
                ..
            }
        ));
    }

    #[test]
    fn strict_storage_limit_enforced_at_construction() {
        let machines = vec![(0u32..30).collect::<Vec<_>>(), vec![], vec![]];
        let err = Cluster::from_partitioned(MpcConfig::strict(3, 25), machines).unwrap_err();
        assert!(matches!(
            err,
            MpcError::SpaceExceeded {
                kind: SpaceKind::Storage,
                ..
            }
        ));
    }

    #[test]
    fn bad_route_detected() {
        let c = Cluster::from_items(MpcConfig::lenient(2, 100), vec![1u32]).unwrap();
        let err = c.exchange_by("oops", |_| 7).unwrap_err();
        assert!(matches!(
            err,
            MpcError::BadRoute {
                dest: 7,
                machines: 2
            }
        ));
    }

    #[test]
    fn lenient_records_but_allows() {
        let c = Cluster::from_items(MpcConfig::lenient(5, 2), (0u32..50).collect()).unwrap();
        let c = c.exchange_by("funnel", |_| 0).unwrap();
        assert_eq!(c.machine(0).len(), 50);
        assert!(c.ledger().peak_round_io >= 50);
        assert!(c.ledger().peak_storage >= 50);
    }

    #[test]
    fn exchange_multi_changes_type() {
        let c = Cluster::from_items(MpcConfig::lenient(2, 1000), (0u32..6).collect()).unwrap();
        let c = c
            .exchange_multi("pairs", |src, items| {
                items
                    .into_iter()
                    .map(|x| ((x as usize) % 2, (x, src as u32)))
                    .collect::<Vec<(usize, (u32, u32))>>()
            })
            .unwrap();
        assert_eq!(c.total_items(), 6);
        assert!(c.machine(0).iter().all(|&(x, _)| x % 2 == 0));
    }

    #[test]
    fn sublinear_config_sizing() {
        let cfg = MpcConfig::sublinear(1_000_000, 0.5);
        assert_eq!(cfg.space_words, 1000);
        assert_eq!(cfg.machines, 2000);
        assert!(cfg.strict);
    }

    #[test]
    fn update_local_in_place() {
        let mut c = Cluster::from_items(MpcConfig::lenient(3, 1000), (0u32..9).collect()).unwrap();
        c.update_local("inc", |_, items| {
            for x in items.iter_mut() {
                *x += 1;
            }
        })
        .unwrap();
        assert_eq!(c.ledger().rounds, 0);
        assert_eq!(c.ledger().local_steps_labeled("inc"), 1);
        let (mut items, _) = c.into_items();
        items.sort_unstable();
        assert_eq!(items, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn side_channel_round_trip() {
        // Items stay put; each machine sends its item count to machine 0,
        // which accumulates the total into its first item.
        let mut c = Cluster::from_items(MpcConfig::lenient(4, 1000), (0u32..10).collect()).unwrap();
        c.side_channel(
            "census",
            |_, items| vec![(0usize, items.len() as u32)],
            |m, items, msgs| {
                if m == 0 {
                    let total: u32 = msgs.into_iter().sum();
                    items[0] = total;
                }
            },
        )
        .unwrap();
        assert_eq!(c.ledger().rounds, 1);
        assert_eq!(c.machine(0)[0], 10);
        assert_eq!(c.total_items(), 10);
    }

    #[test]
    fn side_channel_respects_strict_limits() {
        let mut c = Cluster::from_items(MpcConfig::strict(4, 8), (0u32..8).collect()).unwrap();
        // Every machine sends 8 words to machine 0 → receive 32 > S = 8.
        let err = c
            .side_channel(
                "flood",
                |_, _| (0..8).map(|i| (0usize, i as u32)).collect(),
                |_, _, _| {},
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MpcError::SpaceExceeded {
                kind: SpaceKind::Receive,
                ..
            }
        ));
    }

    #[test]
    fn determinism_across_thread_counts() {
        let run = || {
            let c =
                Cluster::from_items(MpcConfig::lenient(4, 10_000), (0u32..100).collect()).unwrap();
            let c = c.exchange_by("spread", |&x| (x as usize * 7) % 4).unwrap();
            let c = c
                .map_local("tag", |m, items| {
                    items
                        .into_iter()
                        .map(|x| (m as u32, x))
                        .collect::<Vec<(u32, u32)>>()
                })
                .unwrap();
            let (items, ledger) = c.into_items();
            (items, ledger.words_total)
        };
        let a = run();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let b = pool.install(run);
        assert_eq!(a, b);
    }
}

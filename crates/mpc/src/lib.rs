//! MPC-model simulator: machines, rounds, space accounting, and the
//! standard primitives the paper builds on.
//!
//! The Massively Parallel Computation model (paper §2.3) has `N` machines,
//! each with `S` words of memory, communicating in synchronous rounds; per
//! round a machine may send and receive at most `S` words. This crate
//! simulates that model *in process* while **measuring exactly the
//! quantities the paper's theorems bound**: communication rounds, per-round
//! machine I/O, per-machine storage, and total storage.
//!
//! * [`MpcConfig`] / [`Cluster`] — the machine pool. All data movement goes
//!   through [`Cluster::exchange_multi`], which costs one round and, in
//!   strict mode, *fails* (with [`MpcError::SpaceExceeded`]) whenever a
//!   machine would exceed its space budget — regime violations surface as
//!   structured errors rather than silently unrealistic simulations.
//! * [`Ledger`] — the round/word/space accounting the experiment tables
//!   print.
//! * [`primitives`] — distributed sample sort (`O(1)` rounds),
//!   aggregate-by-key, broadcast trees, and **graph exponentiation**
//!   (ball doubling in `O(log B)` rounds), i.e. the toolbox §5 of the paper
//!   refers to as "standard primitives … by now standard in the MPC
//!   literature".
//!
//! Rounds are executed with rayon across machines; results are
//! deterministic and independent of thread count.
//!
//! # Example
//!
//! ```
//! use sparse_alloc_mpc::{Cluster, MpcConfig};
//! use sparse_alloc_mpc::primitives::sort_by_key;
//!
//! // 4 machines, 1000 words each, strict enforcement.
//! let items: Vec<u32> = (0..100).rev().collect();
//! let cluster = Cluster::from_items(MpcConfig::strict(4, 1000), items).unwrap();
//!
//! // Distributed sample sort: O(1) communication rounds.
//! let sorted = sort_by_key(cluster, |&x| x).unwrap();
//! let rounds = sorted.ledger().rounds;
//! let (out, _) = sorted.into_items();
//! assert_eq!(out, (0..100).collect::<Vec<u32>>());
//! assert!(rounds <= 6);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod ledger;
pub mod primitives;
pub mod shard;
pub mod transport;
pub mod words;

pub use cluster::{Cluster, MachineId, MpcConfig};
pub use error::MpcError;
pub use ledger::Ledger;
pub use shard::{ShardManifest, ShardMap};
pub use transport::{Fault, Frame, Mesh, Peer, TransportError};
pub use words::Words;

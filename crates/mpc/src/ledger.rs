//! Round, communication, and space accounting.
//!
//! The quantities tracked here are *exactly* the quantities Theorem 10
//! bounds: communication rounds, per-machine space, and total space. The
//! experiment suite (E4) prints them directly.

/// Record of one communication round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Total words moved between machines this round.
    pub words_moved: u64,
    /// Max over machines of words sent.
    pub max_sent: usize,
    /// Max over machines of words received.
    pub max_received: usize,
    /// Max over machines of words stored after the round.
    pub max_storage: usize,
    /// Sum over machines of words stored after the round.
    pub total_storage: u64,
    /// Label of the operation that caused the round (for table readouts).
    pub label: &'static str,
}

/// Accumulated accounting across a cluster's lifetime.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Communication rounds so far.
    pub rounds: usize,
    /// Total words moved across all rounds.
    pub words_total: u64,
    /// Peak single-machine per-round I/O (max of sent, received).
    pub peak_round_io: usize,
    /// Peak single-machine storage observed after any round.
    pub peak_storage: usize,
    /// Peak total storage (sum across machines) observed after any round.
    pub peak_total_storage: u64,
    /// Per-round records, in order.
    pub history: Vec<RoundRecord>,
    /// Labels of local (round-free) computation phases, in order. Local
    /// phases move no words between machines, so the MPC model charges
    /// them zero rounds — but they still appear here so cost tables can
    /// attribute storage peaks to the step that caused them.
    pub local_steps: Vec<&'static str>,
}

impl Ledger {
    /// Fold one round's record into the running totals.
    pub fn record(&mut self, rec: RoundRecord) {
        self.rounds += 1;
        self.words_total += rec.words_moved;
        self.peak_round_io = self.peak_round_io.max(rec.max_sent).max(rec.max_received);
        self.peak_storage = self.peak_storage.max(rec.max_storage);
        self.peak_total_storage = self.peak_total_storage.max(rec.total_storage);
        self.history.push(rec);
    }

    /// Update the storage peaks without charging a round (local phases).
    pub fn observe_storage(&mut self, max_storage: usize, total_storage: u64) {
        self.peak_storage = self.peak_storage.max(max_storage);
        self.peak_total_storage = self.peak_total_storage.max(total_storage);
    }

    /// Record a labeled local computation phase: storage peaks are
    /// observed, `rounds` stays untouched (local work is free in MPC).
    pub fn observe_local(&mut self, label: &'static str, max_storage: usize, total_storage: u64) {
        self.local_steps.push(label);
        self.observe_storage(max_storage, total_storage);
    }

    /// Count of local phases whose label equals `label`.
    pub fn local_steps_labeled(&self, label: &str) -> usize {
        self.local_steps.iter().filter(|l| **l == label).count()
    }

    /// Count of rounds whose label equals `label`.
    pub fn rounds_labeled(&self, label: &str) -> usize {
        self.history.iter().filter(|r| r.label == label).count()
    }

    /// Merge another ledger's history after this one (used when an algorithm
    /// runs sub-clusters).
    pub fn absorb(&mut self, other: &Ledger) {
        for rec in &other.history {
            self.record(rec.clone());
        }
        self.local_steps.extend_from_slice(&other.local_steps);
        self.peak_storage = self.peak_storage.max(other.peak_storage);
        self.peak_total_storage = self.peak_total_storage.max(other.peak_total_storage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(words: u64, sent: usize, recv: usize, store: usize, label: &'static str) -> RoundRecord {
        RoundRecord {
            words_moved: words,
            max_sent: sent,
            max_received: recv,
            max_storage: store,
            total_storage: store as u64 * 4,
            label,
        }
    }

    #[test]
    fn accumulation() {
        let mut l = Ledger::default();
        l.record(rec(100, 30, 40, 50, "sort"));
        l.record(rec(200, 60, 20, 45, "exchange"));
        assert_eq!(l.rounds, 2);
        assert_eq!(l.words_total, 300);
        assert_eq!(l.peak_round_io, 60);
        assert_eq!(l.peak_storage, 50);
        assert_eq!(l.peak_total_storage, 200);
        assert_eq!(l.rounds_labeled("sort"), 1);
    }

    #[test]
    fn observe_storage_no_round() {
        let mut l = Ledger::default();
        l.observe_storage(70, 300);
        assert_eq!(l.rounds, 0);
        assert_eq!(l.peak_storage, 70);
    }

    #[test]
    fn local_steps_are_recorded_round_free() {
        let mut l = Ledger::default();
        l.observe_local("map", 10, 40);
        l.observe_local("map", 25, 90);
        l.observe_local("filter", 5, 20);
        assert_eq!(l.rounds, 0, "local phases never charge a round");
        assert_eq!(l.local_steps_labeled("map"), 2);
        assert_eq!(l.local_steps_labeled("filter"), 1);
        assert_eq!(l.peak_storage, 25);

        let mut outer = Ledger::default();
        outer.absorb(&l);
        assert_eq!(outer.local_steps_labeled("map"), 2);
        assert_eq!(outer.rounds, 0);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Ledger::default();
        a.record(rec(10, 1, 2, 3, "x"));
        let mut b = Ledger::default();
        b.record(rec(20, 9, 1, 1, "y"));
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.words_total, 30);
        assert_eq!(a.peak_round_io, 9);
    }
}

//! Round, communication, and space accounting.
//!
//! The quantities tracked here are *exactly* the quantities Theorem 10
//! bounds: communication rounds, per-machine space, and total space. The
//! experiment suite (E4) prints them directly.

/// Record of one communication round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Total words moved between machines this round.
    pub words_moved: u64,
    /// Max over machines of words sent.
    pub max_sent: usize,
    /// Max over machines of words received.
    pub max_received: usize,
    /// Max over machines of words stored after the round.
    pub max_storage: usize,
    /// Sum over machines of words stored after the round.
    pub total_storage: u64,
    /// Label of the operation that caused the round (for table readouts).
    pub label: &'static str,
}

/// Accumulated accounting across a cluster's lifetime.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Communication rounds so far.
    pub rounds: usize,
    /// Total words moved across all rounds.
    pub words_total: u64,
    /// Peak single-machine per-round I/O (max of sent, received).
    pub peak_round_io: usize,
    /// Peak single-machine storage observed after any round.
    pub peak_storage: usize,
    /// Peak total storage (sum across machines) observed after any round.
    pub peak_total_storage: u64,
    /// Per-round records, in order.
    pub history: Vec<RoundRecord>,
    /// Labels of local (round-free) computation phases, in order. Local
    /// phases move no words between machines, so the MPC model charges
    /// them zero rounds — but they still appear here so cost tables can
    /// attribute storage peaks to the step that caused them.
    pub local_steps: Vec<&'static str>,
    /// Roll-up threshold: `Some(n)` folds `history`/`local_steps` into
    /// per-label aggregates whenever either exceeds `n` entries, so a
    /// long-lived serve loop keeps O(labels) accounting state instead of
    /// one record per round forever. `None` (the default) keeps the full
    /// in-order history.
    rollup_after: Option<usize>,
    /// Per-label aggregates of rolled-up records (empty until a roll-up
    /// fires). Bounded by the number of distinct labels.
    rolled: Vec<LabelTotals>,
}

/// Per-label aggregate a roll-up folds old records into. Totals and
/// labeled counts are preserved exactly; only per-record order is given
/// up (the running peaks in [`Ledger`] never lived in `history`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelTotals {
    /// The round/local-step label.
    pub label: &'static str,
    /// Rounds rolled up under this label.
    pub rounds: usize,
    /// Words moved by those rounds.
    pub words_moved: u64,
    /// Local (round-free) steps rolled up under this label.
    pub local_steps: usize,
}

impl Ledger {
    /// Fold one round's record into the running totals.
    pub fn record(&mut self, rec: RoundRecord) {
        self.rounds += 1;
        self.words_total += rec.words_moved;
        self.peak_round_io = self.peak_round_io.max(rec.max_sent).max(rec.max_received);
        self.peak_storage = self.peak_storage.max(rec.max_storage);
        self.peak_total_storage = self.peak_total_storage.max(rec.total_storage);
        self.history.push(rec);
        self.maybe_rollup();
    }

    /// Enable roll-up mode: once `history` or `local_steps` holds more
    /// than `n` entries, fold the surplus into per-label [`LabelTotals`].
    /// Every total and labeled count this ledger reports is unchanged by
    /// the mode (`ledger::tests::rollup_matches_the_unbounded_ledger`).
    pub fn rollup_after(&mut self, n: usize) {
        self.rollup_after = Some(n.max(1));
        self.maybe_rollup();
    }

    /// Per-label aggregates accumulated by roll-ups so far.
    pub fn rolled(&self) -> &[LabelTotals] {
        &self.rolled
    }

    fn rolled_entry<'a>(
        rolled: &'a mut Vec<LabelTotals>,
        label: &'static str,
    ) -> &'a mut LabelTotals {
        if let Some(at) = rolled.iter().position(|t| t.label == label) {
            &mut rolled[at]
        } else {
            rolled.push(LabelTotals {
                label,
                ..LabelTotals::default()
            });
            rolled.last_mut().unwrap()
        }
    }

    fn maybe_rollup(&mut self) {
        let Some(n) = self.rollup_after else { return };
        if self.history.len() > n {
            for rec in self.history.drain(..) {
                let t = Self::rolled_entry(&mut self.rolled, rec.label);
                t.rounds += 1;
                t.words_moved += rec.words_moved;
            }
        }
        if self.local_steps.len() > n {
            for label in self.local_steps.drain(..) {
                Self::rolled_entry(&mut self.rolled, label).local_steps += 1;
            }
        }
    }

    /// Update the storage peaks without charging a round (local phases).
    pub fn observe_storage(&mut self, max_storage: usize, total_storage: u64) {
        self.peak_storage = self.peak_storage.max(max_storage);
        self.peak_total_storage = self.peak_total_storage.max(total_storage);
    }

    /// Record a labeled local computation phase: storage peaks are
    /// observed, `rounds` stays untouched (local work is free in MPC).
    pub fn observe_local(&mut self, label: &'static str, max_storage: usize, total_storage: u64) {
        self.local_steps.push(label);
        self.observe_storage(max_storage, total_storage);
        self.maybe_rollup();
    }

    /// Count of local phases whose label equals `label`, including any
    /// folded into roll-up aggregates.
    pub fn local_steps_labeled(&self, label: &str) -> usize {
        let rolled: usize = self
            .rolled
            .iter()
            .filter(|t| t.label == label)
            .map(|t| t.local_steps)
            .sum();
        rolled + self.local_steps.iter().filter(|l| **l == label).count()
    }

    /// Count of rounds whose label equals `label`, including any folded
    /// into roll-up aggregates.
    pub fn rounds_labeled(&self, label: &str) -> usize {
        let rolled: usize = self
            .rolled
            .iter()
            .filter(|t| t.label == label)
            .map(|t| t.rounds)
            .sum();
        rolled + self.history.iter().filter(|r| r.label == label).count()
    }

    /// Words moved by rounds whose label equals `label`, including any
    /// folded into roll-up aggregates.
    pub fn words_labeled(&self, label: &str) -> u64 {
        let rolled: u64 = self
            .rolled
            .iter()
            .filter(|t| t.label == label)
            .map(|t| t.words_moved)
            .sum();
        rolled
            + self
                .history
                .iter()
                .filter(|r| r.label == label)
                .map(|r| r.words_moved)
                .sum::<u64>()
    }

    /// Assert that every per-machine quantity this ledger observed —
    /// storage after a round *and* single-round send/receive volume —
    /// stayed within `limit` words.
    ///
    /// Lenient clusters record peaks without enforcing them; algorithms
    /// that *claim* a space regime (e.g. the sharded serve loop's
    /// `n^δ`-per-machine budget) call this at phase boundaries so a
    /// violation surfaces as a structured
    /// [`MpcError::SpaceExceeded`](crate::MpcError::SpaceExceeded)
    /// instead of silently passing. Primitives that model their cost
    /// analytically (broadcast trees) only show up in the I/O peaks, which
    /// is why round I/O is checked alongside storage: a deliberately
    /// oversized broadcast must be rejected here even though no machine
    /// ever *stored* the value.
    pub fn assert_space_within(&self, limit: usize) -> Result<(), crate::MpcError> {
        use crate::error::{MpcError, SpaceKind};
        if self.peak_storage > limit {
            return Err(MpcError::SpaceExceeded {
                round: self.rounds,
                machine: usize::MAX, // peaks are not attributed to a machine
                kind: SpaceKind::Storage,
                used: self.peak_storage,
                limit,
            });
        }
        if self.peak_round_io > limit {
            return Err(MpcError::SpaceExceeded {
                round: self.rounds,
                machine: usize::MAX,
                kind: SpaceKind::Send,
                used: self.peak_round_io,
                limit,
            });
        }
        Ok(())
    }

    /// Merge another ledger's history after this one (used when an algorithm
    /// runs sub-clusters). Roll-up aggregates on either side are merged
    /// aggregate-to-aggregate, so totals and labeled counts survive.
    pub fn absorb(&mut self, other: &Ledger) {
        for t in &other.rolled {
            self.rounds += t.rounds;
            self.words_total += t.words_moved;
            let mine = Self::rolled_entry(&mut self.rolled, t.label);
            mine.rounds += t.rounds;
            mine.words_moved += t.words_moved;
            mine.local_steps += t.local_steps;
        }
        for rec in &other.history {
            self.record(rec.clone());
        }
        self.local_steps.extend_from_slice(&other.local_steps);
        self.peak_round_io = self.peak_round_io.max(other.peak_round_io);
        self.peak_storage = self.peak_storage.max(other.peak_storage);
        self.peak_total_storage = self.peak_total_storage.max(other.peak_total_storage);
        self.maybe_rollup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(words: u64, sent: usize, recv: usize, store: usize, label: &'static str) -> RoundRecord {
        RoundRecord {
            words_moved: words,
            max_sent: sent,
            max_received: recv,
            max_storage: store,
            total_storage: store as u64 * 4,
            label,
        }
    }

    #[test]
    fn accumulation() {
        let mut l = Ledger::default();
        l.record(rec(100, 30, 40, 50, "sort"));
        l.record(rec(200, 60, 20, 45, "exchange"));
        assert_eq!(l.rounds, 2);
        assert_eq!(l.words_total, 300);
        assert_eq!(l.peak_round_io, 60);
        assert_eq!(l.peak_storage, 50);
        assert_eq!(l.peak_total_storage, 200);
        assert_eq!(l.rounds_labeled("sort"), 1);
    }

    #[test]
    fn observe_storage_no_round() {
        let mut l = Ledger::default();
        l.observe_storage(70, 300);
        assert_eq!(l.rounds, 0);
        assert_eq!(l.peak_storage, 70);
    }

    #[test]
    fn local_steps_are_recorded_round_free() {
        let mut l = Ledger::default();
        l.observe_local("map", 10, 40);
        l.observe_local("map", 25, 90);
        l.observe_local("filter", 5, 20);
        assert_eq!(l.rounds, 0, "local phases never charge a round");
        assert_eq!(l.local_steps_labeled("map"), 2);
        assert_eq!(l.local_steps_labeled("filter"), 1);
        assert_eq!(l.peak_storage, 25);

        let mut outer = Ledger::default();
        outer.absorb(&l);
        assert_eq!(outer.local_steps_labeled("map"), 2);
        assert_eq!(outer.rounds, 0);
    }

    #[test]
    fn assert_space_within_checks_storage_and_io() {
        let mut l = Ledger::default();
        l.record(rec(100, 30, 40, 50, "sort"));
        assert!(l.assert_space_within(50).is_ok());
        let err = l.assert_space_within(49).unwrap_err();
        assert!(matches!(
            err,
            crate::MpcError::SpaceExceeded {
                kind: crate::error::SpaceKind::Storage,
                used: 50,
                limit: 49,
                ..
            }
        ));
        // Pure I/O peaks (no storage) are caught too.
        let mut l = Ledger::default();
        l.record(rec(100, 90, 10, 5, "broadcast"));
        assert!(matches!(
            l.assert_space_within(80).unwrap_err(),
            crate::MpcError::SpaceExceeded {
                kind: crate::error::SpaceKind::Send,
                used: 90,
                ..
            }
        ));
    }

    #[test]
    fn oversized_broadcast_is_rejected_not_silently_passed() {
        // A lenient cluster lets an S-violating broadcast through (it only
        // records peaks); the assertion helper must still reject it.
        use crate::cluster::{Cluster, MpcConfig};
        use crate::primitives::broadcast_value;
        let mut c =
            Cluster::from_items(MpcConfig::lenient(4, 8), vec![0u32; 4]).expect("items fit");
        let big: Vec<u64> = vec![7; 64]; // 65 words ≫ S = 8
        broadcast_value(&mut c, &big).unwrap();
        let err = c.ledger().assert_space_within(8).unwrap_err();
        assert!(matches!(
            err,
            crate::MpcError::SpaceExceeded {
                kind: crate::error::SpaceKind::Send,
                ..
            }
        ));
        // A right-sized broadcast passes the same gate.
        let mut c =
            Cluster::from_items(MpcConfig::lenient(4, 64), vec![0u32; 4]).expect("items fit");
        broadcast_value(&mut c, &3u64).unwrap();
        c.ledger().assert_space_within(64).unwrap();
    }

    #[test]
    fn rollup_matches_the_unbounded_ledger() {
        // Drive the same synthetic serving workload into an unbounded
        // ledger and one rolling up after 4 records; every total and
        // labeled count must agree while the rolled ledger's accounting
        // state stays bounded.
        let labels = ["route_updates", "repair_wave", "sweep_commit"];
        let mut full = Ledger::default();
        let mut rolled = Ledger::default();
        rolled.rollup_after(4);
        let mut x = 41u64;
        for i in 0..200usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let label = labels[i % labels.len()];
            let r = rec(
                x % 100,
                (x % 7) as usize,
                (x % 11) as usize,
                (x % 31) as usize,
                label,
            );
            full.record(r.clone());
            rolled.record(r);
            if i % 5 == 0 {
                full.observe_local("shard_state", (x % 17) as usize, x % 63);
                rolled.observe_local("shard_state", (x % 17) as usize, x % 63);
            }
        }
        assert_eq!(rolled.rounds, full.rounds);
        assert_eq!(rolled.words_total, full.words_total);
        assert_eq!(rolled.peak_round_io, full.peak_round_io);
        assert_eq!(rolled.peak_storage, full.peak_storage);
        assert_eq!(rolled.peak_total_storage, full.peak_total_storage);
        for label in labels {
            assert_eq!(rolled.rounds_labeled(label), full.rounds_labeled(label));
            assert_eq!(rolled.words_labeled(label), full.words_labeled(label));
        }
        assert_eq!(
            rolled.local_steps_labeled("shard_state"),
            full.local_steps_labeled("shard_state")
        );
        // The point of the mode: bounded accounting state.
        assert!(
            rolled.history.len() <= 4,
            "history kept {} records",
            rolled.history.len()
        );
        assert!(rolled.local_steps.len() <= 4);
        assert!(rolled.rolled().len() <= labels.len() + 1);
        assert_eq!(full.history.len(), 200);
    }

    #[test]
    fn rollup_survives_absorb_on_both_sides() {
        let mut full = Ledger::default();
        let mut rolled = Ledger::default();
        rolled.rollup_after(2);
        let mut sub_full = Ledger::default();
        let mut sub_rolled = Ledger::default();
        sub_rolled.rollup_after(2);
        for i in 0..10u64 {
            let r = rec(i, 1, 2, 3, if i % 2 == 0 { "x" } else { "y" });
            full.record(r.clone());
            rolled.record(r.clone());
            sub_full.record(r.clone());
            sub_rolled.record(r);
            sub_full.observe_local("z", 1, 2);
            sub_rolled.observe_local("z", 1, 2);
        }
        full.absorb(&sub_full);
        rolled.absorb(&sub_rolled);
        assert_eq!(rolled.rounds, full.rounds);
        assert_eq!(rolled.words_total, full.words_total);
        for label in ["x", "y"] {
            assert_eq!(rolled.rounds_labeled(label), full.rounds_labeled(label));
            assert_eq!(rolled.words_labeled(label), full.words_labeled(label));
        }
        assert_eq!(
            rolled.local_steps_labeled("z"),
            full.local_steps_labeled("z")
        );
        assert!(rolled.history.len() <= 2);
    }

    #[test]
    fn obs_phase_vocabulary_matches_the_ledger_labels() {
        // The trace phase names ARE the ledger labels — `salloc report`
        // and ci.sh rely on the two vocabularies never drifting apart.
        use crate::shard::labels;
        use sparse_alloc_obs::Phase;
        let expect = [
            (Phase::BatchSchedule, labels::BATCH_SCHEDULE),
            (Phase::RouteUpdates, labels::ROUTE_UPDATES),
            (Phase::RepairWave, labels::REPAIR_WAVE),
            (Phase::SweepCommit, labels::SWEEP_COMMIT),
            (Phase::ShardState, labels::SHARD_STATE),
            (Phase::Checkpoint, labels::CHECKPOINT),
            (Phase::Restore, labels::RESTORE),
            (Phase::NetRoute, labels::NET_ROUTE),
            (Phase::NetCommit, labels::NET_COMMIT),
            (Phase::NetCensus, labels::NET_CENSUS),
            (Phase::NetInit, labels::NET_INIT),
            (Phase::NetRecover, labels::NET_RECOVER),
            (Phase::NetWave, labels::NET_WAVE),
            (Phase::NetHandoff, labels::NET_HANDOFF),
        ];
        assert_eq!(
            expect.len(),
            Phase::ALL.len(),
            "a phase is missing a label pairing"
        );
        for (phase, label) in expect {
            assert_eq!(phase.label(), label);
            assert_eq!(Phase::from_label(label), Some(phase));
        }
    }

    #[test]
    fn absorb_merges() {
        let mut a = Ledger::default();
        a.record(rec(10, 1, 2, 3, "x"));
        let mut b = Ledger::default();
        b.record(rec(20, 9, 1, 1, "y"));
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.words_total, 30);
        assert_eq!(a.peak_round_io, 9);
    }
}

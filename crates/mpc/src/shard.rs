//! Vertex-ownership maps for sharded state, plus the ledger labels of the
//! distributed serving phases.
//!
//! The dynamic subsystem (`sparse-alloc-dynamic::distributed`) partitions
//! its overlay graph, β-levels, and matching state across the machines of
//! a [`Cluster`](crate::Cluster) by *vertex ownership*: every right vertex
//! (and every left vertex) has a fixed home machine, chosen by a
//! deterministic hash so the assignment is reproducible across runs,
//! platforms, and thread counts, and stays balanced without any global
//! coordination — the partitioning pattern of low-memory MPC matching
//! algorithms (Brandt–Fischer–Uitto, arXiv:1807.05374).
//!
//! [`ShardMap`] is intentionally tiny: owners are pure functions of the
//! vertex id, so any machine can compute any owner locally (no routing
//! table has to be stored, let alone shipped).

/// Deterministic vertex → machine ownership for sharded algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

/// SplitMix64: a statistically strong, dependency-free mixer. Stable
/// across platforms (unlike `std`'s per-process-keyed SipHash).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ShardMap {
    /// An ownership map over `shards ≥ 1` machines.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a shard map needs at least one machine");
        ShardMap { shards }
    }

    /// Number of machines the map spreads over.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Home machine of right vertex `v`.
    #[inline]
    pub fn owner_of_right(&self, v: u32) -> usize {
        (splitmix64(v as u64) % self.shards as u64) as usize
    }

    /// Home machine of left vertex `u`. Salted differently from the right
    /// side so the two partitions are independent.
    #[inline]
    pub fn owner_of_left(&self, u: u32) -> usize {
        (splitmix64(u as u64 ^ 0x5157_1f24_3d0f_ace5) % self.shards as u64) as usize
    }

    /// The map's wire form for snapshots: ownership is a pure function of
    /// the shard count, so one word serializes the whole map (no routing
    /// table exists to persist). [`ShardMap::from_word`] round-trips it.
    #[inline]
    pub fn to_word(&self) -> u64 {
        self.shards as u64
    }

    /// Rebuild a map from its [wire form](ShardMap::to_word), rejecting a
    /// count that cannot be a live map (0, or one that does not fit a
    /// `usize`).
    pub fn from_word(word: u64) -> Result<ShardMap, String> {
        if word == 0 {
            return Err("a shard map needs at least one machine".into());
        }
        usize::try_from(word)
            .map(|shards| ShardMap { shards })
            .map_err(|_| format!("shard count {word} does not fit this platform"))
    }
}

/// Per-shard summary of a persisted sharded state — one entry per machine
/// of the [`ShardMap`] the snapshot was taken under. Restores re-derive
/// the same manifests from the decoded state and compare, so a snapshot
/// whose payload and manifests disagree (or whose manifest list does not
/// match its recorded shard count) is rejected before serving resumes.
/// Because ownership is a pure function of the vertex id, a restore onto
/// a *different* shard count is just a re-keying: the manifests still
/// validate the decoded state under the recorded map first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// The machine this manifest describes.
    pub shard: u32,
    /// Left vertices owned by the machine.
    pub owned_lefts: u64,
    /// Right vertices owned by the machine.
    pub owned_rights: u64,
    /// Resident state of the machine, in words (what
    /// [`Ledger`](crate::Ledger) storage accounting charges).
    pub resident_words: u64,
    /// Checksum over the machine's owned slice of the serialized state.
    pub state_checksum: u64,
}

impl crate::Words for ShardManifest {
    fn words(&self) -> usize {
        5
    }
}

/// Ledger labels of the distributed serving phases, so cost tables and
/// tests can attribute rounds and storage peaks to a specific phase.
pub mod labels {
    /// Conflict-scheduling an update batch: the per-shard staged
    /// footprints are resident state of the scheduling phase (round-free;
    /// storage accounting only, asserted against the space budget like
    /// any other phase).
    pub const BATCH_SCHEDULE: &str = "batch_schedule";
    /// Routing an epoch's update batch to the shards owning their balls.
    pub const ROUTE_UPDATES: &str = "route_updates";
    /// One wave of conflict-free parallel ball repairs (cross-shard walk
    /// handoffs are the payload).
    pub const REPAIR_WAVE: &str = "repair_wave";
    /// Committing the certificate sweep's matching migrations to the
    /// shards owning the receiving right vertices.
    pub const SWEEP_COMMIT: &str = "sweep_commit";
    /// Per-shard resident overlay/level/matching state observation
    /// (round-free; storage accounting only).
    pub const SHARD_STATE: &str = "shard_state";
    /// Writing a warm-restart snapshot: each machine stages its manifest
    /// and serialized slice (round-free; storage accounting only — the
    /// bytes leave through the host's filesystem, not the cluster).
    pub const CHECKPOINT: &str = "checkpoint";
    /// Restoring from a snapshot: each machine re-adopts its owned slice
    /// and re-validates its manifest (round-free; storage accounting
    /// only).
    pub const RESTORE: &str = "restore";
    /// Measured wire traffic of the networked route phase (update batch
    /// scattered to worker processes and echoed back; words =
    /// ⌈bytes/8⌉ actually framed onto the transport).
    pub const NET_ROUTE: &str = "net_route";
    /// Measured wire traffic of the networked commit phase (mate/level/
    /// load deltas shipped to the owning workers).
    pub const NET_COMMIT: &str = "net_commit";
    /// Measured wire traffic of the networked census + summary phases
    /// (per-worker slice checksums up, epoch summary down).
    pub const NET_CENSUS: &str = "net_census";
    /// Measured wire traffic of scattering initial state slices to
    /// worker processes (construction and restore).
    pub const NET_INIT: &str = "net_init";
    /// Measured wire traffic of worker recovery: respawning a dead
    /// shard worker, re-scattering state, and replaying logged updates
    /// (transient retries ride under this label too).
    pub const NET_RECOVER: &str = "net_recover";
    /// Measured wire traffic of a peer-to-peer repair wave: footprint
    /// state dispatched to the owning workers and per-plan outcomes +
    /// flips acknowledged back over the coordinator spokes.
    pub const NET_WAVE: &str = "net_wave";
    /// Measured wire traffic of cross-shard walk handoffs: partial walk
    /// state exchanged *directly* over worker↔worker channels (frontier
    /// fetches and flip pushes), never through the coordinator.
    pub const NET_HANDOFF: &str = "net_handoff";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_deterministic_and_in_range() {
        let m = ShardMap::new(7);
        for v in 0..10_000u32 {
            let o = m.owner_of_right(v);
            assert!(o < 7);
            assert_eq!(o, m.owner_of_right(v));
            assert!(m.owner_of_left(v) < 7);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::new(1);
        assert_eq!(m.owner_of_right(123), 0);
        assert_eq!(m.owner_of_left(456), 0);
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let shards = 8;
        let m = ShardMap::new(shards);
        let n = 80_000u32;
        let mut rights = vec![0usize; shards];
        let mut lefts = vec![0usize; shards];
        for v in 0..n {
            rights[m.owner_of_right(v)] += 1;
            lefts[m.owner_of_left(v)] += 1;
        }
        let expect = n as usize / shards;
        for s in 0..shards {
            assert!(
                rights[s] > expect / 2 && rights[s] < expect * 2,
                "right shard {s} holds {}",
                rights[s]
            );
            assert!(
                lefts[s] > expect / 2 && lefts[s] < expect * 2,
                "left shard {s} holds {}",
                lefts[s]
            );
        }
    }

    #[test]
    fn wire_form_roundtrips_and_rejects_zero() {
        for shards in [1usize, 2, 7, 4096] {
            let m = ShardMap::new(shards);
            let m2 = ShardMap::from_word(m.to_word()).unwrap();
            assert_eq!(m, m2);
            // Round-tripping preserves every ownership decision.
            for v in 0..500u32 {
                assert_eq!(m.owner_of_right(v), m2.owner_of_right(v));
                assert_eq!(m.owner_of_left(v), m2.owner_of_left(v));
            }
        }
        assert!(ShardMap::from_word(0).is_err());
    }

    #[test]
    fn manifest_counts_as_five_words() {
        use crate::Words;
        let m = ShardManifest {
            shard: 3,
            owned_lefts: 10,
            owned_rights: 12,
            resident_words: 99,
            state_checksum: 0xdead_beef,
        };
        assert_eq!(m.words(), 5);
    }

    #[test]
    fn left_and_right_salts_differ() {
        // The two partitions must not be the same function of the id.
        let m = ShardMap::new(5);
        let diverges = (0..100u32).any(|i| m.owner_of_right(i) != m.owner_of_left(i));
        assert!(diverges);
    }
}

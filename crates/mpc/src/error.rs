//! Structured failures of the MPC simulation.

/// Which resource limit a machine exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// Words sent in one round exceeded `S`.
    Send,
    /// Words received in one round exceeded `S`.
    Receive,
    /// Words stored after a round exceeded `S`.
    Storage,
}

/// Errors surfaced by strict-mode cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine exceeded its space budget — the algorithm left the MPC
    /// regime it claims to run in.
    SpaceExceeded {
        /// Communication round (1-based, as counted by the ledger).
        round: usize,
        /// The offending machine.
        machine: usize,
        /// Which limit was violated.
        kind: SpaceKind,
        /// Words used.
        used: usize,
        /// The limit `S`.
        limit: usize,
    },
    /// A routing function addressed a machine outside `0..n_machines`.
    BadRoute {
        /// The requested destination.
        dest: usize,
        /// Number of machines in the cluster.
        machines: usize,
    },
    /// An arrival update reached routing without the left id its batch
    /// staging should have assigned — the plan is malformed.
    MissingArriveId {
        /// Batch position of the malformed update.
        index: usize,
    },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::SpaceExceeded {
                round,
                machine,
                kind,
                used,
                limit,
            } => {
                let what = match kind {
                    SpaceKind::Send => "sent",
                    SpaceKind::Receive => "received",
                    SpaceKind::Storage => "stored",
                };
                // `usize::MAX` is the sentinel ledger peaks use when the
                // violation is not attributable to one machine.
                if *machine == usize::MAX {
                    write!(
                        f,
                        "a machine {what} {used} words by round {round}, exceeding S = {limit}"
                    )
                } else {
                    write!(
                        f,
                        "machine {machine} {what} {used} words in round {round}, exceeding S = {limit}"
                    )
                }
            }
            MpcError::BadRoute { dest, machines } => {
                write!(f, "route to machine {dest} but cluster has {machines}")
            }
            MpcError::MissingArriveId { index } => {
                write!(f, "arrival at update {index} has no staged left id")
            }
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattributed_peak_displays_without_the_sentinel() {
        let e = MpcError::SpaceExceeded {
            round: 2,
            machine: usize::MAX,
            kind: SpaceKind::Storage,
            used: 900,
            limit: 800,
        };
        let s = e.to_string();
        assert!(s.starts_with("a machine stored 900"), "{s}");
        assert!(!s.contains("18446744073709551615"), "{s}");
    }

    #[test]
    fn display_is_informative() {
        let e = MpcError::SpaceExceeded {
            round: 3,
            machine: 7,
            kind: SpaceKind::Receive,
            used: 1200,
            limit: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("machine 7"));
        assert!(s.contains("received 1200"));
        assert!(s.contains("round 3"));
        assert!(s.contains("S = 1000"));
    }
}

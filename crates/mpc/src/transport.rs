//! Real message transports for sharded serving: framed byte channels
//! between a coordinator and its shard workers.
//!
//! The [`Cluster`](crate::Cluster) simulator *accounts* communication in
//! words; this module *moves* it in bytes. A [`Mesh`] is the
//! coordinator's side of a star topology — one bidirectional channel per
//! worker — and a [`Peer`] is one endpoint of one channel. Every message
//! travels as one checksummed frame
//! ([`graph::io`](sparse_alloc_graph::io)'s frame codec: magic, version,
//! source, phase, epoch, per-channel sequence number, length-prefixed
//! payload, trailing FNV-1a-64), so the receive path can prove what it
//! got: wrong bytes surface as a typed
//! [`FrameError`] inside [`TransportError::Frame`], a dead channel as
//! [`TransportError::Closed`], delivery reordering as
//! [`TransportError::OutOfOrder`] — never as a panic, and never as
//! silently wrong data.
//!
//! Two interchangeable implementations:
//!
//! * **Loopback** — deterministic in-process byte queues
//!   (mutex + condvar). What tests and proptests drive: same frames,
//!   same sequence discipline, no sockets.
//! * **TCP** — length-prefixed frames over real `127.0.0.1` sockets
//!   between threads (Nagle disabled, bounded read timeouts so a dead
//!   peer is a typed error, not a hang).
//!
//! Both ends count the bytes and frames they actually moved
//! ([`Peer::bytes_sent`] and friends), which is what lets the dynamic
//! subsystem's ledger record **measured** wire traffic next to the
//! simulator's word accounting.
//!
//! # Fault injection
//!
//! [`Peer::inject`] arms a [`Fault`] that corrupts the *next outgoing
//! frame* — the channel misbehaves, the endpoints keep their contract.
//! The four faults map onto the four failure taxa the fault-injection
//! suite (`tests/transport.rs`) proves are typed:
//! a dropped peer ([`Fault::Drop`] ⇒ [`TransportError::Closed`]), a
//! truncated frame ([`Fault::Truncate`] ⇒ [`FrameError::Truncated`]), a
//! flipped bit ([`Fault::FlipBit`] ⇒ a typed [`FrameError`], usually
//! `Checksum`), and out-of-order delivery ([`Fault::Reorder`] ⇒
//! [`TransportError::OutOfOrder`]). [`Fault::Every`] schedules any of
//! them persistently (every `n`-th frame, never consumed), and
//! [`Mesh::respawn`] + [`Mesh::arm_on_respawn`] let a supervisor replace
//! a dead worker's channel — with faults re-armed on the replacement, so
//! recovery itself is tested under fire.
//!
//! # Example
//!
//! ```
//! use sparse_alloc_mpc::transport::{Peer, COORDINATOR};
//!
//! let (mut coord, mut worker) = Peer::loopback_pair(COORDINATOR, 0);
//! coord.send(7, 1, b"route batch").unwrap();
//! let frame = worker.recv().unwrap();
//! assert_eq!(frame.src, COORDINATOR);
//! assert_eq!((frame.phase, frame.epoch), (7, 1));
//! assert_eq!(frame.payload, b"route batch");
//!
//! // The reply direction is an independent channel.
//! worker.send(7, 1, b"ack").unwrap();
//! assert_eq!(coord.recv().unwrap().payload, b"ack");
//! ```
//!
//! Injected faults surface as typed errors on the receiving end:
//!
//! ```
//! use sparse_alloc_mpc::transport::{Fault, Peer, TransportError, COORDINATOR};
//!
//! let (mut coord, mut worker) = Peer::loopback_pair(COORDINATOR, 0);
//! coord.inject(Fault::FlipBit { bit: 300 });
//! coord.send(1, 0, b"payload bytes").unwrap();
//! assert!(matches!(
//!     worker.recv(),
//!     Err(TransportError::Frame { .. })
//! ));
//! ```

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sparse_alloc_graph::io::{
    decode_frame, encode_frame, read_frame, ByteReader, ByteWriter, FrameError, FrameHeader,
    IoError,
};
use sparse_alloc_obs::{FlightEvent, FlightKind, FlightRecorder, MetricsSnapshot, PeerWire};

/// Conventional source id of the coordinator end of a channel (worker
/// ids are their shard indices; `u32::MAX` can never be one).
pub const COORDINATOR: u32 = u32::MAX;

/// Default receive timeout: long enough for any in-process exchange,
/// short enough that a wedged peer becomes a typed error, not a hang.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// One received message: the frame header's routing fields plus the
/// payload, checksum-verified and sequence-checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender id the frame was stamped with.
    pub src: u32,
    /// Protocol phase tag (the transport does not interpret it).
    pub phase: u32,
    /// Epoch the frame belongs to.
    pub epoch: u64,
    /// Position in the sender's channel order.
    pub seq: u64,
    /// The message body.
    pub payload: Vec<u8>,
}

/// Why a transport operation failed. Every variant names the remote peer
/// it failed against; all of them are errors a caller can match on —
/// the fault-injection suite proves none of the injected failure modes
/// escapes this type.
#[derive(Debug)]
pub enum TransportError {
    /// The received bytes are not a well-formed frame (truncation, bad
    /// magic, version skew, oversized length, checksum mismatch).
    Frame {
        /// The peer the bytes came from.
        peer: u32,
        /// What was wrong with them.
        err: FrameError,
    },
    /// The channel is closed (peer gone, socket shut down).
    Closed {
        /// The peer whose channel died.
        peer: u32,
    },
    /// A frame arrived outside the sender's channel order.
    OutOfOrder {
        /// The peer that sent it.
        peer: u32,
        /// The sequence number the channel expected next.
        expected: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// Underlying socket/queue failure (including receive timeouts).
    Io {
        /// The peer the operation targeted.
        peer: u32,
        /// Human-readable cause.
        detail: String,
    },
    /// The bytes framed correctly but violated the protocol (wrong
    /// source id, malformed payload, a worker's relayed failure).
    Protocol {
        /// The peer that misbehaved.
        peer: u32,
        /// What the violation was.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Frame { peer, err } => write!(f, "peer {peer}: bad frame: {err}"),
            TransportError::Closed { peer } => write!(f, "peer {peer}: channel closed"),
            TransportError::OutOfOrder {
                peer,
                expected,
                got,
            } => write!(
                f,
                "peer {peer}: frame out of order: expected seq {expected}, got {got}"
            ),
            TransportError::Io { peer, detail } => write!(f, "peer {peer}: io: {detail}"),
            TransportError::Protocol { peer, detail } => {
                write!(f, "peer {peer}: protocol: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Whether the failure is worth retrying on the *same* channel.
    ///
    /// Only a receive timeout qualifies: the peer may merely be slow,
    /// and the channel stays usable afterwards (proved by
    /// `recv_timeout_is_typed`). Everything else — torn frames, closed
    /// links, sequence gaps, protocol violations — poisons the channel's
    /// framing or ordering state, so a retry can only be served by
    /// respawning the peer on a fresh channel.
    pub fn is_transient(&self) -> bool {
        matches!(self, TransportError::Io { detail, .. } if detail.contains("timed out"))
    }

    /// The remote peer the error names.
    pub fn peer(&self) -> u32 {
        match self {
            TransportError::Frame { peer, .. }
            | TransportError::Closed { peer }
            | TransportError::OutOfOrder { peer, .. }
            | TransportError::Io { peer, .. }
            | TransportError::Protocol { peer, .. } => *peer,
        }
    }

    /// Wire form of the error, so a worker that hit a transport failure
    /// can relay it to the coordinator in a NACK payload and the
    /// coordinator re-surfaces the *original* typed variant
    /// ([`TransportError::decode`] round-trips it).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let (code, peer, a, b, detail): (u32, u32, u64, u64, &str) = match self {
            TransportError::Frame { peer, err } => {
                let (sub, a, b, det): (u64, u64, u64, String) = match err {
                    FrameError::Truncated { wanted, got } => {
                        (0, *wanted as u64, *got as u64, String::new())
                    }
                    FrameError::BadMagic { found } => (1, *found as u64, 0, String::new()),
                    FrameError::Version { found, expected } => {
                        (2, *found as u64, *expected as u64, String::new())
                    }
                    FrameError::Oversized { len, cap } => (3, *len, *cap, String::new()),
                    FrameError::Checksum { expected, found } => {
                        (4, *expected, *found, String::new())
                    }
                    FrameError::Io(e) => (5, 0, 0, e.to_string()),
                };
                w.put_u32(0);
                w.put_u32(*peer);
                w.put_u64(sub);
                w.put_u64(a);
                w.put_u64(b);
                w.put_bytes(det.as_bytes());
                return w.into_bytes();
            }
            TransportError::Closed { peer } => (1, *peer, 0, 0, ""),
            TransportError::OutOfOrder {
                peer,
                expected,
                got,
            } => (2, *peer, *expected, *got, ""),
            TransportError::Io { peer, detail } => (3, *peer, 0, 0, detail.as_str()),
            TransportError::Protocol { peer, detail } => (4, *peer, 0, 0, detail.as_str()),
        };
        w.put_u32(code);
        w.put_u32(peer);
        w.put_u64(a);
        w.put_u64(b);
        w.put_bytes(detail.as_bytes());
        w.into_bytes()
    }

    /// Rebuild an error from its [wire form](TransportError::encode).
    pub fn decode(bytes: &[u8]) -> Result<TransportError, IoError> {
        let mut r = ByteReader::new(bytes);
        let code = r.take_u32()?;
        let peer = r.take_u32()?;
        let err = if code == 0 {
            let sub = r.take_u64()?;
            let a = r.take_u64()?;
            let b = r.take_u64()?;
            let detail = String::from_utf8_lossy(&r.take_bytes()?).into_owned();
            let err = match sub {
                0 => FrameError::Truncated {
                    wanted: a as usize,
                    got: b as usize,
                },
                1 => FrameError::BadMagic { found: a as u32 },
                2 => FrameError::Version {
                    found: a as u32,
                    expected: b as u32,
                },
                3 => FrameError::Oversized { len: a, cap: b },
                4 => FrameError::Checksum {
                    expected: a,
                    found: b,
                },
                5 => FrameError::Io(std::io::Error::other(detail)),
                other => return Err(IoError::Parse(format!("unknown frame-error code {other}"))),
            };
            TransportError::Frame { peer, err }
        } else {
            let a = r.take_u64()?;
            let b = r.take_u64()?;
            let detail = String::from_utf8_lossy(&r.take_bytes()?).into_owned();
            match code {
                1 => TransportError::Closed { peer },
                2 => TransportError::OutOfOrder {
                    peer,
                    expected: a,
                    got: b,
                },
                3 => TransportError::Io { peer, detail },
                4 => TransportError::Protocol { peer, detail },
                other => {
                    return Err(IoError::Parse(format!(
                        "unknown transport-error code {other}"
                    )))
                }
            }
        };
        r.expect_end()?;
        Ok(err)
    }
}

/// A deliverable channel corruption, armed with [`Peer::inject`] and
/// applied to the next outgoing frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Close the channel instead of delivering (a peer that died).
    Drop,
    /// Deliver only the first half of the frame, then close (a
    /// connection cut mid-message).
    Truncate,
    /// Flip one bit of the encoded frame (link-level corruption). The
    /// bit index is taken modulo the frame length.
    FlipBit {
        /// Which bit to flip.
        bit: usize,
    },
    /// Hold this frame and deliver it *after* the next one (reordered
    /// delivery; the receiver's sequence check catches it).
    Reorder,
    /// Apply `fault` to every `n`-th outgoing frame, forever. Unlike the
    /// one-shot faults above, a schedule is **not consumed** when it
    /// fires — it models a persistently flaky channel, so recovery
    /// machinery is itself tested under fire. Injecting a new schedule
    /// replaces the old one.
    Every {
        /// Fire on every `n`-th send (clamped to ≥ 1).
        n: u64,
        /// The fault to apply when the schedule fires. A nested
        /// schedule re-arms instead of corrupting a frame.
        fault: Box<Fault>,
    },
}

/// Nesting bound of [`Fault::decode`]: a hostile ARM payload cannot
/// recurse the decoder into a stack overflow.
const FAULT_DECODE_DEPTH: u32 = 8;

impl Fault {
    /// Append the fault's wire form to `w`, so a coordinator can arm
    /// faults on channels it does not own (the serving layer's ARM
    /// control frame hands a fault to a worker, which injects it into
    /// one of its own worker↔worker links).
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            Fault::Drop => w.put_u32(0),
            Fault::Truncate => w.put_u32(1),
            Fault::FlipBit { bit } => {
                w.put_u32(2);
                w.put_u64(*bit as u64);
            }
            Fault::Reorder => w.put_u32(3),
            Fault::Every { n, fault } => {
                w.put_u32(4);
                w.put_u64(*n);
                fault.encode(w);
            }
        }
    }

    /// Rebuild a fault from its [wire form](Fault::encode). Unknown tags
    /// and over-nested schedules are typed parse errors, never panics.
    pub fn decode(r: &mut ByteReader) -> Result<Fault, IoError> {
        Self::decode_at(r, 0)
    }

    fn decode_at(r: &mut ByteReader, depth: u32) -> Result<Fault, IoError> {
        if depth >= FAULT_DECODE_DEPTH {
            return Err(IoError::Parse(format!(
                "fault schedule nested deeper than {FAULT_DECODE_DEPTH}"
            )));
        }
        Ok(match r.take_u32()? {
            0 => Fault::Drop,
            1 => Fault::Truncate,
            2 => Fault::FlipBit {
                bit: r.take_u64()? as usize,
            },
            3 => Fault::Reorder,
            4 => Fault::Every {
                n: r.take_u64()?,
                fault: Box::new(Self::decode_at(r, depth + 1)?),
            },
            other => return Err(IoError::Parse(format!("unknown fault kind {other}"))),
        })
    }
}

// ----------------------------------------------------------- byte links

#[derive(Debug, Default)]
struct QueueState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// One direction of a loopback channel.
#[derive(Debug, Default)]
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Queue {
    fn push(&self, bytes: Vec<u8>) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return false;
        }
        st.frames.push_back(bytes);
        self.ready.notify_all();
        true
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// `Ok(Some(bytes))` on delivery, `Ok(None)` when closed and fully
    /// drained, `Err(())` on timeout.
    fn pop(&self, timeout: Duration) -> Result<Option<Vec<u8>>, ()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(bytes) = st.frames.pop_front() {
                return Ok(Some(bytes));
            }
            if st.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (next, timed_out) = self.ready.wait_timeout(st, deadline - now).unwrap();
            st = next;
            let _ = timed_out;
        }
    }
}

#[derive(Debug)]
enum Link {
    Loopback { tx: Arc<Queue>, rx: Arc<Queue> },
    Tcp(TcpStream),
}

// ----------------------------------------------------------------- peer

/// One endpoint of one framed channel: stamps outgoing frames with its
/// id and a per-channel sequence number, verifies both on receive, and
/// counts the bytes it actually moved.
#[derive(Debug)]
pub struct Peer {
    local: u32,
    remote: u32,
    link: Link,
    send_seq: u64,
    recv_seq: u64,
    held: Option<Vec<u8>>,
    faults: VecDeque<Fault>,
    /// Armed [`Fault::Every`] schedule: period, sends since last fire,
    /// and the fault to apply when it fires.
    scheduled: Option<(u64, u64, Fault)>,
    recv_timeout: Duration,
    bytes_sent: u64,
    bytes_received: u64,
    frames_sent: u64,
    frames_received: u64,
    recorder: FlightRecorder,
}

impl Peer {
    fn new(local: u32, remote: u32, link: Link) -> Self {
        Peer {
            local,
            remote,
            link,
            send_seq: 0,
            recv_seq: 0,
            held: None,
            faults: VecDeque::new(),
            scheduled: None,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            bytes_sent: 0,
            bytes_received: 0,
            frames_sent: 0,
            frames_received: 0,
            recorder: FlightRecorder::default(),
        }
    }

    /// A connected loopback pair: what `a` sends, `b` receives, and vice
    /// versa, over deterministic in-process queues.
    pub fn loopback_pair(a: u32, b: u32) -> (Peer, Peer) {
        let ab = Arc::new(Queue::default());
        let ba = Arc::new(Queue::default());
        (
            Peer::new(
                a,
                b,
                Link::Loopback {
                    tx: Arc::clone(&ab),
                    rx: Arc::clone(&ba),
                },
            ),
            Peer::new(b, a, Link::Loopback { tx: ba, rx: ab }),
        )
    }

    /// A connected TCP pair over `127.0.0.1` (Nagle disabled, bounded
    /// read timeouts on both ends).
    pub fn tcp_pair(a: u32, b: u32) -> Result<(Peer, Peer), TransportError> {
        let io_err = |peer: u32, e: std::io::Error| TransportError::Io {
            peer,
            detail: e.to_string(),
        };
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(b, e))?;
        let addr = listener.local_addr().map_err(|e| io_err(b, e))?;
        let out = TcpStream::connect(addr).map_err(|e| io_err(b, e))?;
        let (inn, _) = listener.accept().map_err(|e| io_err(a, e))?;
        for s in [&out, &inn] {
            s.set_nodelay(true).map_err(|e| io_err(b, e))?;
            s.set_read_timeout(Some(DEFAULT_RECV_TIMEOUT))
                .map_err(|e| io_err(b, e))?;
        }
        Ok((
            Peer::new(a, b, Link::Tcp(out)),
            Peer::new(b, a, Link::Tcp(inn)),
        ))
    }

    /// Id of the other end.
    pub fn remote(&self) -> u32 {
        self.remote
    }

    /// Arm `fault` for an upcoming outgoing frame (one fault per frame,
    /// in injection order). A [`Fault::Every`] schedule is armed
    /// persistently instead: it fires on every `n`-th send without being
    /// consumed (a new schedule replaces the old one).
    pub fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Every { n, fault } => self.scheduled = Some((n.max(1), 0, *fault)),
            f => self.faults.push_back(f),
        }
    }

    /// Advance the armed schedule by one send; `Some(fault)` when it
    /// fires. One-shot injected faults take precedence (the schedule
    /// does not tick on a send another fault already corrupted).
    fn scheduled_fire(&mut self) -> Option<Fault> {
        let (n, count, fault) = self.scheduled.as_mut()?;
        *count += 1;
        if *count >= *n {
            *count = 0;
            Some(fault.clone())
        } else {
            None
        }
    }

    /// Cap how long [`Peer::recv`] waits before reporting a typed
    /// timeout ([`TransportError::Io`]).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the socket rejects the new read timeout.
    /// The error must surface: swallowing it would leave a TCP peer
    /// armed with an unbounded (or stale) read, and a dropped frame
    /// would then hang the lockstep star protocol forever instead of
    /// tripping the timeout.
    pub fn set_recv_timeout(&mut self, timeout: Duration) -> Result<(), TransportError> {
        self.recv_timeout = timeout.max(Duration::from_millis(1));
        if let Link::Tcp(s) = &self.link {
            s.set_read_timeout(Some(self.recv_timeout))
                .map_err(|e| TransportError::Io {
                    peer: self.remote,
                    detail: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Bytes this endpoint put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Bytes this endpoint took off the wire.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Frames this endpoint delivered to the channel.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames this endpoint received and verified.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// This endpoint's flight recorder: the last
    /// [`DEFAULT_RING`](sparse_alloc_obs::flight::DEFAULT_RING) frame
    /// headers and faults it witnessed, for post-mortem dumps.
    pub fn flight(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable flight-recorder access, so a protocol layer above the
    /// transport can note its own events (NACK decodes, phase context)
    /// into the same ring the post-mortem dump renders.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    fn fault_note(e: &TransportError) -> &'static str {
        match e {
            TransportError::Frame { .. } => "bad frame off the wire",
            TransportError::Closed { .. } => "channel closed",
            TransportError::OutOfOrder { .. } => "out-of-order frame",
            TransportError::Io { .. } => "io failure / recv timeout",
            TransportError::Protocol { .. } => "protocol violation",
        }
    }

    fn push_bytes(&mut self, bytes: Vec<u8>) -> Result<(), TransportError> {
        let n = bytes.len() as u64;
        match &mut self.link {
            Link::Loopback { tx, .. } => {
                if !tx.push(bytes) {
                    return Err(TransportError::Closed { peer: self.remote });
                }
            }
            Link::Tcp(s) => {
                s.write_all(&bytes).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::BrokenPipe
                        || e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::NotConnected
                    {
                        TransportError::Closed { peer: self.remote }
                    } else {
                        TransportError::Io {
                            peer: self.remote,
                            detail: e.to_string(),
                        }
                    }
                })?;
            }
        }
        self.bytes_sent += n;
        self.frames_sent += 1;
        Ok(())
    }

    fn close_link(&mut self) {
        match &self.link {
            Link::Loopback { tx, .. } => tx.close(),
            Link::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    /// Frame and deliver one message. An armed [`Fault`] is applied to
    /// this frame; the send itself still reports `Ok` (faults model the
    /// *channel* failing after the bytes left the sender — the receiving
    /// end is where they surface, as typed errors).
    pub fn send(&mut self, phase: u32, epoch: u64, payload: &[u8]) -> Result<(), TransportError> {
        let header = FrameHeader {
            src: self.local,
            phase,
            epoch,
            seq: self.send_seq,
        };
        self.send_seq += 1;
        let bytes = encode_frame(&header, payload);
        let ev = FlightEvent {
            peer: self.remote,
            kind: FlightKind::Sent,
            phase: header.phase as u16,
            epoch,
            seq: header.seq,
            len: payload.len() as u32,
            note: "",
        };
        // A frame held back by a Reorder fault rides out *after* the
        // frame that overtook it.
        let flush = self.held.take();
        let armed = match self.faults.pop_front() {
            Some(f) => Some(f),
            None => self.scheduled_fire(),
        };
        match armed {
            None => {
                self.push_bytes(bytes)?;
                self.recorder.note(ev);
            }
            Some(Fault::Drop) => {
                self.recorder.note(FlightEvent {
                    kind: FlightKind::Fault,
                    note: "injected fault: drop — channel closed",
                    ..ev
                });
                self.close_link();
                return Ok(());
            }
            Some(Fault::Truncate) => {
                let half = bytes.len() / 2;
                // Deliver the torn prefix, then cut the channel: the
                // receiver sees a frame that ends mid-payload.
                let _ = self.push_bytes(bytes[..half].to_vec());
                self.recorder.note(FlightEvent {
                    kind: FlightKind::Fault,
                    note: "injected fault: frame truncated in transit",
                    ..ev
                });
                self.close_link();
                return Ok(());
            }
            Some(Fault::FlipBit { bit }) => {
                let mut bad = bytes;
                let i = bit % (bad.len() * 8);
                bad[i / 8] ^= 1 << (i % 8);
                self.push_bytes(bad)?;
                self.recorder.note(FlightEvent {
                    kind: FlightKind::Fault,
                    note: "injected fault: bit flipped in transit",
                    ..ev
                });
            }
            Some(Fault::Reorder) => {
                self.held = Some(bytes);
                self.recorder.note(FlightEvent {
                    kind: FlightKind::Fault,
                    note: "injected fault: frame held for reorder",
                    ..ev
                });
                // A frame displaced by back-to-back reorders still rides
                // out (in its original position, so the *next* healthy
                // send trips the sequence check) rather than vanishing.
                if let Some(late) = flush {
                    self.push_bytes(late)?;
                }
                return Ok(());
            }
            Some(Fault::Every { n, fault }) => {
                // A schedule in the one-shot queue (or nested inside a
                // firing schedule) re-arms; this frame goes out clean.
                self.scheduled = Some((n.max(1), 0, *fault));
                self.push_bytes(bytes)?;
                self.recorder.note(ev);
            }
        }
        if let Some(late) = flush {
            self.push_bytes(late)?;
        }
        Ok(())
    }

    /// Receive, verify, and sequence-check one frame. Every outcome —
    /// the verified header or the typed failure — is noted in the
    /// flight recorder for post-mortem.
    pub fn recv(&mut self) -> Result<Frame, TransportError> {
        let res = self.recv_inner();
        self.note_recv(&res);
        res
    }

    fn note_recv(&mut self, res: &Result<Frame, TransportError>) {
        match res {
            Ok(f) => self.recorder.note(FlightEvent {
                peer: self.remote,
                kind: FlightKind::Received,
                phase: f.phase as u16,
                epoch: f.epoch,
                seq: f.seq,
                len: f.payload.len() as u32,
                note: "",
            }),
            Err(e) => self.recorder.note(FlightEvent {
                peer: self.remote,
                kind: FlightKind::Fault,
                phase: 0,
                epoch: 0,
                seq: self.recv_seq,
                len: 0,
                note: Self::fault_note(e),
            }),
        }
    }

    /// Wait up to `wait` for a frame without committing to a blocking
    /// receive: `Ok(None)` means the channel is healthy but idle.
    ///
    /// This is the primitive a worker needs to multiplex its coordinator
    /// spoke and its worker↔worker links in one loop. A plain
    /// [`Peer::recv`] with a short timeout would do for loopback, but a
    /// short TCP read can tear: consuming half a frame header before the
    /// clock expires poisons the stream position for every later
    /// receive. Here the TCP path gates on a non-consuming `peek`, and
    /// the full frame is only read — under the channel's configured
    /// [`Peer::set_recv_timeout`] — once at least one byte is known to
    /// have arrived. Idle polls skip the flight ring (a multiplexing
    /// loop polling at millisecond cadence would otherwise flood the
    /// post-mortem window with non-events).
    pub fn poll_recv(&mut self, wait: Duration) -> Result<Option<Frame>, TransportError> {
        let remote = self.remote;
        if let Link::Tcp(s) = &self.link {
            let io_err = |e: std::io::Error| TransportError::Io {
                peer: remote,
                detail: e.to_string(),
            };
            s.set_read_timeout(Some(wait.max(Duration::from_millis(1))))
                .map_err(io_err)?;
            let mut probe = [0u8; 1];
            let peeked = s.peek(&mut probe);
            s.set_read_timeout(Some(self.recv_timeout))
                .map_err(io_err)?;
            return match peeked {
                Ok(0) => Err(TransportError::Closed { peer: remote }),
                Ok(_) => self.recv().map(Some),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    Ok(None)
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::ConnectionAborted =>
                {
                    Err(TransportError::Closed { peer: remote })
                }
                Err(e) => Err(io_err(e)),
            };
        }
        // Loopback queues pop whole frames, so a short wait cannot tear;
        // borrow the timeout for one receive.
        let prev = self.recv_timeout;
        self.recv_timeout = wait.max(Duration::from_micros(1));
        let res = self.recv_inner();
        self.recv_timeout = prev;
        match res {
            Err(ref e) if e.is_transient() => Ok(None),
            res => {
                self.note_recv(&res);
                res.map(Some)
            }
        }
    }

    fn recv_inner(&mut self) -> Result<Frame, TransportError> {
        let peer = self.remote;
        let (header, payload) = match &mut self.link {
            Link::Loopback { rx, .. } => {
                let bytes = match rx.pop(self.recv_timeout) {
                    Ok(Some(bytes)) => bytes,
                    Ok(None) => return Err(TransportError::Closed { peer }),
                    Err(()) => {
                        return Err(TransportError::Io {
                            peer,
                            detail: format!("recv timed out after {:?}", self.recv_timeout),
                        })
                    }
                };
                self.bytes_received += bytes.len() as u64;
                decode_frame(&bytes).map_err(|err| TransportError::Frame { peer, err })?
            }
            Link::Tcp(s) => match read_frame(s) {
                Ok(Some((header, payload))) => {
                    self.bytes_received +=
                        (sparse_alloc_graph::io::FRAME_HEADER_LEN + payload.len() + 8) as u64;
                    (header, payload)
                }
                Ok(None) => return Err(TransportError::Closed { peer }),
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Io {
                        peer,
                        detail: format!("recv timed out after {:?}", self.recv_timeout),
                    })
                }
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::ConnectionAborted =>
                {
                    return Err(TransportError::Closed { peer })
                }
                Err(err) => return Err(TransportError::Frame { peer, err }),
            },
        };
        if header.seq != self.recv_seq {
            return Err(TransportError::OutOfOrder {
                peer,
                expected: self.recv_seq,
                got: header.seq,
            });
        }
        if header.src != peer {
            return Err(TransportError::Protocol {
                peer,
                detail: format!("frame stamped by {} on the channel of {peer}", header.src),
            });
        }
        self.recv_seq += 1;
        self.frames_received += 1;
        Ok(Frame {
            src: header.src,
            phase: header.phase,
            epoch: header.epoch,
            seq: header.seq,
            payload,
        })
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        // A vanished endpoint must look *closed* to the other side, not
        // silent: loopback receivers drain and get `Closed`, TCP readers
        // get EOF.
        self.close_link();
    }
}

// ----------------------------------------------------------------- mesh

/// The coordinator's side of a star mesh: one [`Peer`] per worker,
/// indexed by shard. Workers get the matching endpoints.
#[derive(Debug)]
pub struct Mesh {
    peers: Vec<Peer>,
    /// Faults to arm on the *replacement* channel when a worker is
    /// respawned ([`Mesh::arm_on_respawn`]) — how the harness tests
    /// recovery itself under fire.
    on_respawn: Vec<Vec<Fault>>,
}

impl Mesh {
    /// A loopback mesh over `workers` shards. Returns the coordinator's
    /// mesh and the per-worker endpoints (index = shard id).
    pub fn loopback(workers: usize) -> (Mesh, Vec<Peer>) {
        let mut peers = Vec::with_capacity(workers);
        let mut ends = Vec::with_capacity(workers);
        for w in 0..workers {
            let (c, e) = Peer::loopback_pair(COORDINATOR, w as u32);
            peers.push(c);
            ends.push(e);
        }
        let on_respawn = (0..workers).map(|_| Vec::new()).collect();
        (Mesh { peers, on_respawn }, ends)
    }

    /// A TCP mesh over `workers` shards (one `127.0.0.1` socket each).
    pub fn tcp(workers: usize) -> Result<(Mesh, Vec<Peer>), TransportError> {
        let mut peers = Vec::with_capacity(workers);
        let mut ends = Vec::with_capacity(workers);
        for w in 0..workers {
            let (c, e) = Peer::tcp_pair(COORDINATOR, w as u32)?;
            peers.push(c);
            ends.push(e);
        }
        let on_respawn = (0..workers).map(|_| Vec::new()).collect();
        Ok((Mesh { peers, on_respawn }, ends))
    }

    /// Every unordered worker pair — the edge list of a *full* p2p mesh,
    /// for [`Mesh::loopback_mesh`] / [`Mesh::tcp_mesh`].
    pub fn all_pairs(workers: usize) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(workers * workers.saturating_sub(1) / 2);
        for a in 0..workers {
            for b in (a + 1)..workers {
                edges.push((a, b));
            }
        }
        edges
    }

    /// A loopback star plus direct worker↔worker channels along `edges`
    /// (a full mesh when `edges` is [`Mesh::all_pairs`], a partial one
    /// otherwise). Returns the coordinator's mesh and one
    /// [`WorkerLinks`] bundle per worker.
    pub fn loopback_mesh(workers: usize, edges: &[(usize, usize)]) -> (Mesh, Vec<WorkerLinks>) {
        let (mesh, spokes) = Mesh::loopback(workers);
        let links = link_matrix(workers, edges, false).expect("loopback links cannot fail");
        (mesh, bundle(spokes, links))
    }

    /// The TCP twin of [`Mesh::loopback_mesh`]: every spoke and every
    /// worker↔worker edge is its own `127.0.0.1` socket.
    pub fn tcp_mesh(
        workers: usize,
        edges: &[(usize, usize)],
    ) -> Result<(Mesh, Vec<WorkerLinks>), TransportError> {
        let (mesh, spokes) = Mesh::tcp(workers)?;
        let links = link_matrix(workers, edges, true)?;
        Ok((mesh, bundle(spokes, links)))
    }

    /// Tear down and rebuild the *entire* mesh — every spoke and every
    /// worker↔worker channel of a full p2p mesh — returning fresh
    /// [`WorkerLinks`] bundles for a full respawn of the worker pool.
    ///
    /// This is the p2p engine's recovery primitive. A star recovers one
    /// spoke at a time ([`Mesh::respawn`]), but a wave in the p2p
    /// protocol has state in flight on worker↔worker channels too;
    /// after a mid-wave fault the only sound cut is to close everything
    /// (workers blocked anywhere see typed `Closed` and exit) and
    /// re-INIT on virgin channels. Each new spoke inherits the old
    /// spoke's receive timeout and [`Mesh::arm_on_respawn`] faults,
    /// exactly like a single-spoke respawn.
    pub fn rebuild_p2p(&mut self, tcp: bool) -> Result<Vec<WorkerLinks>, TransportError> {
        let n = self.peers.len();
        let mut links = link_matrix(n, &Mesh::all_pairs(n), tcp)?;
        let mut out = Vec::with_capacity(n);
        for (w, row) in links.iter_mut().enumerate() {
            let spoke = self.respawn(w, tcp)?;
            out.push(WorkerLinks {
                coordinator: spoke,
                peers: std::mem::take(row),
            });
        }
        Ok(out)
    }

    /// Replace the channel to worker `w` with a fresh one (loopback or
    /// TCP to match the mesh) and return the new worker-side endpoint
    /// for the respawned worker to run on. The old coordinator-side
    /// peer is dropped, which closes the old link — a worker still
    /// blocked on it sees a typed `Closed` and exits. Faults armed via
    /// [`Mesh::arm_on_respawn`] are injected into the new channel; the
    /// old channel's receive timeout carries over to the coordinator
    /// side only (the worker end keeps the spawn-time default).
    pub fn respawn(&mut self, w: usize, tcp: bool) -> Result<Peer, TransportError> {
        let (mut c, e) = if tcp {
            Peer::tcp_pair(COORDINATOR, w as u32)?
        } else {
            Peer::loopback_pair(COORDINATOR, w as u32)
        };
        // Only the coordinator side inherits the configured timeout: the
        // replacement worker endpoint keeps the long default, exactly
        // like an originally-spawned worker — a coordinator running with
        // an aggressively short timeout must not hand its respawned
        // workers a clock that expires during its own recovery pauses.
        c.set_recv_timeout(self.peers[w].recv_timeout)?;
        for f in &self.on_respawn[w] {
            c.inject(f.clone());
        }
        self.peers[w] = c;
        Ok(e)
    }

    /// Arm `fault` to be injected into worker `w`'s **replacement**
    /// channel on *every* [`Mesh::respawn`] — a persistently faulty
    /// slot, so the harness can prove recovery survives faults during
    /// recovery itself and that a respawn budget really exhausts.
    pub fn arm_on_respawn(&mut self, w: usize, fault: Fault) {
        self.on_respawn[w].push(fault);
    }

    /// Number of workers in the mesh.
    pub fn workers(&self) -> usize {
        self.peers.len()
    }

    /// Send one frame to worker `w`.
    pub fn send_to(
        &mut self,
        w: usize,
        phase: u32,
        epoch: u64,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        self.peers[w].send(phase, epoch, payload)
    }

    /// Receive one frame from worker `w`.
    pub fn recv_from(&mut self, w: usize) -> Result<Frame, TransportError> {
        self.peers[w].recv()
    }

    /// Discard every frame already queued (or arriving within `timeout`)
    /// on the channel to worker `w`, returning how many were thrown
    /// away.
    ///
    /// This is the coordinator's post-fault cleanup: when a lockstep
    /// exchange dies partway through its collection sweep, the surviving
    /// workers' uncollected replies are already in flight and would read
    /// as off-script frames once the protocol restarts. Sequence
    /// tracking advances normally, so the channel stays usable, and the
    /// configured receive timeout is restored before returning. Any
    /// failure other than the terminating timeout is the channel's own
    /// typed error.
    pub fn drain(&mut self, w: usize, timeout: Duration) -> Result<u64, TransportError> {
        let prev = self.peers[w].recv_timeout;
        self.peers[w].set_recv_timeout(timeout)?;
        let mut n = 0u64;
        let out = loop {
            match self.peers[w].recv() {
                Ok(_) => n += 1,
                Err(e) if e.is_transient() => break Ok(n),
                Err(e) => break Err(e),
            }
        };
        self.peers[w].set_recv_timeout(prev)?;
        out
    }

    /// Direct access to the channel of worker `w` (fault injection,
    /// timeouts).
    pub fn peer_mut(&mut self, w: usize) -> &mut Peer {
        &mut self.peers[w]
    }

    /// Cap every channel's receive wait.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] from the first channel whose socket rejects
    /// the new timeout (see [`Peer::set_recv_timeout`]); earlier channels
    /// keep the successfully-armed value.
    pub fn set_recv_timeout(&mut self, timeout: Duration) -> Result<(), TransportError> {
        for p in &mut self.peers {
            p.set_recv_timeout(timeout)?;
        }
        Ok(())
    }

    /// Total `(sent, received)` bytes the coordinator moved across all
    /// channels.
    pub fn bytes_moved(&self) -> (u64, u64) {
        self.peers.iter().fold((0, 0), |(s, r), p| {
            (s + p.bytes_sent(), r + p.bytes_received())
        })
    }

    /// Total `(sent, received)` frames across all channels.
    pub fn frames_moved(&self) -> (u64, u64) {
        self.peers.iter().fold((0, 0), |(s, r), p| {
            (s + p.frames_sent(), r + p.frames_received())
        })
    }

    /// Per-worker `(sent, received)` byte counters, indexed by shard —
    /// what per-machine wire accounting diffs around a phase.
    pub fn per_peer_bytes(&self) -> Vec<(u64, u64)> {
        self.peers
            .iter()
            .map(|p| (p.bytes_sent(), p.bytes_received()))
            .collect()
    }

    /// Export every channel's wire counters as one
    /// [`MetricsSnapshot`] — the single source the e21 wire-traffic
    /// report, the trace stream, and `salloc report` all read.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            peers: self
                .peers
                .iter()
                .map(|p| PeerWire {
                    peer: p.remote(),
                    bytes_sent: p.bytes_sent(),
                    bytes_received: p.bytes_received(),
                    frames_sent: p.frames_sent(),
                    frames_received: p.frames_received(),
                })
                .collect(),
        }
    }

    /// Render every channel's flight-recorder ring into one post-mortem
    /// dump. `phase_name` maps the protocol's phase ids to names (the
    /// transport does not interpret phases; the serving layer does).
    pub fn flight_dump(&self, phase_name: impl Fn(u16) -> &'static str) -> String {
        let mut out = String::new();
        for p in &self.peers {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "channel to worker {} ({} events witnessed):",
                p.remote(),
                p.flight().total_noted()
            );
            p.flight().dump_with(&phase_name, &mut out);
        }
        out
    }
}

// ------------------------------------------------------------ p2p links

/// One worker's endpoints in a p2p mesh: its coordinator spoke plus a
/// direct channel to each mesh neighbor (`None` at its own slot and at
/// workers a partial mesh leaves unconnected). Worker↔worker channels
/// are full [`Peer`]s — same frame codec, sequence numbers, byte/frame
/// counters, flight ring, and fault arming as a spoke.
#[derive(Debug)]
pub struct WorkerLinks {
    /// This worker's end of the coordinator channel.
    pub coordinator: Peer,
    /// Direct worker↔worker channels, indexed by shard id.
    pub peers: Vec<Option<Peer>>,
}

impl WorkerLinks {
    /// This worker's shard id (the coordinator channel knows it).
    pub fn shard(&self) -> u32 {
        self.coordinator.local
    }

    /// The direct channel to `shard`, if the mesh has one.
    pub fn peer_to(&mut self, shard: u32) -> Option<&mut Peer> {
        self.peers.get_mut(shard as usize)?.as_mut()
    }

    /// Shard ids this worker has direct channels to, ascending.
    pub fn connected(&self) -> Vec<u32> {
        (0..self.peers.len() as u32)
            .filter(|&s| self.peers[s as usize].is_some())
            .collect()
    }

    /// Bytes moved on worker↔worker channels only (sent + received),
    /// excluding the coordinator spoke — the number the serving layer
    /// meters as handoff traffic.
    pub fn peer_bytes_moved(&self) -> u64 {
        self.peers
            .iter()
            .flatten()
            .map(|p| p.bytes_sent() + p.bytes_received())
            .sum()
    }
}

/// Build the worker↔worker channel matrix for `edges`:
/// `rows[a][b]` holds `a`'s endpoint of the `a↔b` channel.
fn link_matrix(
    workers: usize,
    edges: &[(usize, usize)],
    tcp: bool,
) -> Result<Vec<Vec<Option<Peer>>>, TransportError> {
    let mut rows: Vec<Vec<Option<Peer>>> = (0..workers)
        .map(|_| (0..workers).map(|_| None).collect())
        .collect();
    for &(a, b) in edges {
        assert!(
            a != b && a < workers && b < workers,
            "bad mesh edge ({a},{b})"
        );
        let (pa, pb) = if tcp {
            Peer::tcp_pair(a as u32, b as u32)?
        } else {
            Peer::loopback_pair(a as u32, b as u32)
        };
        rows[a][b] = Some(pa);
        rows[b][a] = Some(pb);
    }
    Ok(rows)
}

fn bundle(spokes: Vec<Peer>, mut links: Vec<Vec<Option<Peer>>>) -> Vec<WorkerLinks> {
    spokes
        .into_iter()
        .enumerate()
        .map(|(w, coordinator)| WorkerLinks {
            coordinator,
            peers: std::mem::take(&mut links[w]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<(&'static str, Peer, Peer)> {
        let (la, lb) = Peer::loopback_pair(COORDINATOR, 0);
        let (ta, tb) = Peer::tcp_pair(COORDINATOR, 0).unwrap();
        vec![("loopback", la, lb), ("tcp", ta, tb)]
    }

    #[test]
    fn frames_flow_in_order_both_transports() {
        for (name, mut a, mut b) in pairs() {
            for i in 0..5u64 {
                a.send(2, i, format!("msg {i}").as_bytes()).unwrap();
            }
            for i in 0..5u64 {
                let f = b.recv().unwrap();
                assert_eq!(f.seq, i, "{name}: sequence");
                assert_eq!(f.payload, format!("msg {i}").into_bytes(), "{name}");
            }
            // Reply direction is independent.
            b.send(3, 9, b"up").unwrap();
            let f = a.recv().unwrap();
            assert_eq!((f.src, f.phase, f.epoch), (0, 3, 9), "{name}");
            assert!(
                a.bytes_sent() > 0 && b.bytes_received() == a.bytes_sent(),
                "{name}"
            );
        }
    }

    #[test]
    fn failed_timeout_set_surfaces_as_a_typed_error() {
        // A TCP peer whose socket rejects the new read timeout must say
        // so: silently keeping the old (or no) timeout would let a
        // dropped frame hang the lockstep protocol forever. Forcing the
        // rejection needs a dead descriptor, so close the socket out
        // from under the peer.
        let (mut a, b) = Peer::tcp_pair(COORDINATOR, 0).unwrap();
        if let Link::Tcp(s) = &a.link {
            use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
            // SAFETY: `a` is forgotten below, so the descriptor is
            // closed exactly once (here) and never reused by a double
            // close in `a`'s drop.
            drop(unsafe { OwnedFd::from_raw_fd(s.as_raw_fd()) });
        }
        let err = a
            .set_recv_timeout(Duration::from_millis(50))
            .expect_err("timeout set on a dead socket must fail");
        match &err {
            TransportError::Io { peer, detail } => {
                assert_eq!(*peer, 0, "the error names the remote peer");
                assert!(!detail.is_empty());
            }
            other => panic!("timeout failure surfaced as {other:?}"),
        }
        std::mem::forget(a);
        drop(b);
        // Loopback channels have no socket: arming always succeeds.
        let (mut la, _lb) = Peer::loopback_pair(COORDINATOR, 0);
        la.set_recv_timeout(Duration::from_millis(50)).unwrap();
    }

    #[test]
    fn dropped_peer_is_closed() {
        for (name, mut a, mut b) in pairs() {
            a.inject(Fault::Drop);
            a.send(1, 0, b"never arrives").unwrap();
            match b.recv() {
                Err(TransportError::Closed { peer }) => assert_eq!(peer, COORDINATOR, "{name}"),
                other => panic!("{name}: dropped peer surfaced as {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_frame_is_typed() {
        for (name, mut a, mut b) in pairs() {
            a.inject(Fault::Truncate);
            a.send(1, 0, b"a payload that gets cut").unwrap();
            match b.recv() {
                Err(TransportError::Frame {
                    err: FrameError::Truncated { .. },
                    ..
                }) => {}
                other => panic!("{name}: truncation surfaced as {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bit_is_typed_never_wrong_data() {
        // Exhaustive over loopback: every bit position of a frame, one
        // fresh channel pair per flip, must surface as a typed frame
        // error — never delivered data.
        let frame_bits = (sparse_alloc_graph::io::FRAME_HEADER_LEN + 4 + 8) * 8;
        for bit in 0..frame_bits {
            let (mut a, mut b) = Peer::loopback_pair(COORDINATOR, 0);
            a.inject(Fault::FlipBit { bit });
            a.send(1, 0, b"abcd").unwrap();
            match b.recv() {
                Err(TransportError::Frame { .. }) => {}
                Ok(f) => panic!("loopback: bit {bit} delivered {f:?}"),
                Err(e) => panic!("loopback: bit {bit} surfaced as {e:?}"),
            }
        }
        // Spot positions over TCP, with a bounded timeout: a flipped
        // length field makes the reader wait for bytes that never come,
        // which must become a typed timeout rather than a hang.
        for bit in [3usize, 90, 170, 290, 500] {
            let (mut a, mut b) = Peer::tcp_pair(COORDINATOR, 0).unwrap();
            b.set_recv_timeout(Duration::from_millis(150)).unwrap();
            a.inject(Fault::FlipBit { bit });
            a.send(1, 0, b"thirty-two bytes of payload data").unwrap();
            match b.recv() {
                Err(_) => {}
                Ok(f) => panic!("tcp: bit {bit} delivered {f:?}"),
            }
        }
    }

    #[test]
    fn reordered_delivery_is_out_of_order() {
        for (name, mut a, mut b) in pairs() {
            a.inject(Fault::Reorder);
            a.send(1, 0, b"first").unwrap();
            a.send(1, 0, b"second").unwrap();
            match b.recv() {
                Err(TransportError::OutOfOrder { expected, got, .. }) => {
                    assert_eq!((expected, got), (0, 1), "{name}");
                }
                other => panic!("{name}: reorder surfaced as {other:?}"),
            }
        }
    }

    #[test]
    fn recv_timeout_is_typed() {
        for (name, mut a, mut b) in pairs() {
            b.set_recv_timeout(Duration::from_millis(30)).unwrap();
            match b.recv() {
                Err(TransportError::Io { detail, .. }) => {
                    assert!(detail.contains("timed out"), "{name}: {detail}");
                }
                other => panic!("{name}: timeout surfaced as {other:?}"),
            }
            // The channel still works afterwards.
            a.send(1, 0, b"late").unwrap();
            assert_eq!(b.recv().unwrap().payload, b"late", "{name}");
        }
    }

    #[test]
    fn dropping_an_endpoint_closes_the_channel() {
        for (name, a, mut b) in pairs() {
            drop(a);
            match b.recv() {
                Err(TransportError::Closed { .. }) => {}
                other => panic!("{name}: dropped endpoint surfaced as {other:?}"),
            }
        }
    }

    #[test]
    fn transport_errors_roundtrip_the_wire() {
        let cases = vec![
            TransportError::Frame {
                peer: 2,
                err: FrameError::Truncated { wanted: 48, got: 7 },
            },
            TransportError::Frame {
                peer: 3,
                err: FrameError::Checksum {
                    expected: 0xdead,
                    found: 0xbeef,
                },
            },
            TransportError::Frame {
                peer: 1,
                err: FrameError::Version {
                    found: 9,
                    expected: 1,
                },
            },
            TransportError::Closed { peer: 5 },
            TransportError::OutOfOrder {
                peer: 0,
                expected: 3,
                got: 7,
            },
            TransportError::Io {
                peer: 4,
                detail: "recv timed out".into(),
            },
            TransportError::Protocol {
                peer: 6,
                detail: "census totals disagree".into(),
            },
        ];
        for e in cases {
            let bytes = e.encode();
            let back = TransportError::decode(&bytes).unwrap();
            assert_eq!(format!("{e}"), format!("{back}"), "roundtrip of {e:?}");
            assert_eq!(e.peer(), back.peer());
        }
        assert!(TransportError::decode(b"").is_err(), "empty NACK is typed");
        assert!(
            TransportError::decode(&[9, 0, 0, 0]).is_err(),
            "short NACK is typed"
        );
    }

    #[test]
    fn flight_recorder_witnesses_frames_and_faults() {
        let (mut a, mut b) = Peer::loopback_pair(COORDINATOR, 0);
        a.send(3, 1, b"healthy").unwrap();
        b.recv().unwrap();
        a.inject(Fault::FlipBit { bit: 200 });
        a.send(4, 1, b"corrupted").unwrap();
        assert!(b.recv().is_err());
        // The sender's ring names the injected fault; the receiver's ring
        // names the detected one.
        let mut sent = String::new();
        a.flight().dump_with(|_| "?", &mut sent);
        assert!(sent.contains("injected fault: bit flipped"), "{sent}");
        let mut got = String::new();
        b.flight().dump_with(|_| "?", &mut got);
        assert!(got.contains("bad frame off the wire"), "{got}");
        assert!(got.contains("recv phase"), "{got}");
    }

    #[test]
    fn mesh_snapshot_reads_the_same_counters_as_the_peers() {
        let (mut mesh, mut ends) = Mesh::loopback(2);
        mesh.send_to(0, 1, 0, b"to worker zero").unwrap();
        mesh.send_to(1, 1, 0, b"to worker one, longer").unwrap();
        ends[0].recv().unwrap();
        ends[1].recv().unwrap();
        ends[1].send(2, 0, b"reply").unwrap();
        mesh.recv_from(1).unwrap();
        let snap = mesh.metrics_snapshot();
        assert_eq!(snap.peers.len(), 2);
        assert_eq!(snap.peers[0].peer, 0);
        assert_eq!(snap.peers[1].peer, 1);
        assert_eq!(snap.peers[0].frames_sent, 1);
        assert_eq!(snap.peers[1].frames_received, 1);
        let (sent, recv) = mesh.bytes_moved();
        assert_eq!(
            snap.peers.iter().map(|p| p.bytes_sent).sum::<u64>(),
            sent,
            "snapshot and mesh totals agree"
        );
        assert_eq!(
            snap.peers.iter().map(|p| p.bytes_received).sum::<u64>(),
            recv
        );
        assert_eq!(snap.total_frames(), 3);
    }

    #[test]
    fn only_recv_timeouts_are_transient() {
        assert!(TransportError::Io {
            peer: 1,
            detail: "recv timed out after 500ms".into()
        }
        .is_transient());
        for e in [
            TransportError::Io {
                peer: 1,
                detail: "connection refused".into(),
            },
            TransportError::Closed { peer: 1 },
            TransportError::OutOfOrder {
                peer: 1,
                expected: 0,
                got: 2,
            },
            TransportError::Frame {
                peer: 1,
                err: FrameError::Truncated { wanted: 48, got: 7 },
            },
            TransportError::Protocol {
                peer: 1,
                detail: "census totals disagree".into(),
            },
        ] {
            assert!(!e.is_transient(), "{e} must not be retryable in place");
        }
    }

    #[test]
    fn scheduled_fault_fires_every_nth_send_without_being_consumed() {
        let (mut a, mut b) = Peer::loopback_pair(COORDINATOR, 0);
        a.inject(Fault::Every {
            n: 3,
            fault: Box::new(Fault::FlipBit { bit: 200 }),
        });
        let mut outcomes = Vec::new();
        for i in 0..9u64 {
            a.send(1, i, b"payload").unwrap();
            outcomes.push(b.recv().is_ok());
        }
        // The first two frames are clean; the 3rd send fires the
        // schedule and corrupts the frame, and because a corrupted frame
        // burns a sequence number, every later frame on the same channel
        // is out of order — exactly why the serving layer respawns on a
        // fresh channel instead of limping on.
        assert_eq!(&outcomes[..3], &[true, true, false]);
        assert!(outcomes[3..].iter().all(|ok| !ok));
        // The schedule kept firing (sends 3, 6, 9): the sender's flight
        // ring witnessed three injected flips, not one.
        let mut dump = String::new();
        a.flight().dump_with(|_| "?", &mut dump);
        assert_eq!(dump.matches("bit flipped in transit").count(), 3);
    }

    #[test]
    fn one_shot_faults_take_precedence_over_the_schedule() {
        let (mut a, mut b) = Peer::loopback_pair(COORDINATOR, 0);
        a.inject(Fault::Every {
            n: 1,
            fault: Box::new(Fault::FlipBit { bit: 200 }),
        });
        a.inject(Fault::Drop);
        // The one-shot Drop wins and the schedule does not tick.
        a.send(1, 0, b"dropped").unwrap();
        assert!(matches!(b.recv(), Err(TransportError::Closed { .. })));
    }

    #[test]
    fn mesh_respawn_replaces_a_dead_channel_and_rearms_faults() {
        let (mut mesh, mut ends) = Mesh::loopback(2);
        mesh.send_to(0, 1, 0, b"healthy").unwrap();
        ends[0].recv().unwrap();

        // Kill the channel to worker 0.
        mesh.peer_mut(0).inject(Fault::Drop);
        mesh.send_to(0, 1, 0, b"lost").unwrap();
        assert!(matches!(ends[0].recv(), Err(TransportError::Closed { .. })));

        // Respawn: the old worker end sees Closed, the new pair works
        // with fresh sequence numbers.
        let mut new_end = mesh.respawn(0, false).unwrap();
        assert!(matches!(ends[0].recv(), Err(TransportError::Closed { .. })));
        mesh.send_to(0, 2, 1, b"reborn").unwrap();
        let f = new_end.recv().unwrap();
        assert_eq!((f.seq, &f.payload[..]), (0, &b"reborn"[..]));
        new_end.send(2, 1, b"ack").unwrap();
        assert_eq!(mesh.recv_from(0).unwrap().payload, b"ack");
        // Worker 1's channel was untouched.
        mesh.send_to(1, 1, 0, b"still here").unwrap();
        assert_eq!(ends[1].recv().unwrap().payload, b"still here");

        // Fault-on-respawn: the queued fault corrupts the replacement
        // channel's first frame.
        mesh.arm_on_respawn(0, Fault::Drop);
        let mut third_end = mesh.respawn(0, false).unwrap();
        mesh.send_to(0, 3, 2, b"doomed").unwrap();
        assert!(matches!(
            third_end.recv(),
            Err(TransportError::Closed { .. })
        ));
    }

    #[test]
    fn mesh_star_reaches_every_worker() {
        let (mut mesh, ends) = Mesh::loopback(4);
        let handles: Vec<_> = ends
            .into_iter()
            .enumerate()
            .map(|(w, mut p)| {
                std::thread::spawn(move || {
                    let f = p.recv().unwrap();
                    p.send(f.phase, f.epoch, &[f.payload[0] + w as u8]).unwrap();
                })
            })
            .collect();
        for w in 0..4 {
            mesh.send_to(w, 1, 0, &[10]).unwrap();
        }
        for w in 0..4 {
            let f = mesh.recv_from(w).unwrap();
            assert_eq!(f.payload, vec![10 + w as u8]);
            assert_eq!(f.src, w as u32);
        }
        for h in handles {
            h.join().unwrap();
        }
        let (sent, recv) = mesh.frames_moved();
        assert_eq!((sent, recv), (4, 4));
    }

    #[test]
    fn fault_wire_roundtrip() {
        let faults = [
            Fault::Drop,
            Fault::Truncate,
            Fault::FlipBit { bit: 123 },
            Fault::Reorder,
            Fault::Every {
                n: 3,
                fault: Box::new(Fault::FlipBit { bit: 7 }),
            },
            Fault::Every {
                n: 2,
                fault: Box::new(Fault::Every {
                    n: 5,
                    fault: Box::new(Fault::Drop),
                }),
            },
        ];
        for f in &faults {
            let mut w = ByteWriter::default();
            f.encode(&mut w);
            let bytes = w.into_bytes();
            let got = Fault::decode(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(&got, f);
        }
        // Hostile payloads: unknown tag and unbounded nesting are typed
        // parse errors, never panics or stack overflows.
        let mut w = ByteWriter::default();
        w.put_u32(9);
        assert!(Fault::decode(&mut ByteReader::new(&w.into_bytes())).is_err());
        let mut w = ByteWriter::default();
        for _ in 0..64 {
            w.put_u32(4);
            w.put_u64(1);
        }
        w.put_u32(0);
        assert!(Fault::decode(&mut ByteReader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn poll_recv_idle_frame_and_closed_both_transports() {
        for (name, mut a, mut b) in pairs() {
            // Idle: no frame within the window, channel unharmed.
            assert!(
                b.poll_recv(Duration::from_millis(2)).unwrap().is_none(),
                "{name}: idle poll"
            );
            // A queued frame is picked up whole, with normal sequencing.
            a.send(2, 7, b"over the top").unwrap();
            a.send(4, 7, b"and again").unwrap();
            let f = b.poll_recv(Duration::from_millis(500)).unwrap().unwrap();
            assert_eq!(
                (f.phase, f.seq, &f.payload[..]),
                (2, 0, &b"over the top"[..]),
                "{name}"
            );
            let f = b.poll_recv(Duration::from_millis(500)).unwrap().unwrap();
            assert_eq!((f.phase, f.seq), (4, 1), "{name}");
            // Blocking recv still works after polls (stream position and
            // sequence tracking are intact).
            a.send(6, 7, b"blocking").unwrap();
            assert_eq!(b.recv().unwrap().payload, b"blocking");
            // A closed channel surfaces as typed Closed, not idle.
            drop(a);
            let got = loop {
                match b.poll_recv(Duration::from_millis(50)) {
                    Ok(None) => continue, // close may race the poll
                    other => break other,
                }
            };
            assert!(
                matches!(got, Err(TransportError::Closed { .. })),
                "{name}: got {got:?}"
            );
        }
    }

    #[test]
    fn p2p_mesh_links_every_pair_both_transports() {
        for tcp in [false, true] {
            let edges = Mesh::all_pairs(3);
            assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
            let (mut mesh, mut links) = if tcp {
                Mesh::tcp_mesh(3, &edges).unwrap()
            } else {
                Mesh::loopback_mesh(3, &edges)
            };
            for (w, l) in links.iter().enumerate() {
                assert_eq!(l.shard(), w as u32);
                assert_eq!(
                    l.connected(),
                    (0..3u32).filter(|&s| s != w as u32).collect::<Vec<_>>()
                );
            }
            // Worker 0 talks straight to worker 2; the coordinator spoke
            // still works and never saw the bytes.
            let (mut l0, mut l2) = {
                let mut it = links.drain(..);
                let l0 = it.next().unwrap();
                let _l1 = it.next().unwrap();
                let l2 = it.next().unwrap();
                (l0, l2)
            };
            l0.peer_to(2).unwrap().send(16, 1, b"direct").unwrap();
            let f = l2.peer_to(0).unwrap().recv().unwrap();
            assert_eq!((f.src, &f.payload[..]), (0, &b"direct"[..]));
            assert!(l0.peer_bytes_moved() > 0);
            assert!(l2.peer_bytes_moved() > 0);
            mesh.send_to(0, 1, 0, b"spoke").unwrap();
            assert_eq!(l0.coordinator.recv().unwrap().payload, b"spoke");
            let (sent, _) = mesh.frames_moved();
            assert_eq!(sent, 1, "coordinator never carried the direct frame");
        }
    }

    #[test]
    fn partial_mesh_leaves_unlisted_pairs_unconnected() {
        let (_mesh, mut links) = Mesh::loopback_mesh(3, &[(0, 2)]);
        assert!(links[0].peer_to(1).is_none());
        assert!(links[1].peer_to(0).is_none());
        assert!(links[1].peer_to(2).is_none());
        assert!(links[0].peer_to(2).is_some());
        assert_eq!(links[1].connected(), Vec::<u32>::new());
        assert_eq!(links[1].peer_bytes_moved(), 0);
    }

    #[test]
    fn peer_link_faults_surface_typed_mid_mesh() {
        // Faults arm on worker↔worker channels exactly as on spokes.
        let (_mesh, mut links) = Mesh::loopback_mesh(2, &Mesh::all_pairs(2));
        let mut l1 = links.pop().unwrap();
        let mut l0 = links.pop().unwrap();
        l0.peer_to(1).unwrap().inject(Fault::FlipBit { bit: 77 });
        l0.peer_to(1)
            .unwrap()
            .send(18, 0, b"handoff payload")
            .unwrap();
        assert!(matches!(
            l1.peer_to(0).unwrap().recv(),
            Err(TransportError::Frame { peer: 0, .. })
        ));
    }

    #[test]
    fn rebuild_p2p_replaces_every_channel() {
        let (mut mesh, links) = Mesh::loopback_mesh(2, &Mesh::all_pairs(2));
        mesh.set_recv_timeout(Duration::from_millis(250)).unwrap();
        let mut fresh = mesh.rebuild_p2p(false).unwrap();
        // Old spokes read as closed — that is what makes the old workers
        // exit and drop their bundles...
        let mut it = links.into_iter();
        let mut l0 = it.next().unwrap();
        let mut l1 = it.next().unwrap();
        assert!(matches!(
            l0.coordinator.recv(),
            Err(TransportError::Closed { .. })
        ));
        assert!(matches!(
            l1.coordinator.recv(),
            Err(TransportError::Closed { .. })
        ));
        // ...and a dropped bundle closes its worker↔worker ends, so a
        // mate still blocked on one sees typed Closed, not a hang.
        drop(l0);
        assert!(matches!(
            l1.peer_to(0).unwrap().recv(),
            Err(TransportError::Closed { .. })
        ));
        // New spokes and peer links carry frames with reset sequences.
        mesh.send_to(1, 1, 5, b"fresh spoke").unwrap();
        let f = fresh[1].coordinator.recv().unwrap();
        assert_eq!((f.seq, &f.payload[..]), (0, &b"fresh spoke"[..]));
        let mut f1 = fresh.pop().unwrap();
        let mut f0 = fresh.pop().unwrap();
        f0.peer_to(1).unwrap().send(18, 5, b"fresh link").unwrap();
        assert_eq!(f1.peer_to(0).unwrap().recv().unwrap().seq, 0);
    }
}

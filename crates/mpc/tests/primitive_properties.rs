//! Property-based tests of the MPC primitives against sequential oracles:
//! whatever the machine count, space budget, or input shape, the
//! distributed result must equal the obvious single-machine computation,
//! and accounting must balance.

use proptest::prelude::*;
use sparse_alloc_mpc::primitives::ball::{bfs_ball, grow_balls, BallInput};
use sparse_alloc_mpc::primitives::{aggregate_by_key, broadcast_value, sort_by_key};
use sparse_alloc_mpc::{Cluster, MpcConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_matches_sequential(
        items in proptest::collection::vec(0u32..10_000, 0..400),
        machines in 1usize..12,
    ) {
        let mut expect = items.clone();
        expect.sort_unstable();
        let c = Cluster::from_items(MpcConfig::lenient(machines, usize::MAX / 4), items).unwrap();
        let c = sort_by_key(c, |&x| x).unwrap();
        let (got, ledger) = c.into_items();
        prop_assert_eq!(got, expect);
        if machines > 1 {
            prop_assert!(ledger.rounds >= 3, "sample sort is ≥ 3 rounds");
        }
    }

    #[test]
    fn aggregate_matches_hashmap(
        pairs in proptest::collection::vec((0u32..50, 1u64..100), 0..300),
        machines in 1usize..10,
    ) {
        let mut expect: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for &(k, v) in &pairs {
            *expect.entry(k).or_default() += v;
        }
        let c = Cluster::from_items(MpcConfig::lenient(machines, usize::MAX / 4), pairs).unwrap();
        let c = aggregate_by_key(c, |a, b| a + b).unwrap();
        let (got, _) = c.into_items();
        let got: std::collections::HashMap<u32, u64> = got.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn exchange_conserves_items(
        items in proptest::collection::vec(0u32..1_000, 0..300),
        machines in 1usize..8,
        salt in 0u32..100,
    ) {
        let mut expect = items.clone();
        expect.sort_unstable();
        let c = Cluster::from_items(MpcConfig::lenient(machines, usize::MAX / 4), items).unwrap();
        let c = c
            .exchange_by("scatter", |&x| ((x.wrapping_mul(salt.wrapping_add(7))) as usize) % machines)
            .unwrap();
        let (mut got, ledger) = c.into_items();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(ledger.rounds, 1);
    }

    #[test]
    fn broadcast_reaches_every_machine(
        machines in 1usize..20,
        space in 2usize..64,
        value in proptest::collection::vec(0u32..10, 0..6),
    ) {
        let mut c = Cluster::from_items(
            MpcConfig::lenient(machines, space),
            Vec::<u32>::new(),
        ).unwrap();
        let copies = broadcast_value(&mut c, &value).unwrap();
        prop_assert_eq!(copies.len(), machines);
        for copy in &copies {
            prop_assert_eq!(copy, &value);
        }
        // Tree depth: at most ⌈log₂ machines⌉ + 1 rounds even at fan-out 2.
        let depth_bound = (machines as f64).log2().ceil() as usize + 1;
        prop_assert!(c.ledger().rounds <= depth_bound.max(1));
    }

    #[test]
    fn balls_match_bfs(
        n in 2u32..40,
        degree in 1u32..4,
        radius in 0u32..5,
        machines in 1usize..6,
        seed in 0u32..1000,
    ) {
        // Deterministic pseudo-random bounded-degree digraph.
        let adjacency: Vec<BallInput> = (0..n)
            .map(|v| BallInput {
                vertex: v,
                neighbors: (0..degree)
                    .map(|i| (v.wrapping_mul(31).wrapping_add(i * 17 + seed)) % n)
                    .collect(),
            })
            .collect();
        let (balls, _) = grow_balls(
            MpcConfig::lenient(machines, usize::MAX / 4),
            adjacency.clone(),
            radius,
        ).unwrap();
        prop_assert_eq!(balls.len(), n as usize);
        for ball in &balls {
            // Implementation grows to the next power of two ≥ radius.
            let grown = ball.radius;
            prop_assert!(grown >= radius);
            prop_assert_eq!(&ball.members, &bfs_ball(&adjacency, ball.center, grown));
        }
    }

    #[test]
    fn words_accounting_balances(
        items in proptest::collection::vec((0u32..100, 0u64..100), 1..200),
        machines in 2usize..8,
    ) {
        let n_words: usize = items.len() * 2;
        let c = Cluster::from_items(MpcConfig::lenient(machines, usize::MAX / 4), items).unwrap();
        // Route everything to machine 0: words moved = total item words.
        let c = c.exchange_by("funnel", |_| 0).unwrap();
        let ledger = c.ledger();
        prop_assert_eq!(ledger.words_total, n_words as u64);
        prop_assert_eq!(ledger.peak_storage, n_words);
        prop_assert!(ledger.peak_round_io <= n_words);
    }
}

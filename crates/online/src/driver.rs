//! The arrival loop: trait for online decision rules and the
//! feasibility-enforcing executor.

use sparse_alloc_graph::{Assignment, Bipartite, LeftId, RightId};

/// Mutable run state visible to an [`OnlineAllocator`] when it decides.
///
/// The driver owns this; allocators only read it. Loads are maintained by
/// the driver so a buggy decision rule cannot corrupt feasibility
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct OnlineState {
    loads: Vec<u64>,
    assignment: Assignment,
    arrivals_seen: usize,
}

impl OnlineState {
    fn new(g: &Bipartite) -> Self {
        OnlineState {
            loads: vec![0; g.n_right()],
            assignment: Assignment::empty(g.n_left()),
            arrivals_seen: 0,
        }
    }

    /// Current load (matched partners) of right vertex `v`.
    #[inline]
    pub fn load(&self, v: RightId) -> u64 {
        self.loads[v as usize]
    }

    /// Residual capacity `C_v − load_v` of right vertex `v`.
    #[inline]
    pub fn residual(&self, g: &Bipartite, v: RightId) -> u64 {
        g.capacity(v) - self.loads[v as usize]
    }

    /// Fraction of `C_v` consumed so far, in `[0, 1]`.
    ///
    /// [`Bipartite`] construction rejects zero capacities, but graphs can
    /// reach the driver from external deserializers; an isolated or
    /// degenerate right vertex reports 0.0 instead of dividing by zero.
    #[inline]
    pub fn fill_fraction(&self, g: &Bipartite, v: RightId) -> f64 {
        let c = g.capacity(v);
        if c == 0 {
            0.0
        } else {
            self.loads[v as usize] as f64 / c as f64
        }
    }

    /// Number of arrivals processed so far (the decision for the current
    /// arrival sees the count *excluding* it).
    #[inline]
    pub fn arrivals_seen(&self) -> usize {
        self.arrivals_seen
    }

    /// The partial assignment built so far.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }
}

/// An online decision rule.
///
/// The driver calls [`OnlineAllocator::reset`] once, then
/// [`OnlineAllocator::choose`] for every arriving left vertex in order.
/// Returning `Some(v)` *requests* the match; the driver verifies that `v` is
/// a neighbor of `u` with residual capacity and panics otherwise — an
/// infeasible request is a bug in the decision rule, not a rejection.
pub trait OnlineAllocator {
    /// Short name used in reports and experiment tables.
    fn name(&self) -> &'static str;

    /// (Re-)initialize internal state for a run on `g`.
    fn reset(&mut self, g: &Bipartite);

    /// Decide the match for arriving vertex `u`, or `None` to reject.
    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId>;
}

/// Run `algo` over the arrival sequence `order` and return the final
/// assignment.
///
/// `order` must be a permutation of a *subset* of `0..n_left` without
/// repeats (prefixes of a permutation model truncated streams).
///
/// # Panics
/// Panics if `order` repeats a vertex or the allocator requests an
/// infeasible match.
pub fn run_online(g: &Bipartite, order: &[LeftId], algo: &mut dyn OnlineAllocator) -> Assignment {
    let mut state = OnlineState::new(g);
    let mut seen = vec![false; g.n_left()];
    algo.reset(g);
    for &u in order {
        assert!(
            !std::mem::replace(&mut seen[u as usize], true),
            "arrival order repeats left vertex {u}"
        );
        if let Some(v) = algo.choose(g, &state, u) {
            assert!(
                g.left_neighbors(u).contains(&v),
                "{}: requested non-edge ({u}, {v})",
                algo.name()
            );
            assert!(
                state.residual(g, v) > 0,
                "{}: requested saturated right vertex {v} for arrival {u}",
                algo.name()
            );
            state.loads[v as usize] += 1;
            state.assignment.mate[u as usize] = Some(v);
        }
        state.arrivals_seen += 1;
    }
    state.assignment
}

/// Value and competitive ratio of one online run against a known optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Allocator name.
    pub name: &'static str,
    /// `|M|` achieved by the online run.
    pub value: u64,
    /// The offline optimum used as denominator.
    pub opt: u64,
    /// `value / opt` (1.0 for an empty instance).
    pub ratio: f64,
}

/// Run an allocator and package the result against a known `opt`.
pub fn run_report(
    g: &Bipartite,
    order: &[LeftId],
    algo: &mut dyn OnlineAllocator,
    opt: u64,
) -> OnlineReport {
    let value = run_online(g, order, algo).size() as u64;
    OnlineReport {
        name: algo.name(),
        value,
        opt,
        ratio: if opt == 0 {
            1.0
        } else {
            value as f64 / opt as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::FirstFit;
    use sparse_alloc_graph::BipartiteBuilder;

    fn path3() -> Bipartite {
        // u0 — v0 — u1 — v1
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        b.add_edge(1, 1);
        b.build_with_uniform_capacity(1).unwrap()
    }

    #[test]
    fn executor_applies_choices() {
        let g = path3();
        let a = run_online(&g, &[0, 1], &mut FirstFit::new());
        a.validate(&g).unwrap();
        assert_eq!(a.size(), 2);
        assert_eq!(a.mate[0], Some(0));
        assert_eq!(a.mate[1], Some(1));
    }

    #[test]
    fn truncated_stream_is_allowed() {
        let g = path3();
        let a = run_online(&g, &[1], &mut FirstFit::new());
        assert_eq!(a.size(), 1);
        assert_eq!(a.mate[0], None);
    }

    #[test]
    #[should_panic(expected = "repeats left vertex")]
    fn repeated_arrival_panics() {
        let g = path3();
        run_online(&g, &[0, 0], &mut FirstFit::new());
    }

    #[test]
    #[should_panic(expected = "requested non-edge")]
    fn infeasible_choice_panics() {
        struct Liar;
        impl OnlineAllocator for Liar {
            fn name(&self) -> &'static str {
                "liar"
            }
            fn reset(&mut self, _: &Bipartite) {}
            fn choose(&mut self, _: &Bipartite, _: &OnlineState, _: LeftId) -> Option<RightId> {
                Some(1) // (0, 1) is not an edge of path3
            }
        }
        run_online(&path3(), &[0], &mut Liar);
    }

    #[test]
    fn report_ratio() {
        let g = path3();
        let r = run_report(&g, &[0, 1], &mut FirstFit::new(), 2);
        assert_eq!(r.value, 2);
        assert!((r.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fill_fraction_on_isolated_right_vertices() {
        // Right vertices 1 and 2 are isolated; every fill fraction must be
        // finite and the run must not touch them.
        let mut b = BipartiteBuilder::new(2, 3);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        let g = b.build(vec![2, 1, 5]).unwrap();
        let a = run_online(&g, &[0, 1], &mut FirstFit::new());
        assert_eq!(a.size(), 2);
        // Re-derive the state to probe fill fractions.
        let mut state = OnlineState::new(&g);
        state.loads[0] = 2;
        for v in 0..g.n_right() as u32 {
            let f = state.fill_fraction(&g, v);
            assert!(f.is_finite(), "fill_fraction({v}) = {f}");
        }
        assert_eq!(state.fill_fraction(&g, 0), 1.0);
        assert_eq!(state.fill_fraction(&g, 1), 0.0);
    }

    #[test]
    fn run_report_on_edgeless_and_empty_graphs() {
        // No edges ⇒ OPT = 0 ⇒ ratio is defined as 1.0, not 0/0.
        let g = BipartiteBuilder::new(3, 2)
            .build_with_uniform_capacity(1)
            .unwrap();
        let r = run_report(&g, &[0, 1, 2], &mut FirstFit::new(), 0);
        assert_eq!(r.value, 0);
        assert_eq!(r.ratio, 1.0);
        assert!(r.ratio.is_finite());

        // The fully empty graph (no vertices at all) runs cleanly too.
        let g = BipartiteBuilder::new(0, 0).build(vec![]).unwrap();
        let r = run_report(&g, &[], &mut FirstFit::new(), 0);
        assert_eq!(r.value, 0);
        assert_eq!(r.ratio, 1.0);
    }
}

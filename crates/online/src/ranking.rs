//! RANKING (Karp–Vazirani–Vazirani): the optimal randomized algorithm for
//! online bipartite matching.
//!
//! Offline, draw one uniformly random permutation (rank) of the right
//! side; each arrival is matched to its *highest-ranked* neighbor with
//! residual capacity. For unit capacities RANKING is `1 − 1/e`
//! competitive against adversarial arrival orders — optimal among all
//! online algorithms — and unlike BALANCE the guarantee does not need
//! large capacities. For general capacities we use the natural extension
//! that ranks *slots* implicitly by vertex rank (each vertex keeps its one
//! rank for all its capacity slots).
//!
//! The single offline coin distinguishes it from [`crate::greedy::RandomFit`],
//! which re-randomizes per arrival and is only 1/2-competitive in the
//! worst case.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparse_alloc_graph::{Bipartite, LeftId, RightId};

use crate::driver::{OnlineAllocator, OnlineState};

/// The RANKING rule: fixed random priority over the right side, chosen at
/// [`OnlineAllocator::reset`] from the seed.
#[derive(Debug, Clone)]
pub struct Ranking {
    seed: u64,
    /// `rank[v]` = position of `v` in the random permutation (lower wins).
    rank: Vec<u32>,
}

impl Ranking {
    /// A RANKING rule with the given seed for the offline permutation.
    pub fn new(seed: u64) -> Self {
        Ranking {
            seed,
            rank: Vec::new(),
        }
    }

    /// The rank assigned to right vertex `v` in the current run (valid
    /// after `reset`).
    pub fn rank_of(&self, v: RightId) -> u32 {
        self.rank[v as usize]
    }
}

impl OnlineAllocator for Ranking {
    fn name(&self) -> &'static str {
        "ranking"
    }

    fn reset(&mut self, g: &Bipartite) {
        let mut perm: Vec<u32> = (0..g.n_right() as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(self.seed));
        self.rank = vec![0; g.n_right()];
        for (pos, &v) in perm.iter().enumerate() {
            self.rank[v as usize] = pos as u32;
        }
    }

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        g.left_neighbors(u)
            .iter()
            .copied()
            .filter(|&v| state.residual(g, v) > 0)
            .min_by_key(|&v| self.rank[v as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::greedy_trap;
    use crate::driver::run_online;
    use sparse_alloc_flow::greedy::is_maximal;
    use sparse_alloc_graph::generators::random_bipartite;

    #[test]
    fn feasible_and_maximal() {
        for seed in 0..6 {
            let g = random_bipartite(80, 40, 400, 2, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            let a = run_online(&g, &order, &mut Ranking::new(seed));
            a.validate(&g).unwrap();
            assert!(is_maximal(&g, &a));
        }
    }

    #[test]
    fn permutation_is_seed_deterministic() {
        let g = random_bipartite(50, 30, 200, 1, 3).graph;
        let order: Vec<u32> = (0..g.n_left() as u32).collect();
        let a = run_online(&g, &order, &mut Ranking::new(9));
        let b = run_online(&g, &order, &mut Ranking::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn expected_ratio_beats_half_on_the_trap() {
        // On the greedy trap, first-fit is exactly 1/2; RANKING averaged
        // over its offline coin must do strictly better (→ 3/4 here: the
        // permutation picks the "right" advertiser half the time).
        let inst = greedy_trap(40);
        let trials = 64;
        let total: usize = (0..trials)
            .map(|s| run_online(&inst.graph, &inst.order, &mut Ranking::new(s)).size())
            .sum();
        let mean_ratio = total as f64 / trials as f64 / inst.opt as f64;
        assert!(
            mean_ratio > 0.6,
            "RANKING mean ratio {mean_ratio} not above 1/2"
        );
    }

    #[test]
    fn rank_accessor_reports_permutation() {
        let g = random_bipartite(10, 8, 30, 1, 1).graph;
        let mut r = Ranking::new(4);
        r.reset(&g);
        let mut seen: Vec<u32> = (0..8u32).map(|v| r.rank_of(v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }
}

//! BALANCE (water-filling): match each arrival to the feasible neighbor
//! with the smallest fill fraction `load_v / C_v`.
//!
//! Kalyanasundaram–Pruhs introduced the rule for b-matching; MSVV's AdWords
//! analysis shows it is `1 − 1/e` competitive as capacities grow, which is
//! optimal for deterministic algorithms. Intuitively BALANCE hedges: it
//! keeps all advertisers equally available, so an adversary cannot starve a
//! specific one the way it starves first-fit.

use sparse_alloc_graph::{Bipartite, LeftId, RightId};

use crate::driver::{OnlineAllocator, OnlineState};

/// The water-filling rule. Fill fractions are compared exactly by
/// cross-multiplication (no float ties); ties break toward the larger
/// residual, then the smaller index.
#[derive(Debug, Clone, Default)]
pub struct Balance;

impl Balance {
    /// A fresh BALANCE rule.
    pub fn new() -> Self {
        Balance
    }
}

/// Exact comparison `load_a/cap_a < load_b/cap_b` over `u64` operands.
#[inline]
fn frac_lt(load_a: u64, cap_a: u64, load_b: u64, cap_b: u64) -> bool {
    (load_a as u128) * (cap_b as u128) < (load_b as u128) * (cap_a as u128)
}

impl OnlineAllocator for Balance {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn reset(&mut self, _: &Bipartite) {}

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        let mut best: Option<RightId> = None;
        for &v in g.left_neighbors(u) {
            if state.residual(g, v) == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (lv, cv) = (state.load(v), g.capacity(v));
                    let (lb, cb) = (state.load(b), g.capacity(b));
                    if frac_lt(lv, cv, lb, cb) {
                        true
                    } else if frac_lt(lb, cb, lv, cv) {
                        false
                    } else {
                        let (rv, rb) = (state.residual(g, v), state.residual(g, b));
                        rv > rb || (rv == rb && v < b)
                    }
                }
            };
            if better {
                best = Some(v);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_online;
    use sparse_alloc_flow::greedy::is_maximal;
    use sparse_alloc_graph::generators::random_bipartite;
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn frac_lt_is_exact() {
        assert!(frac_lt(1, 3, 1, 2)); // 1/3 < 1/2
        assert!(!frac_lt(1, 2, 1, 3));
        assert!(!frac_lt(2, 4, 1, 2)); // equal fractions
        assert!(frac_lt(0, 7, 1, 1_000_000_000));
    }

    #[test]
    fn balance_is_maximal() {
        for seed in 0..6 {
            let g = random_bipartite(80, 50, 400, 3, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            let a = run_online(&g, &order, &mut Balance::new());
            a.validate(&g).unwrap();
            assert!(is_maximal(&g, &a));
        }
    }

    #[test]
    fn balance_spreads_load() {
        // Two advertisers with capacity 4 each; 4 arrivals adjacent to both.
        // First-fit piles all 4 onto advertiser 0; BALANCE alternates 2/2.
        let mut b = BipartiteBuilder::new(4, 2);
        for u in 0..4 {
            b.add_edge(u, 0);
            b.add_edge(u, 1);
        }
        let g = b.build_with_uniform_capacity(4).unwrap();
        let order: Vec<u32> = (0..4).collect();
        let a = run_online(&g, &order, &mut Balance::new());
        let loads = a.right_loads(2);
        assert_eq!(loads, vec![2, 2]);
    }

    #[test]
    fn balance_respects_heterogeneous_capacities() {
        // Capacities 9 vs 1: water-filling interleaves so that the final
        // loads are proportional to capacity and nothing is rejected.
        let mut b = BipartiteBuilder::new(10, 2);
        for u in 0..10 {
            b.add_edge(u, 0);
            b.add_edge(u, 1);
        }
        let g = b.build(vec![9, 1]).unwrap();
        let order: Vec<u32> = (0..10).collect();
        let a = run_online(&g, &order, &mut Balance::new());
        assert_eq!(a.size(), 10);
        let loads = a.right_loads(2);
        assert_eq!(loads, vec![9, 1]);
    }
}

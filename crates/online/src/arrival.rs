//! Arrival-order models.
//!
//! The adversarial-order constructions live in [`crate::adversarial`]; this
//! module provides the generic orders used on arbitrary instances:
//! natural, reversed, seeded-random (the random-order / secretary model),
//! and degree-sorted (hard arrivals first/last).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparse_alloc_graph::{Bipartite, LeftId};

/// Natural index order `0, 1, …, n_left−1`.
pub fn natural(g: &Bipartite) -> Vec<LeftId> {
    (0..g.n_left() as u32).collect()
}

/// Reversed index order.
pub fn reversed(g: &Bipartite) -> Vec<LeftId> {
    (0..g.n_left() as u32).rev().collect()
}

/// Uniformly random order (the random-order model), seeded.
pub fn random(g: &Bipartite, seed: u64) -> Vec<LeftId> {
    let mut order = natural(g);
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    order
}

/// Ascending left degree — flexible arrivals last. Ties break by index so
/// the order is deterministic.
pub fn by_degree_ascending(g: &Bipartite) -> Vec<LeftId> {
    let mut order = natural(g);
    order.sort_by_key(|&u| (g.left_degree(u), u));
    order
}

/// Descending left degree — flexible arrivals first (the friendly order:
/// constrained vertices still find room).
pub fn by_degree_descending(g: &Bipartite) -> Vec<LeftId> {
    let mut order = natural(g);
    order.sort_by_key(|&u| (std::cmp::Reverse(g.left_degree(u)), u));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::generators::random_bipartite;

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&u| {
                let fresh = !seen[u as usize];
                seen[u as usize] = true;
                fresh
            })
    }

    #[test]
    fn all_orders_are_permutations() {
        let g = random_bipartite(64, 32, 200, 2, 5).graph;
        for order in [
            natural(&g),
            reversed(&g),
            random(&g, 1),
            random(&g, 2),
            by_degree_ascending(&g),
            by_degree_descending(&g),
        ] {
            assert!(is_permutation(&order, g.n_left()));
        }
    }

    #[test]
    fn random_is_seeded() {
        let g = random_bipartite(64, 32, 200, 2, 5).graph;
        assert_eq!(random(&g, 9), random(&g, 9));
        assert_ne!(random(&g, 9), random(&g, 10));
    }

    #[test]
    fn degree_orders_are_sorted() {
        let g = random_bipartite(64, 32, 200, 2, 5).graph;
        let asc = by_degree_ascending(&g);
        assert!(asc
            .windows(2)
            .all(|w| g.left_degree(w[0]) <= g.left_degree(w[1])));
        let desc = by_degree_descending(&g);
        assert!(desc
            .windows(2)
            .all(|w| g.left_degree(w[0]) >= g.left_degree(w[1])));
    }
}

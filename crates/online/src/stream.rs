//! Session models: turning an arrival order into a churn stream.
//!
//! The arrival orders of [`crate::arrival`] model the classical online
//! setting — every left vertex arrives once and stays forever. Real
//! serving workloads churn: impressions expire, jobs finish, clients
//! disconnect. This module lifts an arrival order into a stream of
//! [`SessionEvent`]s with departures, which the dynamic-allocation engine
//! (`sparse-alloc-dynamic`) consumes as graph updates via its adapter.

use sparse_alloc_graph::{Bipartite, LeftId};

/// One event of a churn stream over a fixed left-vertex universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Left vertex `u` (re-)enters the system with its full edge set.
    Arrive(LeftId),
    /// Left vertex `u` leaves the system; its edges disappear.
    Depart(LeftId),
}

/// The sliding-window session model: arrivals follow `order`, and each
/// vertex departs after `window` further arrivals (a fixed session
/// length). Vertices still inside the window when the order is exhausted
/// never depart — the stream ends with the last `window` sessions live.
///
/// With `window ≥ order.len()` this degenerates to the classical online
/// model (arrivals only).
///
/// # Panics
/// Panics if `window == 0` — a zero-length session would depart before
/// it arrives.
pub fn sliding_window_sessions(order: &[LeftId], window: usize) -> Vec<SessionEvent> {
    assert!(window >= 1, "session window must be ≥ 1");
    let mut events = Vec::with_capacity(2 * order.len());
    for (i, &u) in order.iter().enumerate() {
        events.push(SessionEvent::Arrive(u));
        if i + 1 >= window && window <= order.len() {
            events.push(SessionEvent::Depart(order[i + 1 - window]));
        }
    }
    events
}

/// Round-robin session model over a graph: cycle through left vertices
/// `repeats` times, departing each vertex right before its re-arrival.
/// Produces a stationary-churn stream (the live set has constant size
/// `n_left`) useful for steady-state throughput measurements.
pub fn recycling_sessions(g: &Bipartite, repeats: usize) -> Vec<SessionEvent> {
    let n = g.n_left() as u32;
    let mut events = Vec::with_capacity(2 * repeats * g.n_left());
    for _ in 0..repeats {
        for u in 0..n {
            events.push(SessionEvent::Depart(u));
            events.push(SessionEvent::Arrive(u));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn sliding_window_departs_in_arrival_order() {
        let order = [3u32, 1, 4, 0, 2];
        let ev = sliding_window_sessions(&order, 2);
        assert_eq!(
            ev,
            vec![
                SessionEvent::Arrive(3),
                SessionEvent::Arrive(1),
                SessionEvent::Depart(3),
                SessionEvent::Arrive(4),
                SessionEvent::Depart(1),
                SessionEvent::Arrive(0),
                SessionEvent::Depart(4),
                SessionEvent::Arrive(2),
                SessionEvent::Depart(0),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "session window must be ≥ 1")]
    fn zero_window_rejected() {
        sliding_window_sessions(&[0, 1, 2], 0);
    }

    #[test]
    fn huge_window_is_the_classical_model() {
        let order = [0u32, 1, 2];
        let ev = sliding_window_sessions(&order, 10);
        assert_eq!(ev.len(), 3);
        assert!(ev.iter().all(|e| matches!(e, SessionEvent::Arrive(_))));
    }

    #[test]
    fn live_set_never_negative_and_bounded_by_window() {
        let order: Vec<u32> = (0..50).collect();
        for window in [1usize, 3, 7, 50, 80] {
            let mut live = 0i64;
            let mut peak = 0i64;
            for e in sliding_window_sessions(&order, window) {
                match e {
                    SessionEvent::Arrive(_) => live += 1,
                    SessionEvent::Depart(_) => live -= 1,
                }
                assert!(live >= 0);
                peak = peak.max(live);
            }
            assert!(peak as usize <= window.min(order.len()));
        }
    }

    #[test]
    fn recycling_keeps_the_universe() {
        let mut b = BipartiteBuilder::new(3, 2);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let ev = recycling_sessions(&g, 2);
        assert_eq!(ev.len(), 12);
        // Every depart is immediately followed by the matching arrive.
        for pair in ev.chunks(2) {
            match (pair[0], pair[1]) {
                (SessionEvent::Depart(a), SessionEvent::Arrive(b)) => assert_eq!(a, b),
                other => panic!("unexpected pair {other:?}"),
            }
        }
    }
}

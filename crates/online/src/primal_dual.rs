//! Dual mirror descent for online allocation, after Balseiro–Lu–Mirrokni
//! \[BLM23\] ("The Best of Many Worlds: Dual Mirror Descent for Online
//! Allocation Problems").
//!
//! Each right vertex `v` carries a *price* `β_v ≥ 0`. An arrival `u` is
//! matched to the feasible neighbor maximizing the reduced reward
//! `1 − β_v`, and rejected if every reduced reward is non-positive. After
//! the step, prices follow a projected subgradient of the dual: the chosen
//! vertex's price rises by `η·(1 − ρ_v)` and every other price falls by
//! `η·ρ_v`, where `ρ_v = C_v / T` is `v`'s target consumption rate over a
//! horizon of `T` arrivals.
//!
//! Updating *every* price per arrival would cost `O(|R|)` steps; since the
//! downward drift is deterministic (`η·ρ_v` per arrival), prices are stored
//! lazily with a last-touched timestamp and materialized on read.
//!
//! With unit rewards the rule behaves like a self-calibrating BALANCE: the
//! price of an over-consumed vertex rises until arrivals prefer its
//! neighbors — but unlike BALANCE it can *reject* arrivals when all
//! neighbors are expensive, which pays off under adversarial bursts against
//! budget-constrained resources (\[BLM23\] prove `1 − O(η)` asymptotic
//! optimality under i.i.d. arrivals and `O(√T)` regret guarantees).

use sparse_alloc_graph::{Bipartite, LeftId, RightId};

use crate::driver::{OnlineAllocator, OnlineState};

/// Dual-mirror-descent allocator with Euclidean mirror (projected SGD).
#[derive(Debug, Clone)]
pub struct DualDescent {
    /// Step size `η`.
    eta: f64,
    /// Whether arrivals with no strictly positive reduced reward are
    /// rejected (`true`, the BLM23 rule) or assigned greedily anyway
    /// (`false`, a non-rejecting hybrid useful when the objective is pure
    /// cardinality).
    reject_when_priced_out: bool,
    prices: Vec<f64>,
    rho: Vec<f64>,
    last_touch: Vec<u64>,
    step: u64,
}

impl DualDescent {
    /// Create a dual-descent rule with step size `eta` for a horizon of
    /// `horizon` expected arrivals (used to set target rates `ρ_v = C_v/T`).
    ///
    /// `eta` around `1/√T` matches the BLM23 regret tuning; the experiments
    /// sweep it.
    pub fn new(eta: f64, reject_when_priced_out: bool) -> Self {
        assert!(eta.is_finite() && eta > 0.0, "step size must be positive");
        DualDescent {
            eta,
            reject_when_priced_out,
            prices: Vec::new(),
            rho: Vec::new(),
            last_touch: Vec::new(),
            step: 0,
        }
    }

    /// Materialize the current price of `v` (applying the lazy decay).
    #[inline]
    fn price(&self, v: RightId) -> f64 {
        let idle = (self.step - self.last_touch[v as usize]) as f64;
        (self.prices[v as usize] - self.eta * self.rho[v as usize] * idle).max(0.0)
    }
}

impl OnlineAllocator for DualDescent {
    fn name(&self) -> &'static str {
        if self.reject_when_priced_out {
            "dual-descent"
        } else {
            "dual-descent(no-reject)"
        }
    }

    fn reset(&mut self, g: &Bipartite) {
        let t = g.n_left().max(1) as f64;
        self.prices = vec![0.0; g.n_right()];
        self.rho = g.capacities().iter().map(|&c| c as f64 / t).collect();
        self.last_touch = vec![0; g.n_right()];
        self.step = 0;
    }

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        let mut best: Option<(f64, RightId)> = None;
        for &v in g.left_neighbors(u) {
            if state.residual(g, v) == 0 {
                continue;
            }
            let reward = 1.0 - self.price(v);
            let better = match best {
                None => true,
                Some((br, bv)) => reward > br || (reward == br && v < bv),
            };
            if better {
                best = Some((reward, v));
            }
        }
        self.step += 1;
        match best {
            Some((reward, v)) if reward > 0.0 || !self.reject_when_priced_out => {
                // Chosen vertex: apply decay up to now, then the +η(1 − ρ_v)
                // subgradient step. Other prices decay lazily.
                let idle = (self.step - 1 - self.last_touch[v as usize]) as f64;
                let decayed =
                    (self.prices[v as usize] - self.eta * self.rho[v as usize] * idle).max(0.0);
                self.prices[v as usize] =
                    (decayed + self.eta * (1.0 - self.rho[v as usize])).max(0.0);
                self.last_touch[v as usize] = self.step;
                Some(v)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_online;
    use sparse_alloc_graph::generators::random_bipartite;
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn feasible_on_random_graphs() {
        for seed in 0..6 {
            let g = random_bipartite(100, 40, 500, 3, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            let a = run_online(&g, &order, &mut DualDescent::new(0.1, true));
            a.validate(&g).unwrap();
        }
    }

    #[test]
    fn no_reject_variant_is_maximal() {
        use sparse_alloc_flow::greedy::is_maximal;
        for seed in 0..4 {
            let g = random_bipartite(80, 30, 400, 3, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            let a = run_online(&g, &order, &mut DualDescent::new(0.05, false));
            assert!(is_maximal(&g, &a));
        }
    }

    #[test]
    fn prices_rise_on_hot_resource() {
        // One advertiser, many arrivals: its price must rise above zero and
        // eventually (with rejection enabled) price some arrivals out even
        // though capacity remains — the hedging behavior BLM23 analyze.
        let n = 50u32;
        let mut b = BipartiteBuilder::new(n as usize, 1);
        for u in 0..n {
            b.add_edge(u, 0);
        }
        let g = b.build(vec![n as u64]).unwrap();
        let order: Vec<u32> = (0..n).collect();
        let mut algo = DualDescent::new(0.5, true);
        let a = run_online(&g, &order, &mut algo);
        a.validate(&g).unwrap();
        // ρ = 1, so the price never decays and each assignment adds
        // η(1−ρ)=0 — with ρ=1 the price stays 0 and everything is taken.
        assert_eq!(a.size(), n as usize);

        // Halve the capacity: ρ = 1/2, assignments push the price up by
        // η/2 and decay pulls η/2 per idle step; the run must reject some
        // arrivals *before* literally exhausting capacity at high η.
        let g2 = g.with_capacities(vec![(n / 2) as u64]);
        let mut algo2 = DualDescent::new(0.9, true);
        let a2 = run_online(&g2, &order, &mut algo2);
        a2.validate(&g2).unwrap();
        assert!(a2.size() <= (n / 2) as usize);
        assert!(a2.size() > 0);
    }

    #[test]
    fn lazy_decay_matches_hand_computation() {
        // Two advertisers with capacity 2 over a horizon of 3 arrivals:
        // ρ = [2/3, 2/3], η = 0.3. Arrivals hit v0, v1, v0.
        let mut b = BipartiteBuilder::new(3, 2);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        b.add_edge(2, 0);
        let g = b.build(vec![2, 2]).unwrap();
        let mut algo = DualDescent::new(0.3, true);
        let a = run_online(&g, &[0, 1, 2], &mut algo);
        assert_eq!(a.size(), 3);
        let (eta, rho): (f64, f64) = (0.3, 2.0 / 3.0);
        // v0: assigned at step 1 (price η(1−ρ)), idles step 2 (−ηρ, clamped
        // at 0 since η(1−ρ) < ηρ), assigned at step 3 (price η(1−ρ) again).
        let p0_expected = (eta * (1.0 - rho) - eta * rho).max(0.0) + eta * (1.0 - rho);
        assert!((algo.price(0) - p0_expected).abs() < 1e-12);
        // v1: assigned at step 2, idles step 3.
        let p1_expected = (eta * (1.0 - rho) - eta * rho).max(0.0);
        assert!((algo.price(1) - p1_expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_eta_rejected() {
        let _ = DualDescent::new(0.0, true);
    }
}

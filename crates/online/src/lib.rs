//! Online allocation algorithms — the application domain that motivates the
//! allocation problem in Łącki–Mitrović–Ramachandran–Sheu (SPAA 2025).
//!
//! The paper's introduction frames allocation via online ads and
//! server–client resource allocation (MSVV07, FKM+09, VVS10, BLM23, …).
//! This crate implements the classical *online* algorithms for the same
//! problem so the experiment suite can answer the question a practitioner
//! would ask: *how much value does periodically re-solving offline with the
//! paper's `(1+ε)` MPC algorithm recover over committing online?*
//!
//! # The online model
//!
//! The right side (advertisers / servers) and its capacities are known
//! upfront. Left vertices (impressions / requests) arrive one at a time in
//! an externally chosen order; when `u` arrives, its edge set `N(u)` is
//! revealed and the algorithm must irrevocably match `u` to a neighbor with
//! residual capacity, or reject it.
//!
//! # What's here
//!
//! * [`driver`] — the arrival loop: an [`OnlineAllocator`] decision trait,
//!   feasibility-enforcing executor, and per-run report.
//! * [`greedy`] — first-fit and random-fit greedy (1/2-competitive, tight).
//! * [`balance`] — the BALANCE / water-filling rule of Kalyanasundaram–Pruhs
//!   and MSVV (`1 − 1/e` competitive as capacities grow).
//! * [`primal_dual`] — dual mirror descent in the style of
//!   Balseiro–Lu–Mirrokni \[BLM23\]: per-resource prices with lazy decay.
//! * [`adwords`] — the *weighted-budget* extension (AdWords): per-edge bids,
//!   per-advertiser budgets, greedy-by-bid and the MSVV `ψ(f) = 1 − e^{f−1}`
//!   discounting rule.
//! * [`ranking`] — RANKING (Karp–Vazirani–Vazirani): one offline random
//!   permutation, optimal `1 − 1/e` for unit capacities.
//! * [`proportional_serve`] — serve arrivals proportionally to a
//!   precomputed fractional allocation: the AZM18 "high-entropy"
//!   deployment mode of the very algorithm this workspace reproduces.
//! * [`adversarial`] — the textbook lower-bound instances: the two-advertiser
//!   greedy trap (ratio → 1/2) and the suffix-phase family on which BALANCE
//!   tends to `1 − 1/e`.
//! * [`arrival`] — arrival-order models (natural, reversed, random, phased).
//! * [`stream`] — session/churn models (sliding-window, recycling) that
//!   lift an arrival order into an arrive/depart event stream for the
//!   dynamic-allocation engine.
//!
//! # Example
//!
//! ```
//! use sparse_alloc_online::adversarial::greedy_trap;
//! use sparse_alloc_online::driver::run_online;
//! use sparse_alloc_online::greedy::FirstFit;
//! use sparse_alloc_online::balance::Balance;
//!
//! let inst = greedy_trap(16);
//! let g = &inst.graph;
//!
//! let greedy = run_online(g, &inst.order, &mut FirstFit::new()).size();
//! let balance = run_online(g, &inst.order, &mut Balance::new()).size();
//!
//! // Greedy falls into the trap (ratio 1/2); BALANCE hedges (ratio 3/4).
//! assert_eq!(greedy as u64 * 2, inst.opt);
//! assert_eq!(balance as u64 * 4, inst.opt * 3);
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod adwords;
pub mod arrival;
pub mod balance;
pub mod driver;
pub mod greedy;
pub mod primal_dual;
pub mod proportional_serve;
pub mod ranking;
pub mod stream;

pub use adversarial::AdversarialInstance;
pub use driver::{run_online, OnlineAllocator, OnlineState};

//! Proportional serving: turn an offline *fractional* allocation into an
//! online serving policy — the deployment mode that motivated AZM18
//! ("Proportional Allocation: Simple, Distributed, and Diverse Matching
//! with High Entropy"), whose algorithm the SPAA 2025 paper accelerates.
//!
//! The MPC algorithm runs offline over the forecast graph and produces
//! per-edge fractions `x_{u,v}`. At serving time each arriving `u` is
//! matched to a feasible neighbor drawn with probability proportional to
//! `x_{u,v}` ([`ServeMode::Sample`]) — preserving in expectation both the
//! fractional value and its *diversity* (an advertiser is served a mix of
//! impressions instead of a deterministic block) — or to the
//! highest-fraction neighbor ([`ServeMode::Argmax`]) when determinism
//! matters more than entropy.
//!
//! The weights come in as a plain `Vec<f64>` indexed by edge id, so this
//! crate stays independent of the solver that produced them (use
//! `sparse_alloc_core::algo1` / the pipeline's fractional stage).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::{Bipartite, LeftId, RightId};

use crate::driver::{OnlineAllocator, OnlineState};

/// How [`ProportionalServe`] picks among feasible neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Draw `v` with probability ∝ `x_{u,v}` (the high-entropy mode);
    /// falls back to uniform among feasible neighbors when all weights
    /// vanish.
    Sample,
    /// Deterministically take the feasible neighbor with the largest
    /// `x_{u,v}` (ties toward the lower index).
    Argmax,
}

/// Online serving from precomputed per-edge fractions.
#[derive(Debug, Clone)]
pub struct ProportionalServe {
    weights: Vec<f64>,
    mode: ServeMode,
    seed: u64,
    rng: SmallRng,
}

impl ProportionalServe {
    /// Build a serving policy from per-edge weights (indexed by edge id,
    /// as produced by the fractional solvers).
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>, mode: ServeMode, seed: u64) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "edge weights must be non-negative and finite"
        );
        ProportionalServe {
            weights,
            mode,
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OnlineAllocator for ProportionalServe {
    fn name(&self) -> &'static str {
        match self.mode {
            ServeMode::Sample => "prop-serve(sample)",
            ServeMode::Argmax => "prop-serve(argmax)",
        }
    }

    fn reset(&mut self, g: &Bipartite) {
        assert_eq!(
            self.weights.len(),
            g.m(),
            "weights must cover every edge of the serving graph"
        );
        self.rng = SmallRng::seed_from_u64(self.seed);
    }

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        match self.mode {
            ServeMode::Argmax => {
                let mut best: Option<(f64, RightId)> = None;
                for (e, &v) in g.left_edge_range(u).zip(g.left_neighbors(u)) {
                    if state.residual(g, v) == 0 {
                        continue;
                    }
                    let w = self.weights[e];
                    let better = match best {
                        None => true,
                        Some((bw, bv)) => w > bw || (w == bw && v < bv),
                    };
                    if better {
                        best = Some((w, v));
                    }
                }
                best.map(|(_, v)| v)
            }
            ServeMode::Sample => {
                // One-pass weighted reservoir over feasible neighbors, with
                // a uniform fallback when the total weight is zero.
                let mut total = 0.0f64;
                let mut chosen: Option<RightId> = None;
                let mut feasible = 0usize;
                let mut uniform_choice: Option<RightId> = None;
                for (e, &v) in g.left_edge_range(u).zip(g.left_neighbors(u)) {
                    if state.residual(g, v) == 0 {
                        continue;
                    }
                    feasible += 1;
                    if self.rng.gen_range(0..feasible) == 0 {
                        uniform_choice = Some(v);
                    }
                    let w = self.weights[e];
                    if w > 0.0 {
                        total += w;
                        if self.rng.gen_bool((w / total).clamp(0.0, 1.0)) {
                            chosen = Some(v);
                        }
                    }
                }
                chosen.or(uniform_choice)
            }
        }
    }
}

/// Mean Shannon entropy (nats) of the normalized serving distribution per
/// left vertex — the "diversity" quantity the proportional policy is
/// designed to keep high. Vertices with no positive-weight edge contribute
/// zero.
pub fn serving_entropy(g: &Bipartite, weights: &[f64]) -> f64 {
    assert_eq!(weights.len(), g.m(), "weights must cover every edge");
    if g.n_left() == 0 {
        return 0.0;
    }
    let mut total_entropy = 0.0;
    for u in 0..g.n_left() as u32 {
        let sum: f64 = g.left_edge_range(u).map(|e| weights[e]).sum();
        if sum <= 0.0 {
            continue;
        }
        let h: f64 = g
            .left_edge_range(u)
            .map(|e| {
                let p = weights[e] / sum;
                if p > 0.0 {
                    -p * p.ln()
                } else {
                    0.0
                }
            })
            .sum();
        total_entropy += h;
    }
    total_entropy / g.n_left() as f64
}

/// The entropy of a deterministic (integral) assignment's serving
/// distribution — always zero; provided so tables can print the greedy
/// column without special-casing. Weights are the indicator of the chosen
/// edge.
pub fn indicator_weights(g: &Bipartite, mate: &[Option<RightId>]) -> Vec<f64> {
    assert_eq!(mate.len(), g.n_left(), "one slot per left vertex");
    let mut w = vec![0.0; g.m()];
    for (u, m) in mate.iter().enumerate() {
        if let Some(v) = m {
            for (e, &nv) in g.left_edge_range(u as u32).zip(g.left_neighbors(u as u32)) {
                if nv == *v {
                    w[e] = 1.0;
                    break;
                }
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_online;
    use sparse_alloc_graph::generators::random_bipartite;
    use sparse_alloc_graph::BipartiteBuilder;

    fn uniform_weights(g: &Bipartite) -> Vec<f64> {
        vec![1.0; g.m()]
    }

    #[test]
    fn both_modes_feasible_on_random_graphs() {
        for seed in 0..5 {
            let g = random_bipartite(60, 30, 300, 2, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            for mode in [ServeMode::Sample, ServeMode::Argmax] {
                let mut algo = ProportionalServe::new(uniform_weights(&g), mode, seed);
                run_online(&g, &order, &mut algo).validate(&g).unwrap();
            }
        }
    }

    #[test]
    fn argmax_follows_the_weights() {
        // u0 has edges to v0 (weight 0.1) and v1 (weight 0.9).
        let mut b = BipartiteBuilder::new(1, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let mut algo = ProportionalServe::new(vec![0.1, 0.9], ServeMode::Argmax, 0);
        let a = run_online(&g, &[0], &mut algo);
        assert_eq!(a.mate[0], Some(1));
    }

    #[test]
    fn sampling_respects_proportions() {
        // Weight 3:1 between two advertisers with ample capacity: over many
        // seeded runs the empirical split must be near 3:1.
        let mut b = BipartiteBuilder::new(1, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build_with_uniform_capacity(10).unwrap();
        let trials = 3000;
        let mut hits_v0 = 0;
        for seed in 0..trials {
            let mut algo = ProportionalServe::new(vec![3.0, 1.0], ServeMode::Sample, seed);
            let a = run_online(&g, &[0], &mut algo);
            if a.mate[0] == Some(0) {
                hits_v0 += 1;
            }
        }
        let frac = hits_v0 as f64 / trials as f64;
        assert!(
            (frac - 0.75).abs() < 0.04,
            "empirical proportion {frac} far from 0.75"
        );
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut b = BipartiteBuilder::new(1, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let mut algo = ProportionalServe::new(vec![0.0, 0.0], ServeMode::Sample, 3);
        let a = run_online(&g, &[0], &mut algo);
        assert!(a.mate[0].is_some(), "fallback must still serve");
    }

    #[test]
    fn entropy_of_uniform_beats_indicator() {
        let g = random_bipartite(40, 20, 160, 2, 2).graph;
        let h_uniform = serving_entropy(&g, &uniform_weights(&g));
        let order: Vec<u32> = (0..g.n_left() as u32).collect();
        let a = run_online(&g, &order, &mut crate::greedy::FirstFit::new());
        let h_greedy = serving_entropy(&g, &indicator_weights(&g, &a.mate));
        assert!(h_uniform > h_greedy, "{h_uniform} vs {h_greedy}");
        assert!(
            h_greedy.abs() < 1e-12,
            "deterministic serving has zero entropy"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = ProportionalServe::new(vec![-1.0], ServeMode::Sample, 0);
    }

    #[test]
    #[should_panic(expected = "cover every edge")]
    fn weight_arity_checked_at_reset() {
        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let mut algo = ProportionalServe::new(vec![], ServeMode::Sample, 0);
        run_online(&g, &[0], &mut algo);
    }
}

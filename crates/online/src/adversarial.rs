//! Textbook adversarial arrival instances with analytically known optima.
//!
//! These are the lower-bound constructions from the online matching
//! literature, reproduced so the experiment tables show the classical
//! competitive-ratio separations (first-fit → 1/2, BALANCE → 1 − 1/e)
//! against the offline optimum — the gap the paper's offline MPC algorithm
//! closes to `1 + ε`.

use sparse_alloc_graph::{Bipartite, BipartiteBuilder, LeftId};

/// A bipartite instance packaged with its adversarial arrival order and the
/// analytically known offline optimum.
#[derive(Debug, Clone)]
pub struct AdversarialInstance {
    /// The graph (capacities included).
    pub graph: Bipartite,
    /// Arrival order of the left vertices.
    pub order: Vec<LeftId>,
    /// Exact offline optimum, by construction.
    pub opt: u64,
}

/// The two-advertiser greedy trap.
///
/// Advertisers `A`, `B` with capacity `c` each. First `c` arrivals are
/// adjacent to both (first-fit's lowest-index tie-break sends all of them
/// to `A`); the next `c` arrivals are adjacent to `A` only and find it
/// saturated. `OPT = 2c` (phase 1 → `B`, phase 2 → `A`); first-fit books
/// exactly `c`, ratio `1/2`; BALANCE splits phase 1 and books `3c/2`.
///
/// # Panics
/// Panics if `c == 0`.
pub fn greedy_trap(c: usize) -> AdversarialInstance {
    assert!(c > 0, "capacity must be positive");
    let mut b = BipartiteBuilder::new(2 * c, 2);
    for u in 0..c {
        b.add_edge(u as u32, 0);
        b.add_edge(u as u32, 1);
    }
    for u in c..2 * c {
        b.add_edge(u as u32, 0);
    }
    let graph = b.build_with_uniform_capacity(c as u64).unwrap();
    AdversarialInstance {
        graph,
        order: (0..2 * c as u32).collect(),
        opt: 2 * c as u64,
    }
}

/// The suffix-phase family on which BALANCE tends to `1 − 1/e`.
///
/// `k` advertisers with capacity `c` each; arrivals come in `k` phases of
/// `c` queries, phase `i` (0-based) adjacent to advertisers `{i, …, k−1}`.
/// `OPT = k·c` (phase `i` → advertiser `i`). BALANCE spreads each phase
/// across its suffix, so the high-index advertisers fill early and late
/// phases starve; its ratio decreases toward `1 − 1/e ≈ 0.632` as `k`
/// grows. (This is the MSVV lower-bound construction for deterministic
/// algorithms, specialized to unit bids.)
///
/// # Panics
/// Panics if `k == 0` or `c == 0`.
pub fn suffix_phases(k: usize, c: usize) -> AdversarialInstance {
    assert!(k > 0 && c > 0, "phases and capacity must be positive");
    let n_left = k * c;
    let mut b = BipartiteBuilder::new(n_left, k);
    for phase in 0..k {
        for j in 0..c {
            let u = (phase * c + j) as u32;
            for v in phase..k {
                b.add_edge(u, v as u32);
            }
        }
    }
    let graph = b.build_with_uniform_capacity(c as u64).unwrap();
    AdversarialInstance {
        graph,
        order: (0..n_left as u32).collect(),
        opt: n_left as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::Balance;
    use crate::driver::run_online;
    use crate::greedy::FirstFit;
    use sparse_alloc_flow::opt::opt_value;

    #[test]
    fn greedy_trap_opt_is_correct() {
        for c in [1, 2, 8, 33] {
            let inst = greedy_trap(c);
            inst.graph.validate().unwrap();
            assert_eq!(opt_value(&inst.graph), inst.opt, "c = {c}");
        }
    }

    #[test]
    fn suffix_phases_opt_is_correct() {
        for (k, c) in [(1, 3), (2, 4), (5, 6), (8, 8)] {
            let inst = suffix_phases(k, c);
            inst.graph.validate().unwrap();
            assert_eq!(opt_value(&inst.graph), inst.opt, "k = {k}, c = {c}");
        }
    }

    #[test]
    fn first_fit_hits_exactly_half_on_trap() {
        let inst = greedy_trap(25);
        let a = run_online(&inst.graph, &inst.order, &mut FirstFit::new());
        assert_eq!(a.size() as u64 * 2, inst.opt);
    }

    #[test]
    fn balance_hits_three_quarters_on_trap() {
        let inst = greedy_trap(24);
        let a = run_online(&inst.graph, &inst.order, &mut Balance::new());
        assert_eq!(a.size() as u64 * 4, inst.opt * 3);
    }

    #[test]
    fn balance_ratio_decreases_toward_1_minus_1_over_e() {
        let one_minus_1e = 1.0 - (-1.0f64).exp();
        let mut prev = 1.01;
        for k in [2usize, 4, 8, 16] {
            let inst = suffix_phases(k, 120);
            let a = run_online(&inst.graph, &inst.order, &mut Balance::new());
            let ratio = a.size() as f64 / inst.opt as f64;
            assert!(ratio < prev + 1e-9, "ratio must not increase with k");
            assert!(
                ratio > one_minus_1e - 0.02,
                "BALANCE must stay near/above 1 − 1/e (k = {k}, ratio = {ratio})"
            );
            prev = ratio;
        }
        // By k = 16 the ratio is visibly below the trap ratios and close to
        // the asymptotic constant.
        assert!(prev < 0.70);
    }
}

//! The AdWords extension: per-edge bids and per-advertiser budgets
//! (Mehta–Saberi–Vazirani–Vazirani \[MSVV07\]).
//!
//! This generalizes the allocation objective from cardinality to revenue:
//! matching arrival `u` to advertiser `v` earns `bid_{u,v}` and consumes
//! that amount of `v`'s budget `B_v`. The unweighted allocation problem is
//! the special case `bid ≡ 1`, `B_v = C_v` — a useful sanity anchor that
//! the tests exercise.
//!
//! Two online rules are provided:
//!
//! * [`adwords_greedy`] — take the highest affordable bid (1/2-competitive
//!   under the small-bids assumption).
//! * [`adwords_msvv`] — scale each bid by the MSVV trade-off function
//!   `ψ(f) = 1 − e^{f−1}` of the advertiser's spent fraction `f`;
//!   `1 − 1/e ≈ 0.632` competitive under small bids, optimal.
//!
//! Following the standard convention, a bid is "affordable" if the
//! advertiser has any budget left; the last bid is truncated to the
//! remaining budget (this is the *free-disposal-less* small-bids model;
//! truncation error vanishes as `bid/B → 0`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::{Bipartite, EdgeId, LeftId, RightId};

/// An AdWords instance: topology from a [`Bipartite`] plus per-edge bids
/// and per-advertiser budgets (the graph's integer capacities are unused).
#[derive(Debug, Clone)]
pub struct AdwordsInstance {
    /// Bipartite topology (queries on the left, advertisers on the right).
    pub graph: Bipartite,
    /// Bid of each edge, indexed by [`EdgeId`]; all bids are positive.
    pub bids: Vec<f64>,
    /// Budget of each advertiser; positive.
    pub budgets: Vec<f64>,
}

impl AdwordsInstance {
    /// Build an instance, validating array lengths and positivity.
    pub fn new(graph: Bipartite, bids: Vec<f64>, budgets: Vec<f64>) -> Result<Self, String> {
        if bids.len() != graph.m() {
            return Err(format!(
                "bids has length {} but the graph has {} edges",
                bids.len(),
                graph.m()
            ));
        }
        if budgets.len() != graph.n_right() {
            return Err(format!(
                "budgets has length {} but the graph has {} advertisers",
                budgets.len(),
                graph.n_right()
            ));
        }
        if bids.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err("bids must be positive and finite".into());
        }
        if budgets.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err("budgets must be positive and finite".into());
        }
        Ok(AdwordsInstance {
            graph,
            bids,
            budgets,
        })
    }

    /// The unweighted embedding: `bid ≡ 1`, `B_v = C_v`. Revenue of a run
    /// then equals allocation cardinality.
    pub fn unweighted(graph: Bipartite) -> Self {
        let bids = vec![1.0; graph.m()];
        let budgets = graph.capacities().iter().map(|&c| c as f64).collect();
        AdwordsInstance {
            graph,
            bids,
            budgets,
        }
    }

    /// Random bids `uniform[lo, hi)` (seeded); budgets proportional to the
    /// advertiser's expected incoming bid volume scaled by `supply`, so the
    /// instance is neither trivially under- nor over-subscribed.
    pub fn random_bids(graph: Bipartite, lo: f64, hi: f64, supply: f64, seed: u64) -> Self {
        assert!(0.0 < lo && lo < hi && hi.is_finite(), "bad bid range");
        assert!(supply > 0.0, "supply scale must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let bids: Vec<f64> = (0..graph.m()).map(|_| rng.gen_range(lo..hi)).collect();
        let mut budgets = vec![0.0; graph.n_right()];
        for v in 0..graph.n_right() as u32 {
            let volume: f64 = graph
                .right_edge_ids(v)
                .iter()
                .map(|&e| bids[e as usize])
                .sum();
            budgets[v as usize] = (volume * supply).max(hi);
        }
        AdwordsInstance {
            graph,
            bids,
            budgets,
        }
    }

    /// A trivially valid upper bound on the offline optimum:
    /// `min(Σ_v B_v, Σ_u max-bid(u))`. Used as a ratio denominator when the
    /// exact optimum is not available analytically (it is an LP, not a
    /// cardinality flow). Documented per experiment.
    pub fn revenue_upper_bound(&self) -> f64 {
        let budget_total: f64 = self.budgets.iter().sum();
        let demand_total: f64 = (0..self.graph.n_left() as u32)
            .map(|u| {
                self.graph
                    .left_edge_range(u)
                    .map(|e| self.bids[e])
                    .fold(0.0f64, f64::max)
            })
            .sum();
        budget_total.min(demand_total)
    }
}

/// One committed assignment in an AdWords run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sale {
    /// The arriving query.
    pub query: LeftId,
    /// The advertiser charged.
    pub advertiser: RightId,
    /// Revenue booked (the bid, truncated to remaining budget).
    pub revenue: f64,
}

/// Result of an AdWords run.
#[derive(Debug, Clone)]
pub struct AdwordsOutcome {
    /// The committed sales in arrival order.
    pub sales: Vec<Sale>,
    /// Total booked revenue.
    pub revenue: f64,
    /// Final spend per advertiser (≤ budget, up to float rounding).
    pub spend: Vec<f64>,
}

/// Shared arrival loop: `score(bid, spent_fraction)` ranks the affordable
/// options; the best positive-scored option is taken.
fn run_adwords<F>(inst: &AdwordsInstance, order: &[LeftId], score: F) -> AdwordsOutcome
where
    F: Fn(f64, f64) -> f64,
{
    let g = &inst.graph;
    let mut spend = vec![0.0f64; g.n_right()];
    let mut sales = Vec::new();
    let mut revenue = 0.0;
    for &u in order {
        let mut best: Option<(f64, EdgeId, RightId)> = None;
        for (e, &v) in g.left_edge_range(u).zip(g.left_neighbors(u)) {
            let remaining = inst.budgets[v as usize] - spend[v as usize];
            if remaining <= 0.0 {
                continue;
            }
            let f = (spend[v as usize] / inst.budgets[v as usize]).clamp(0.0, 1.0);
            let s = score(inst.bids[e], f);
            if s <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bs, _, bv)) => s > bs || (s == bs && v < bv),
            };
            if better {
                best = Some((s, e as EdgeId, v));
            }
        }
        if let Some((_, e, v)) = best {
            let remaining = inst.budgets[v as usize] - spend[v as usize];
            let charged = inst.bids[e as usize].min(remaining);
            spend[v as usize] += charged;
            revenue += charged;
            sales.push(Sale {
                query: u,
                advertiser: v,
                revenue: charged,
            });
        }
    }
    AdwordsOutcome {
        sales,
        revenue,
        spend,
    }
}

/// Greedy AdWords: take the highest affordable bid.
pub fn adwords_greedy(inst: &AdwordsInstance, order: &[LeftId]) -> AdwordsOutcome {
    run_adwords(inst, order, |bid, _f| bid)
}

/// MSVV AdWords: rank by `bid · ψ(f)` with `ψ(f) = 1 − e^{f−1}`.
pub fn adwords_msvv(inst: &AdwordsInstance, order: &[LeftId]) -> AdwordsOutcome {
    run_adwords(inst, order, |bid, f| bid * (1.0 - (f - 1.0).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::generators::random_bipartite;
    use sparse_alloc_graph::BipartiteBuilder;

    fn natural_order(g: &Bipartite) -> Vec<u32> {
        (0..g.n_left() as u32).collect()
    }

    #[test]
    fn instance_validation() {
        let g = random_bipartite(10, 5, 20, 2, 0).graph;
        let m = g.m();
        assert!(AdwordsInstance::new(g.clone(), vec![1.0; m - 1], vec![1.0; 5]).is_err());
        assert!(AdwordsInstance::new(g.clone(), vec![1.0; m], vec![1.0; 4]).is_err());
        assert!(AdwordsInstance::new(g.clone(), vec![-1.0; m], vec![1.0; 5]).is_err());
        assert!(AdwordsInstance::new(g.clone(), vec![1.0; m], vec![0.0; 5]).is_err());
        assert!(AdwordsInstance::new(g, vec![1.0; m], vec![1.0; 5]).is_ok());
    }

    #[test]
    fn unweighted_embedding_matches_first_fit_value() {
        // With unit bids, greedy AdWords takes the first (lowest-index by
        // tie-break... actually highest bid = all equal ⇒ lowest v) feasible
        // neighbor — same *value* class as greedy allocation: maximal.
        let g = random_bipartite(50, 20, 200, 2, 3).graph;
        let inst = AdwordsInstance::unweighted(g.clone());
        let out = adwords_greedy(&inst, &natural_order(&g));
        // Revenue is integral in the unweighted embedding.
        assert!((out.revenue - out.sales.len() as f64).abs() < 1e-9);
        // Budgets respected.
        for (v, s) in out.spend.iter().enumerate() {
            assert!(*s <= inst.budgets[v] + 1e-9);
        }
    }

    #[test]
    fn budgets_never_exceeded_with_truncation() {
        let g = random_bipartite(100, 10, 400, 4, 7).graph;
        let inst = AdwordsInstance::random_bids(g.clone(), 0.5, 2.0, 0.25, 9);
        for out in [
            adwords_greedy(&inst, &natural_order(&g)),
            adwords_msvv(&inst, &natural_order(&g)),
        ] {
            for (v, s) in out.spend.iter().enumerate() {
                assert!(*s <= inst.budgets[v] + 1e-9, "advertiser {v} over budget");
            }
            assert!(out.revenue <= inst.revenue_upper_bound() + 1e-6);
        }
    }

    #[test]
    fn msvv_beats_greedy_on_its_lower_bound_instance() {
        // Two advertisers, budget B each. Phase 1: B queries bidding 1 on
        // both (greedy's tie-break sends all to advertiser 0; ψ-discounting
        // spreads). Phase 2: B queries bidding 1 on advertiser 0 only.
        let bq = 40usize;
        let mut b = BipartiteBuilder::new(2 * bq, 2);
        for u in 0..bq {
            b.add_edge(u as u32, 0);
            b.add_edge(u as u32, 1);
        }
        for u in bq..2 * bq {
            b.add_edge(u as u32, 0);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let m = g.m();
        let inst = AdwordsInstance::new(g.clone(), vec![1.0; m], vec![bq as f64; 2]).unwrap();
        let order: Vec<u32> = (0..2 * bq as u32).collect();
        let greedy = adwords_greedy(&inst, &order).revenue;
        let msvv = adwords_msvv(&inst, &order).revenue;
        let opt = 2.0 * bq as f64;
        assert!(
            (greedy - bq as f64).abs() < 1e-9,
            "greedy walks into the trap"
        );
        assert!(msvv > greedy + 0.25 * bq as f64, "ψ-discounting hedges");
        assert!(msvv <= opt + 1e-9);
    }

    #[test]
    fn msvv_psi_shape() {
        // ψ(0) = 1 − e^{−1}, ψ(1) = 0, monotone decreasing.
        let psi = |f: f64| 1.0 - (f - 1.0).exp();
        assert!((psi(0.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(psi(1.0).abs() < 1e-12);
        assert!(psi(0.2) > psi(0.8));
    }

    #[test]
    fn random_bids_reproducible() {
        let g = random_bipartite(30, 10, 100, 2, 1).graph;
        let a = AdwordsInstance::random_bids(g.clone(), 0.5, 1.5, 0.5, 42);
        let b = AdwordsInstance::random_bids(g, 0.5, 1.5, 0.5, 42);
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.budgets, b.budgets);
    }
}

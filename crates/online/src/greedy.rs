//! Greedy online rules: first-fit and random-fit.
//!
//! Any greedy rule that never rejects an arrival with a feasible neighbor
//! produces a *maximal* allocation, hence is 1/2-competitive; the bound is
//! tight for first-fit on [`crate::adversarial::greedy_trap`]. Random-fit is
//! the natural hedged variant (for unweighted matching its randomized
//! analogue RANKING achieves `1 − 1/e`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::{Bipartite, LeftId, RightId};

use crate::driver::{OnlineAllocator, OnlineState};

/// Match each arrival to its first neighbor with residual capacity.
#[derive(Debug, Clone, Default)]
pub struct FirstFit;

impl FirstFit {
    /// A fresh first-fit rule.
    pub fn new() -> Self {
        FirstFit
    }
}

impl OnlineAllocator for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn reset(&mut self, _: &Bipartite) {}

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        g.left_neighbors(u)
            .iter()
            .copied()
            .find(|&v| state.residual(g, v) > 0)
    }
}

/// Match each arrival to a uniformly random neighbor with residual capacity.
#[derive(Debug, Clone)]
pub struct RandomFit {
    seed: u64,
    rng: SmallRng,
}

impl RandomFit {
    /// A random-fit rule with the given seed (reset re-seeds, so repeated
    /// runs of the same instance are reproducible).
    pub fn new(seed: u64) -> Self {
        RandomFit {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OnlineAllocator for RandomFit {
    fn name(&self) -> &'static str {
        "random-fit"
    }

    fn reset(&mut self, _: &Bipartite) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }

    fn choose(&mut self, g: &Bipartite, state: &OnlineState, u: LeftId) -> Option<RightId> {
        // Reservoir-sample uniformly among feasible neighbors in one pass.
        let mut chosen = None;
        let mut feasible = 0usize;
        for &v in g.left_neighbors(u) {
            if state.residual(g, v) > 0 {
                feasible += 1;
                if self.rng.gen_range(0..feasible) == 0 {
                    chosen = Some(v);
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_online;
    use sparse_alloc_flow::greedy::is_maximal;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::random_bipartite;

    #[test]
    fn first_fit_is_maximal_and_half_competitive() {
        for seed in 0..6 {
            let g = random_bipartite(80, 50, 400, 3, seed).graph;
            let order: Vec<u32> = (0..g.n_left() as u32).collect();
            let a = run_online(&g, &order, &mut FirstFit::new());
            a.validate(&g).unwrap();
            assert!(is_maximal(&g, &a));
            assert!(2 * a.size() as u64 >= opt_value(&g));
        }
    }

    #[test]
    fn random_fit_is_maximal_and_reproducible() {
        let g = random_bipartite(60, 40, 300, 2, 11).graph;
        let order: Vec<u32> = (0..g.n_left() as u32).collect();
        let a1 = run_online(&g, &order, &mut RandomFit::new(5));
        let a2 = run_online(&g, &order, &mut RandomFit::new(5));
        let a3 = run_online(&g, &order, &mut RandomFit::new(6));
        a1.validate(&g).unwrap();
        assert!(is_maximal(&g, &a1));
        assert_eq!(a1, a2, "same seed must reproduce");
        // Different seeds *may* coincide but on 300 edges they practically
        // never do; this guards against the rng being ignored.
        assert_ne!(a1, a3, "different seeds should explore differently");
    }

    #[test]
    fn random_fit_uses_single_feasible_neighbor() {
        let g = sparse_alloc_graph::generators::star(4, 4).graph;
        let order: Vec<u32> = (0..4).collect();
        let a = run_online(&g, &order, &mut RandomFit::new(0));
        assert_eq!(a.size(), 4);
    }
}

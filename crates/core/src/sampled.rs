//! Algorithm 2 — the phase-compressed, sampling-based execution (paper §5),
//! shared-memory reference path.
//!
//! The LOCAL algorithm is split into phases of `B` rounds. At each phase
//! boundary every vertex partitions its neighborhood into β-level groups
//! (`L_x`, line 2 of Algorithm 2); during the phase, the per-round
//! aggregations (`β_u` for `u ∈ L`, `alloc_v` for `v ∈ R`) are *estimated*
//! from per-group samples — fresh, independent samples for every simulated
//! round, drawn from the phase-start groups (Lemma 11 with spread
//! `t = (1+ε)^{2B}` absorbs the within-phase drift). Lemma 13 shows the
//! resulting run equals Algorithm 3 with thresholds `k ∈ [1/4, 4]` whp, so
//! Theorems 16/17 give `(2+16ε)` after the λ-schedule.
//!
//! All sample draws come from the counter RNG of [`crate::estimator`], so
//! the distributed execution in [`crate::mpc_exec`] — which performs the
//! same arithmetic inside collected balls — reproduces this path
//! **bit-for-bit**. That equality is asserted by tests and is the
//! correctness argument for the MPC round/space measurements.
//!
//! Engineering note (documented in `DESIGN.md` §6): the final feasible
//! output (lines 5–6 scaling) is computed from an *exact* aggregation pass
//! over the final levels — in MPC this is `O(1)` rounds of standard
//! aggregation, and it makes the returned allocation strictly feasible
//! instead of feasible-within-`(1±ε/4)`.

use rayon::prelude::*;
use sparse_alloc_graph::{Bipartite, Side};

use crate::aggregates::{left_aggregates, right_allocs, LeftAggregate};
use crate::estimator::{sample_rng, GroupedNeighborhood};
use crate::fractional::{finalize, FractionalAllocation};
use crate::levels::{update_level, PowTable};
use crate::params;
use crate::termination::{self, TerminationCheck};

/// Sample-budget policy for the per-group budget `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleBudget {
    /// The paper's `t = (1+ε)^{2B}·ε⁻⁵·log n` (usually exceeds every group
    /// size ⇒ exact execution; the honest constant).
    Paper,
    /// `scale · (1+ε)^{2B} · log₂ n` — keeps the spread compensation, drops
    /// the `ε⁻⁵`. The experiment sweeps use this.
    Scaled(f64),
    /// A fixed per-group budget (stress tests).
    Fixed(usize),
}

impl SampleBudget {
    /// Resolve to a concrete per-group sample count.
    pub fn resolve(&self, eps: f64, b: usize, n: usize) -> usize {
        match *self {
            SampleBudget::Paper => params::sample_budget_paper(eps, b, n),
            SampleBudget::Scaled(s) => params::sample_budget_scaled(eps, b, n, s),
            SampleBudget::Fixed(t) => t.max(1),
        }
    }
}

/// Configuration of a sampled (Algorithm 2) run.
#[derive(Debug, Clone)]
pub struct SampledConfig {
    /// The `(1+ε)` step parameter.
    pub eps: f64,
    /// Phase length `B` (LOCAL rounds simulated per phase).
    pub phase_len: usize,
    /// Total LOCAL rounds to simulate (`τ`).
    pub tau: usize,
    /// Per-group sample budget.
    pub budget: SampleBudget,
    /// Seed of the counter RNG.
    pub seed: u64,
    /// Evaluate the §4 termination condition at phase boundaries (exact
    /// aggregation, as the MPC implementation would in `O(1)` rounds) and
    /// stop early when it holds.
    pub check_termination: bool,
}

/// Result of a sampled run.
#[derive(Debug, Clone)]
pub struct SampledResult {
    /// Final levels (end of last simulated round).
    pub levels: Vec<i64>,
    /// LOCAL rounds simulated.
    pub rounds: usize,
    /// Phases executed.
    pub phases: usize,
    /// Exact allocation masses for the final levels.
    pub alloc: Vec<f64>,
    /// `Σ_v min(C_v, alloc_v)` (exact, final levels).
    pub match_weight: f64,
    /// Feasible fractional output (exact final pass).
    pub fractional: FractionalAllocation,
    /// Termination info if `check_termination` fired.
    pub termination: Option<TerminationCheck>,
}

/// Group key of a left vertex: `⌈log_{1+ε} β_u⌉` computed from the exact
/// phase-start aggregate (`β_u = (1+ε)^{max_level}·norm_sum`).
pub(crate) fn left_key(agg: &LeftAggregate, eps: f64) -> i64 {
    debug_assert!(agg.norm_sum > 0.0);
    agg.max_level + (agg.norm_sum.ln() / (1.0 + eps).ln()).floor() as i64
}

/// Phase-start state shared by both execution paths: the grouped
/// neighborhoods and left group keys.
pub(crate) struct PhasePlan {
    /// For each `u ∈ L`: neighbors grouped by phase-start `level_v`.
    pub left_groups: Vec<GroupedNeighborhood>,
    /// For each `v ∈ R`: neighbors grouped by phase-start left key.
    pub right_groups: Vec<GroupedNeighborhood>,
    /// For each `u ∈ L`: normalization level `M_u` (max phase-start group
    /// key + B), exponent ceiling for the whole phase.
    pub left_ceiling: Vec<i64>,
}

pub(crate) fn plan_phase(
    g: &Bipartite,
    levels: &[i64],
    lefts: &[LeftAggregate],
    eps: f64,
    phase_len: usize,
) -> PhasePlan {
    let left_groups: Vec<GroupedNeighborhood> = (0..g.n_left() as u32)
        .into_par_iter()
        .map(|u| GroupedNeighborhood::build(g.left_neighbors(u), |v| levels[v as usize]))
        .collect();
    let right_groups: Vec<GroupedNeighborhood> = (0..g.n_right() as u32)
        .into_par_iter()
        .map(|v| {
            GroupedNeighborhood::build(g.right_neighbors(v), |u| left_key(&lefts[u as usize], eps))
        })
        .collect();
    let left_ceiling: Vec<i64> = left_groups
        .iter()
        .map(|gr| gr.max_key().unwrap_or(0) + phase_len as i64)
        .collect();
    PhasePlan {
        left_groups,
        right_groups,
        left_ceiling,
    }
}

/// One simulated round inside a phase, against *current* levels:
/// returns the estimated `(M_u, Ŝ_u)` per left vertex and the estimated
/// alloc per right vertex, then the caller applies the level update.
///
/// This free function is the single numerical kernel both execution paths
/// call — identical inputs produce identical outputs, bit for bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn estimate_round(
    g: &Bipartite,
    plan: &PhasePlan,
    levels: &[i64],
    pows: &PowTable,
    t_budget: usize,
    seed: u64,
    phase: usize,
    round_in_phase: usize,
) -> (Vec<(i64, f64)>, Vec<f64>) {
    // Left estimates β̂_u = (1+ε)^{M_u} · Ŝ_u.
    let left_est: Vec<(i64, f64)> = (0..g.n_left() as u32)
        .into_par_iter()
        .map(|u| {
            let groups = &plan.left_groups[u as usize];
            if groups.n_groups() == 0 {
                return (i64::MIN, 0.0);
            }
            let ceiling = plan.left_ceiling[u as usize];
            let s_hat = groups.estimate_sum(
                t_budget,
                |key| sample_rng(seed, phase, round_in_phase, Side::Left, u, key),
                |v| pows.pow_diff(levels[v as usize] - ceiling),
            );
            (ceiling, s_hat)
        })
        .collect();

    // Right estimates: alloc_v = β_v · Σ_u 1/β_u
    //               = Σ_u (1+ε)^{level_v − M_u} / Ŝ_u.
    let alloc_est: Vec<f64> = (0..g.n_right() as u32)
        .into_par_iter()
        .map(|v| {
            let groups = &plan.right_groups[v as usize];
            if groups.n_groups() == 0 {
                return 0.0;
            }
            let lv = levels[v as usize];
            groups.estimate_sum(
                t_budget,
                |key| sample_rng(seed, phase, round_in_phase, Side::Right, v, key),
                |u| {
                    let (m_u, s_u) = left_est[u as usize];
                    debug_assert!(s_u > 0.0, "sampled β̂_u must be positive");
                    pows.pow_diff(lv - m_u) / s_u
                },
            )
        })
        .collect();

    (left_est, alloc_est)
}

/// Run Algorithm 2 (shared-memory reference path).
pub fn run_sampled(g: &Bipartite, config: &SampledConfig) -> SampledResult {
    assert!(config.phase_len >= 1, "phase length B ≥ 1");
    let eps = config.eps;
    let pows = PowTable::new(eps);
    let nr = g.n_right();
    let t_budget = config.budget.resolve(eps, config.phase_len, g.n());

    let mut levels = vec![0i64; nr];
    let mut rounds = 0usize;
    let mut phases = 0usize;
    let mut termination_info = None;

    'phases: while rounds < config.tau {
        // Phase setup: exact aggregates for the group keys (the MPC path
        // pays O(1) rounds of aggregation here).
        let lefts = left_aggregates(g, &levels, &pows);
        let plan = plan_phase(g, &levels, &lefts, eps, config.phase_len);

        for s in 0..config.phase_len {
            if rounds >= config.tau {
                break;
            }
            let (_, alloc_est) =
                estimate_round(g, &plan, &levels, &pows, t_budget, config.seed, phases, s);
            for v in 0..nr {
                levels[v] += update_level(alloc_est[v], g.capacity(v as u32), eps, 1.0, 1.0);
            }
            rounds += 1;
        }
        phases += 1;

        if config.check_termination {
            let alloc_exact = crate::algo1::allocs_for_levels(g, &levels, eps);
            let t = termination::check(g, &levels, &alloc_exact, rounds, eps);
            let stop = t.terminated;
            termination_info = Some(t);
            if stop {
                break 'phases;
            }
        }
    }

    // Exact final pass (lines 5–6 of Algorithm 1 applied to final levels).
    let lefts = left_aggregates(g, &levels, &pows);
    let alloc = right_allocs(g, &levels, &lefts, &pows);
    let match_weight = crate::algo1::match_weight_of(g, &alloc);
    let fractional = finalize(g, &levels, &lefts, &alloc, &pows);

    SampledResult {
        levels,
        rounds,
        phases,
        alloc,
        match_weight,
        fractional,
        termination: termination_info,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo1::{self, ProportionalConfig};
    use crate::params::{tau_known_lambda, Schedule};
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};

    fn base_config(eps: f64, tau: usize, b: usize) -> SampledConfig {
        SampledConfig {
            eps,
            phase_len: b,
            tau,
            budget: SampleBudget::Paper,
            seed: 42,
            check_termination: false,
        }
    }

    #[test]
    fn paper_budget_equals_exact_execution() {
        // The paper's t exceeds every group size at this scale, so the
        // sampled run must take exactly Algorithm 1's trajectory.
        let eps = 0.2;
        let g = union_of_spanning_trees(80, 70, 3, 2, 6).graph;
        let tau = tau_known_lambda(eps, 3);
        let sampled = run_sampled(&g, &base_config(eps, tau, 2));
        let exact = algo1::run(
            &g,
            &ProportionalConfig {
                eps,
                schedule: Schedule::Fixed(tau),
                track_history: false,
            },
        );
        assert_eq!(sampled.levels, exact.levels);
        assert_eq!(sampled.rounds, exact.rounds);
    }

    #[test]
    fn small_budget_still_approximates() {
        // Fixed tiny budget: Lemma 13's k ∈ [1/4, 4] regime — quality may
        // degrade to (2+16ε) but must stay bounded.
        let eps = 0.1;
        let k = 3u32;
        let g = union_of_spanning_trees(300, 250, k, 2, 10).graph;
        let tau = tau_known_lambda(eps, k);
        let mut cfg = base_config(eps, tau, 2);
        cfg.budget = SampleBudget::Fixed(8);
        let res = run_sampled(&g, &cfg);
        res.fractional.validate(&g, 1e-9).unwrap();
        let opt = opt_value(&g);
        let ratio = algo1::ratio(opt, res.match_weight);
        assert!(
            ratio <= 2.0 + 16.0 * eps + 0.25,
            "sampled ratio {ratio} far beyond Theorem 17 bound"
        );
    }

    #[test]
    fn phase_length_does_not_change_exact_regime() {
        // With exhaustive budgets, B only affects *scheduling*, not values:
        // any B gives the same trajectory as B = 1.
        let eps = 0.25;
        let g = random_bipartite(60, 50, 250, 2, 3).graph;
        let r1 = run_sampled(&g, &base_config(eps, 12, 1));
        let r3 = run_sampled(&g, &base_config(eps, 12, 3));
        let r4 = run_sampled(&g, &base_config(eps, 12, 4));
        assert_eq!(r1.levels, r3.levels);
        assert_eq!(r1.levels, r4.levels);
        assert_eq!(r3.phases, 4);
        assert_eq!(r4.phases, 3);
    }

    #[test]
    fn termination_stops_early() {
        let eps = 0.1;
        let k = 2u32;
        let g = union_of_spanning_trees(150, 120, k, 2, 8).graph;
        let mut cfg = base_config(eps, 10_000, 2);
        cfg.check_termination = true;
        let res = run_sampled(&g, &cfg);
        assert!(res.termination.expect("checked").terminated);
        assert!(
            res.rounds <= tau_known_lambda(eps, k) + cfg.phase_len,
            "rounds {} vs τ {}",
            res.rounds,
            tau_known_lambda(eps, k)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_bipartite(100, 80, 400, 2, 5).graph;
        let mut cfg = base_config(0.15, 20, 2);
        cfg.budget = SampleBudget::Fixed(4);
        let a = run_sampled(&g, &cfg);
        let b = run_sampled(&g, &cfg);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.fractional, b.fractional);
        cfg.seed = 43;
        let c = run_sampled(&g, &cfg);
        // Different draws may (and on this instance do) change something.
        let _ = c;
    }

    #[test]
    fn thread_count_invariance() {
        let g = random_bipartite(120, 90, 500, 2, 7).graph;
        let mut cfg = base_config(0.2, 15, 3);
        cfg.budget = SampleBudget::Fixed(6);
        let a = run_sampled(&g, &cfg);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let b = pool.install(|| run_sampled(&g, &cfg));
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.alloc, b.alloc);
    }

    #[test]
    fn theorem20_azm_schedule_on_sampled_path() {
        // Theorem 20: Algorithm 2 with τ = O(log(|R|/ε)/ε²) is (1+18ε)
        // whp — the sampled execution inherits AZM's near-optimality.
        let eps = 0.25;
        let g = union_of_spanning_trees(60, 50, 2, 2, 17).graph;
        let tau = crate::params::tau_azm(eps, g.n_right());
        let mut cfg = base_config(eps, tau, 3);
        cfg.budget = SampleBudget::Scaled(1.0);
        let res = run_sampled(&g, &cfg);
        let opt = opt_value(&g);
        let ratio = algo1::ratio(opt, res.match_weight);
        assert!(
            ratio <= 1.0 + 18.0 * eps + 1e-9,
            "sampled AZM ratio {ratio} exceeds 1+18ε"
        );
        res.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn zero_tau_returns_initial_state() {
        let g = random_bipartite(10, 10, 30, 1, 1).graph;
        let res = run_sampled(&g, &base_config(0.2, 0, 2));
        assert_eq!(res.rounds, 0);
        assert!(res.levels.iter().all(|&l| l == 0));
        res.fractional.validate(&g, 1e-9).unwrap();
    }
}

//! Load balancing via allocation — the downstream application the paper
//! cites (§1: the allocation subroutine "was used to obtain the
//! state-of-the-art algorithm for load balancing \[ALPZ21\]").
//!
//! **Problem** (restricted assignment, unit jobs): every left vertex is a
//! unit job that must run on one of its neighboring servers; minimize the
//! *makespan* — the maximum number of jobs on any server. The graph's
//! capacities `C_v` act as hard per-server ceilings on top of the makespan
//! being minimized (set them to `n` to recover the classical problem).
//!
//! **Reduction.** Makespan `T` is feasible iff the allocation instance
//! with capacities `min(C_v, T)` admits a *perfect* allocation (every job
//! assigned). Both solvers here binary-search `T` over that predicate:
//!
//! * [`exact_min_makespan`] — feasibility by the max-flow OPT oracle;
//!   returns the optimal `T*` with a witness assignment.
//! * [`approx_min_makespan`] — feasibility by the paper's machinery:
//!   λ-oblivious `O(log λ)`-round fractional allocation → greedy rounding
//!   → bounded-walk augmentation (`k`-Hopcroft–Karp). A walk budget of
//!   `k` certifies feasibility exactly when the augmented allocation is
//!   perfect; an imperfect result at walk budget `k` only certifies
//!   "no short augmenting walk", so the search may settle on a `T` above
//!   `T*` — the `(1+1/k)`-style slack the experiments measure (E15).
//! * [`greedy_least_loaded`] — the online baseline: each job goes to its
//!   least-loaded feasible neighbor in arrival order.

use sparse_alloc_graph::{Assignment, Bipartite};

use crate::boosting::boost_hk;
use crate::guessing;
use crate::rounding;

/// Outcome of a makespan minimization.
#[derive(Debug, Clone)]
pub struct MakespanResult {
    /// A perfect assignment achieving [`MakespanResult::makespan`].
    pub assignment: Assignment,
    /// The achieved maximum server load.
    pub makespan: u64,
    /// The trivial volume lower bound `⌈n_jobs / n_servers⌉` (the exact
    /// solver's result is itself tight; the bound contextualizes it).
    pub volume_lower_bound: u64,
    /// The `(T, feasible?)` probes the binary search performed, in order.
    pub probes: Vec<(u64, bool)>,
}

/// Why makespan minimization can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadBalanceError {
    /// A job has no feasible server at all.
    IsolatedJob(u32),
    /// Even `T = max C_v` cannot host all jobs (hard capacities bind).
    CapacityInfeasible,
}

impl std::fmt::Display for LoadBalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadBalanceError::IsolatedJob(u) => {
                write!(f, "job {u} has no feasible server")
            }
            LoadBalanceError::CapacityInfeasible => {
                write!(f, "hard server capacities cannot host all jobs")
            }
        }
    }
}

impl std::error::Error for LoadBalanceError {}

fn check_no_isolated_jobs(g: &Bipartite) -> Result<(), LoadBalanceError> {
    for u in 0..g.n_left() as u32 {
        if g.left_degree(u) == 0 {
            return Err(LoadBalanceError::IsolatedJob(u));
        }
    }
    Ok(())
}

/// Capacities for candidate makespan `T`: `min(C_v, T)`.
fn clamped(g: &Bipartite, t: u64) -> Bipartite {
    g.with_capacities(g.capacities().iter().map(|&c| c.min(t)).collect())
}

/// Result of the binary search: smallest feasible `T`, its witness, and
/// the probe log.
type SearchOutcome = (u64, Assignment, Vec<(u64, bool)>);

/// Generic binary search on the smallest feasible `T`.
///
/// `feasible(T)` must be monotone (feasible at `T` ⇒ feasible at `T+1`);
/// both our predicates are, because raising `T` only relaxes capacities.
fn search<F>(g: &Bipartite, mut feasible: F) -> Result<SearchOutcome, LoadBalanceError>
where
    F: FnMut(u64) -> Option<Assignment>,
{
    let n_jobs = g.n_left() as u64;
    let n_servers = g.n_right().max(1) as u64;
    let mut lo = n_jobs.div_ceil(n_servers).max(1);
    let hi = n_jobs.max(1);
    let mut probes = Vec::new();

    // The predicate is checked at `hi` first: with hard capacities even the
    // loosest makespan may be infeasible.
    let mut best = match feasible(hi) {
        Some(w) => {
            probes.push((hi, true));
            (hi, w)
        }
        None => {
            probes.push((hi, false));
            return Err(LoadBalanceError::CapacityInfeasible);
        }
    };
    while lo < best.0 {
        let mid = lo + (best.0 - lo) / 2;
        match feasible(mid) {
            Some(w) => {
                probes.push((mid, true));
                best = (mid, w);
            }
            None => {
                probes.push((mid, false));
                lo = mid + 1;
            }
        }
    }
    Ok((best.0, best.1, probes))
}

/// Exact minimum makespan by flow feasibility.
///
/// # Errors
/// [`LoadBalanceError::IsolatedJob`] if some job has no neighbor;
/// [`LoadBalanceError::CapacityInfeasible`] if hard capacities cannot host
/// all jobs.
pub fn exact_min_makespan(g: &Bipartite) -> Result<MakespanResult, LoadBalanceError> {
    check_no_isolated_jobs(g)?;
    let n_jobs = g.n_left() as u64;
    let (makespan, assignment, probes) = search(g, |t| {
        let clamped_g = clamped(g, t);
        let witness = sparse_alloc_flow::opt::max_allocation(&clamped_g);
        (witness.size() as u64 == n_jobs).then_some(witness)
    })?;
    Ok(MakespanResult {
        assignment,
        makespan,
        volume_lower_bound: n_jobs.div_ceil(g.n_right().max(1) as u64).max(1),
        probes,
    })
}

/// Configuration for [`approx_min_makespan`].
#[derive(Debug, Clone)]
pub struct ApproxBalanceConfig {
    /// `ε` for the fractional stage (drives the `O(log λ)` schedule via the
    /// λ-oblivious guessing driver).
    pub eps: f64,
    /// Walk budget for the Hopcroft–Karp completion stage; larger `k`
    /// tightens the makespan toward `T*` at more augmentation cost.
    pub hk_walk_budget: usize,
}

impl Default for ApproxBalanceConfig {
    fn default() -> Self {
        ApproxBalanceConfig {
            eps: 0.1,
            hk_walk_budget: 20,
        }
    }
}

/// Approximate minimum makespan using the paper's allocation pipeline as
/// the feasibility subroutine.
///
/// The returned makespan is an upper bound on `T*` (every accepted probe
/// carries a validated perfect assignment); it can exceed `T*` only when
/// the bounded-walk completion fails to perfect an allocation that flow
/// could — experiments show the gap is almost always zero at the default
/// walk budget.
///
/// # Errors
/// Same failure modes as [`exact_min_makespan`].
pub fn approx_min_makespan(
    g: &Bipartite,
    config: &ApproxBalanceConfig,
) -> Result<MakespanResult, LoadBalanceError> {
    check_no_isolated_jobs(g)?;
    let n_jobs = g.n_left() as u64;
    let (makespan, assignment, probes) = search(g, |t| {
        let clamped_g = clamped(g, t);
        let frac = guessing::run_with_guessing(&clamped_g, config.eps)
            .result
            .fractional;
        let rounded = rounding::round_greedy(&clamped_g, &frac);
        let (boosted, _) = boost_hk(&clamped_g, &rounded, config.hk_walk_budget);
        (boosted.size() as u64 == n_jobs).then_some(boosted)
    })?;
    Ok(MakespanResult {
        assignment,
        makespan,
        volume_lower_bound: n_jobs.div_ceil(g.n_right().max(1) as u64).max(1),
        probes,
    })
}

/// Online baseline: assign each job (in index order) to its least-loaded
/// neighboring server, ignoring hard capacities, and report the resulting
/// makespan. Ties break toward the lower server index.
pub fn greedy_least_loaded(g: &Bipartite) -> (Assignment, u64) {
    let mut loads = vec![0u64; g.n_right()];
    let mut assignment = Assignment::empty(g.n_left());
    for u in 0..g.n_left() as u32 {
        let mut best: Option<u32> = None;
        for &v in g.left_neighbors(u) {
            let better = match best {
                None => true,
                Some(b) => loads[v as usize] < loads[b as usize],
            };
            if better {
                best = Some(v);
            }
        }
        if let Some(v) = best {
            loads[v as usize] += 1;
            assignment.mate[u as usize] = Some(v);
        }
    }
    (assignment, loads.iter().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};
    use sparse_alloc_graph::BipartiteBuilder;

    /// All jobs on a single server: makespan = n.
    #[test]
    fn single_server() {
        let mut b = BipartiteBuilder::new(7, 1);
        for u in 0..7 {
            b.add_edge(u, 0);
        }
        let g = b.build_with_uniform_capacity(100).unwrap();
        let r = exact_min_makespan(&g).unwrap();
        assert_eq!(r.makespan, 7);
        assert_eq!(r.assignment.size(), 7);
        assert_eq!(r.volume_lower_bound, 7);
    }

    /// Fully flexible jobs spread evenly: makespan = ⌈n / servers⌉.
    #[test]
    fn fully_flexible_spreads() {
        let (jobs, servers) = (13usize, 4usize);
        let mut b = BipartiteBuilder::new(jobs, servers);
        for u in 0..jobs as u32 {
            for v in 0..servers as u32 {
                b.add_edge(u, v);
            }
        }
        let g = b.build_with_uniform_capacity(jobs as u64).unwrap();
        let r = exact_min_makespan(&g).unwrap();
        assert_eq!(r.makespan, 4); // ⌈13/4⌉
        r.assignment.validate(&g).unwrap();
        assert_eq!(r.assignment.size(), jobs);
    }

    /// Restricted assignment: a captive block pins one server's load.
    #[test]
    fn captive_block_binds() {
        // Jobs 0..9 can only use server 0; jobs 10..19 can use either.
        let mut b = BipartiteBuilder::new(20, 2);
        for u in 0..10u32 {
            b.add_edge(u, 0);
        }
        for u in 10..20u32 {
            b.add_edge(u, 0);
            b.add_edge(u, 1);
        }
        let g = b.build_with_uniform_capacity(20).unwrap();
        let r = exact_min_makespan(&g).unwrap();
        assert_eq!(r.makespan, 10);
        let loads = r.assignment.right_loads(2);
        assert_eq!(loads, vec![10, 10]);
    }

    #[test]
    fn hard_capacities_respected() {
        // 6 jobs, 2 servers, hard cap 2 each ⇒ only 4 can run: infeasible.
        let mut b = BipartiteBuilder::new(6, 2);
        for u in 0..6u32 {
            b.add_edge(u, u % 2);
        }
        let g = b.build_with_uniform_capacity(2).unwrap();
        assert_eq!(
            exact_min_makespan(&g).unwrap_err(),
            LoadBalanceError::CapacityInfeasible
        );
    }

    #[test]
    fn isolated_job_detected() {
        let mut b = BipartiteBuilder::new(3, 2);
        b.add_edge(0, 0);
        b.add_edge(2, 1);
        let g = b.build_with_uniform_capacity(3).unwrap();
        assert_eq!(
            exact_min_makespan(&g).unwrap_err(),
            LoadBalanceError::IsolatedJob(1)
        );
    }

    #[test]
    fn approx_matches_exact_on_generated_families() {
        for seed in 0..4 {
            let g = union_of_spanning_trees(60, 20, 3, 60, seed).graph;
            if exact_min_makespan(&g).is_err() {
                continue; // isolated job in this draw
            }
            let exact = exact_min_makespan(&g).unwrap();
            let approx = approx_min_makespan(&g, &ApproxBalanceConfig::default()).unwrap();
            approx.assignment.validate(&g).unwrap();
            assert_eq!(approx.assignment.size(), g.n_left());
            assert!(
                approx.makespan >= exact.makespan,
                "approx cannot beat the optimum"
            );
            assert!(
                approx.makespan <= exact.makespan + 1,
                "seed {seed}: approx {} vs exact {}",
                approx.makespan,
                exact.makespan
            );
        }
    }

    #[test]
    fn greedy_baseline_is_dominated() {
        for seed in 0..4 {
            let g = random_bipartite(50, 10, 200, 50, seed).graph;
            if exact_min_makespan(&g).is_err() {
                continue;
            }
            let exact = exact_min_makespan(&g).unwrap();
            let (ga, gm) = greedy_least_loaded(&g);
            assert_eq!(ga.size(), g.n_left(), "greedy assigns every job");
            assert!(gm >= exact.makespan);
        }
    }

    #[test]
    fn probe_log_is_monotone_consistent() {
        let mut b = BipartiteBuilder::new(9, 3);
        for u in 0..9u32 {
            b.add_edge(u, u % 3);
            b.add_edge(u, (u + 1) % 3);
        }
        let g = b.build_with_uniform_capacity(9).unwrap();
        let r = exact_min_makespan(&g).unwrap();
        assert_eq!(r.makespan, 3);
        // Every infeasible probe is strictly below every feasible accepted T.
        let min_feasible = r
            .probes
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(t, _)| *t)
            .min()
            .unwrap();
        for (t, ok) in &r.probes {
            if !ok {
                assert!(*t < min_feasible);
            }
        }
        assert_eq!(min_feasible, r.makespan);
    }
}

//! The λ-oblivious driver (paper §3.2.2): guess `√(log λ_i) = 2^i`, run the
//! λ-schedule for the guess, test the §4 termination condition **at the
//! checkpoint**, and double the guess on failure. Trial costs are
//! geometric in the final guess, so the total is a constant factor over
//! the known-λ run — experiment E9 measures that factor.
//!
//! The guess sequence is capped by the AZM schedule (Theorem 20 guarantees
//! `(1+18ε)` after `O(log(|R|/ε)/ε²)` rounds on *any* graph), so the driver
//! terminates even on inputs whose arboricity exceeds every guess.

use sparse_alloc_graph::Bipartite;

use crate::algo1::{self, ProportionalConfig, ProportionalResult};
use crate::params::{self, Schedule};
use crate::termination;

/// Outcome of the guessing driver.
#[derive(Debug, Clone)]
pub struct GuessingResult {
    /// The result of the successful trial (its `termination` field holds
    /// the checkpoint evaluation).
    pub result: ProportionalResult,
    /// The λ guesses tried, in order.
    pub guesses: Vec<u32>,
    /// Rounds spent per trial (the sum is the true cost).
    pub rounds_per_trial: Vec<usize>,
    /// Total rounds across all trials.
    pub total_rounds: usize,
    /// Whether the final trial was accepted by the AZM cap rather than the
    /// termination condition.
    pub capped_by_azm: bool,
}

/// Run Algorithm 1 without knowledge of λ (paper-faithful checkpointing).
///
/// Trial `i` runs exactly `τ(λ_i) = ⌈log_{1+ε}(4λ_i/ε)⌉ + 1` rounds with
/// `λ_i` from [`params::lambda_guess`], then evaluates the termination
/// condition once (an `O(1)`-MPC-round test). On success the trial's
/// output is returned — Theorem 9's argument makes it a
/// `(2+10ε)`-approximation. On failure the guess doubles (`√log λ`-wise)
/// and the algorithm restarts.
pub fn run_with_guessing(g: &Bipartite, eps: f64) -> GuessingResult {
    let azm_cap = params::tau_azm(eps, g.n_right());
    let mut guesses = Vec::new();
    let mut rounds_per_trial = Vec::new();
    let mut total_rounds = 0usize;

    for i in 0.. {
        let lambda_i = params::lambda_guess(i);
        let tau_i = params::tau_known_lambda(eps, lambda_i).min(azm_cap);
        let capped = tau_i >= azm_cap;
        guesses.push(lambda_i);

        let mut result = algo1::run(
            g,
            &ProportionalConfig {
                eps,
                schedule: Schedule::Fixed(tau_i),
                track_history: false,
            },
        );
        total_rounds += result.rounds;
        rounds_per_trial.push(result.rounds);

        // The checkpoint test (§4): O(m) here, O(1) rounds in MPC.
        let check = termination::check(g, &result.levels, &result.alloc, result.rounds, eps);
        let passed = check.terminated;
        result.termination = Some(check);

        if passed || capped {
            // Either the condition certified (2+10ε), or we ran the AZM
            // schedule, which certifies (1+18ε) unconditionally.
            return GuessingResult {
                result,
                guesses,
                rounds_per_trial,
                total_rounds,
                capped_by_azm: !passed && capped,
            };
        }
    }
    unreachable!("the AZM cap guarantees termination")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::tau_known_lambda;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{escape_blocks, star, union_of_spanning_trees};

    #[test]
    fn low_arboricity_terminates_on_early_guess() {
        let eps = 0.1;
        let g = union_of_spanning_trees(200, 160, 2, 2, 3).graph;
        let out = run_with_guessing(&g, eps);
        assert!(out.guesses.len() <= 2, "guesses tried: {:?}", out.guesses);
        assert!(!out.capped_by_azm);
        let opt = opt_value(&g);
        let ratio = crate::algo1::ratio(opt, out.result.match_weight);
        assert!(ratio <= 2.0 + 10.0 * eps + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn total_cost_is_constant_factor_over_known_lambda() {
        let eps = 0.1;
        let k = 4u32;
        let g = union_of_spanning_trees(300, 240, k, 2, 5).graph;
        let out = run_with_guessing(&g, eps);
        let known = tau_known_lambda(eps, k);
        assert!(
            out.total_rounds <= 4 * known,
            "guessing cost {} vs known-λ τ {}",
            out.total_rounds,
            known
        );
    }

    #[test]
    fn star_terminates_immediately() {
        let g = star(50, 10).graph;
        let out = run_with_guessing(&g, 0.1);
        assert_eq!(out.guesses.len(), 1);
        assert!(out.result.match_weight >= 10.0 / 3.0 - 1e-9);
    }

    #[test]
    fn escape_instance_certifies_at_checkpoint() {
        // escape(λ) converges in ≈ ½·log_{1+ε}(2λ) rounds; the first
        // checkpoint τ(λ_0 = 2) exceeds that at this scale, so a single
        // trial certifies with the guarantee intact (OPT = λ² + λ·0 by
        // construction). The multi-trial doubling only engages for
        // λ > ~64/ε (experiment E9 demonstrates it at scale).
        let eps = 0.5;
        let lambda = 16u32;
        let g = escape_blocks(lambda, 2).graph;
        let out = run_with_guessing(&g, eps);
        assert!(!out.capped_by_azm);
        assert!(
            out.result
                .termination
                .as_ref()
                .expect("checkpoint evaluated")
                .terminated
        );
        let opt = 2 * (lambda as u64) * (lambda as u64);
        let ratio = crate::algo1::ratio(opt, out.result.match_weight);
        assert!(ratio <= 2.0 + 10.0 * eps + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn guessing_is_deterministic() {
        let g = union_of_spanning_trees(100, 80, 3, 2, 9).graph;
        let a = run_with_guessing(&g, 0.15);
        let b = run_with_guessing(&g, 0.15);
        assert_eq!(a.guesses, b.guesses);
        assert_eq!(a.total_rounds, b.total_rounds);
        assert_eq!(a.result.levels, b.result.levels);
    }
}

//! Algorithm 1 — the proportional-allocation LOCAL algorithm of
//! Agrawal–Zadimoghaddam–Mirrokni, with the paper's `O(log λ)` analysis.
//!
//! Per round, each `u ∈ L` splits its unit proportionally to neighbor
//! priorities (`x_{u,v} = β_v / Σ_{v'} β_{v'}`), each `v ∈ R` compares its
//! incoming mass to its capacity and nudges `β_v` by a `(1+ε)` factor.
//! Theorem 9: after `τ = ⌈log_{1+ε}(4λ/ε)⌉ + 1` rounds, the scaled output
//! is a `(2+10ε)`-approximate fractional allocation; with the AZM schedule
//! `τ = O(log(|R|/ε)/ε²)` it is `(1+O(ε))`-approximate.
//!
//! This is the *exact* (non-sampled) solver. The sampled MPC execution
//! lives in [`crate::sampled`] / [`crate::mpc_exec`] and is validated
//! against this one.

use sparse_alloc_graph::Bipartite;

use crate::aggregates::{left_aggregates, right_allocs};
use crate::fractional::{finalize, FractionalAllocation};
use crate::levels::{update_level, PowTable};
use crate::params::Schedule;
use crate::termination::{self, TerminationCheck};

/// Configuration of a run.
#[derive(Debug, Clone)]
pub struct ProportionalConfig {
    /// The `(1+ε)` step parameter. Approximation factors are stated in
    /// terms of this ε.
    pub eps: f64,
    /// Round schedule (fixed, known-λ, until-termination, or AZM).
    pub schedule: Schedule,
    /// Record per-round statistics (costs one `O(n_R)` pass per round).
    pub track_history: bool,
}

/// Per-round statistics for convergence experiments (E1/E2).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round number (1-based).
    pub round: usize,
    /// `Σ_v min(C_v, alloc_v)` for this round's allocation.
    pub match_weight: f64,
    /// Size of the top level set (post-update).
    pub top_size: usize,
    /// Size of the bottom level set (post-update).
    pub bottom_size: usize,
    /// Did the §4 termination condition hold at this round?
    pub terminated: bool,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct ProportionalResult {
    /// Levels at the *end* of the last round (define the level sets).
    pub levels: Vec<i64>,
    /// Levels at the *start* of the last round (define the output `x`).
    pub pre_levels: Vec<i64>,
    /// Allocation masses computed in the last round.
    pub alloc: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// `Σ_v min(C_v, alloc_v)`.
    pub match_weight: f64,
    /// The feasible fractional allocation (lines 5–6 of Algorithm 1).
    pub fractional: FractionalAllocation,
    /// The final termination check, if the schedule evaluated it.
    pub termination: Option<TerminationCheck>,
    /// Per-round history (empty unless `track_history`).
    pub history: Vec<RoundStats>,
}

/// Run Algorithm 1 (all thresholds `k_{v,r} = 1`).
pub fn run(g: &Bipartite, config: &ProportionalConfig) -> ProportionalResult {
    crate::algo3::run_with_thresholds(g, config, &crate::algo3::unit_thresholds())
}

/// Run Algorithm 1 with a per-round observer: called after every round's
/// update with `(round, post-update levels, this round's alloc)` — the
/// hook behind [`crate::trace`] and custom convergence instrumentation.
pub fn run_with_observer<F>(
    g: &Bipartite,
    config: &ProportionalConfig,
    observer: F,
) -> ProportionalResult
where
    F: FnMut(usize, &[i64], &[f64]),
{
    let (max_rounds, check_termination) = config.schedule.resolve(config.eps, g.n_right());
    run_loop(
        g,
        config.eps,
        max_rounds,
        check_termination,
        config.track_history,
        |_, _| (1.0, 1.0),
        observer,
    )
}

/// Convenience: the approximation-ratio denominator
/// `ratio = opt / match_weight` guarded against degenerate zero instances.
pub fn ratio(opt: u64, match_weight: f64) -> f64 {
    if opt == 0 {
        1.0
    } else {
        opt as f64 / match_weight.max(f64::MIN_POSITIVE)
    }
}

/// Compute the exact allocation masses for a level vector (one aggregation
/// pass) — the quantity `alloc_v` that level updates compare against.
pub fn allocs_for_levels(g: &Bipartite, levels: &[i64], eps: f64) -> Vec<f64> {
    let pows = PowTable::new(eps);
    let lefts = left_aggregates(g, levels, &pows);
    right_allocs(g, levels, &lefts, &pows)
}

pub(crate) fn run_loop<F, O>(
    g: &Bipartite,
    eps: f64,
    max_rounds: usize,
    check_termination: bool,
    track_history: bool,
    mut threshold: F,
    mut observer: O,
) -> ProportionalResult
where
    F: FnMut(u32, usize) -> (f64, f64),
    O: FnMut(usize, &[i64], &[f64]),
{
    let pows = PowTable::new(eps);
    let nr = g.n_right();
    let mut levels = vec![0i64; nr];
    let mut pre_levels = levels.clone();
    let mut last_lefts = left_aggregates(g, &levels, &pows);
    let mut last_alloc = right_allocs(g, &levels, &last_lefts, &pows);
    let mut history = Vec::new();
    let mut rounds = 0usize;
    let mut termination_check = None;

    for r in 1..=max_rounds {
        // Round r computes from the current levels…
        let lefts = left_aggregates(g, &levels, &pows);
        let alloc = right_allocs(g, &levels, &lefts, &pows);
        pre_levels.copy_from_slice(&levels);
        // …then updates the priorities.
        for v in 0..nr {
            let (k_lo, k_hi) = threshold(v as u32, r);
            levels[v] += update_level(alloc[v], g.capacity(v as u32), eps, k_lo, k_hi);
        }
        rounds = r;
        last_lefts = lefts;
        last_alloc = alloc;
        observer(r, &levels, &last_alloc);

        if check_termination || track_history {
            let t = termination::check(g, &levels, &last_alloc, r, eps);
            let terminated = t.terminated;
            if track_history {
                history.push(RoundStats {
                    round: r,
                    match_weight: match_weight_of(g, &last_alloc),
                    top_size: t.top_size,
                    bottom_size: t.bottom_size,
                    terminated,
                });
            }
            if check_termination {
                termination_check = Some(t);
                if terminated {
                    break;
                }
            }
        }
    }

    let match_weight = match_weight_of(g, &last_alloc);
    let fractional = finalize(g, &pre_levels, &last_lefts, &last_alloc, &pows);
    ProportionalResult {
        levels,
        pre_levels,
        alloc: last_alloc,
        rounds,
        match_weight,
        fractional,
        termination: termination_check,
        history,
    }
}

/// `Σ_v min(C_v, alloc_v)`.
pub fn match_weight_of(g: &Bipartite, alloc: &[f64]) -> f64 {
    alloc
        .iter()
        .zip(g.capacities())
        .map(|(&a, &c)| a.min(c as f64))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{tau_known_lambda, Schedule};
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{
        dense_core_sparse_fringe, random_bipartite, star, union_of_spanning_trees, LayeredParams,
    };

    fn cfg(eps: f64, schedule: Schedule) -> ProportionalConfig {
        ProportionalConfig {
            eps,
            schedule,
            track_history: false,
        }
    }

    #[test]
    fn perfectly_matchable_instance_converges() {
        // Disjoint edges: OPT = n, algorithm should allocate everything.
        let mut b = sparse_alloc_graph::BipartiteBuilder::new(8, 8);
        for i in 0..8u32 {
            b.add_edge(i, i);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let res = run(&g, &cfg(0.1, Schedule::Fixed(5)));
        assert!((res.match_weight - 8.0).abs() < 1e-9);
        res.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn star_converges_to_capacity() {
        let g = star(20, 5).graph;
        let res = run(&g, &cfg(0.1, Schedule::KnownLambda(1)));
        // OPT = 5; 2+10ε = 3 ⇒ need ≥ 5/3.
        assert!(
            res.match_weight >= 5.0 / 3.0,
            "match weight {}",
            res.match_weight
        );
        res.fractional.validate(&g, 1e-9).unwrap();
        // The star actually converges to ~C: every leaf splits nothing (one
        // neighbor) so alloc = 20 > 5·1.1 every round — center's β only
        // falls, x stays 1 per leaf, scaled output = exactly C.
        assert!((res.match_weight - 5.0).abs() < 1e-9);
    }

    #[test]
    fn theorem9_ratio_on_forest_unions() {
        let eps = 0.1;
        for (k, seed) in [(1u32, 11u64), (3, 12), (6, 13)] {
            let g = union_of_spanning_trees(120, 100, k, 2, seed).graph;
            let res = run(&g, &cfg(eps, Schedule::KnownLambda(k)));
            let opt = opt_value(&g);
            let ratio = ratio(opt, res.match_weight);
            assert!(
                ratio <= 2.0 + 10.0 * eps + 1e-9,
                "k={k}: ratio {ratio} exceeds 2+10ε (OPT {opt}, MW {})",
                res.match_weight
            );
            res.fractional.validate(&g, 1e-9).unwrap();
        }
    }

    #[test]
    fn azm_schedule_reaches_near_optimal() {
        let eps = 0.25; // keep τ = O(log(R)/ε²) manageable
        let g = union_of_spanning_trees(60, 50, 2, 2, 3).graph;
        let res = run(&g, &cfg(eps, Schedule::Azm));
        let opt = opt_value(&g);
        let ratio = ratio(opt, res.match_weight);
        assert!(
            ratio <= 1.0 + 18.0 * eps + 1e-9,
            "ratio {ratio} exceeds 1+18ε"
        );
    }

    #[test]
    fn termination_condition_fires_within_tau() {
        let eps = 0.1;
        let k = 4u32;
        let g = union_of_spanning_trees(150, 120, k, 2, 21).graph;
        let res = run(
            &g,
            &cfg(
                eps,
                Schedule::UntilTermination {
                    max_rounds: 10 * tau_known_lambda(eps, k),
                },
            ),
        );
        let t = res.termination.expect("schedule checks termination");
        assert!(t.terminated, "condition must fire by O(log λ) rounds");
        assert!(
            res.rounds <= tau_known_lambda(eps, k),
            "terminated at {} but τ(λ={k}) = {}",
            res.rounds,
            tau_known_lambda(eps, k)
        );
        // Theorem 9 guarantee applies at the termination point.
        let opt = opt_value(&g);
        assert!(ratio(opt, res.match_weight) <= 2.0 + 10.0 * eps + 1e-9);
    }

    #[test]
    fn lemma7_invariants_hold() {
        // After any τ ≥ 1 rounds: vertices not in the top set have
        // alloc ≥ C/(1+3ε); not in the bottom set have alloc ≤ C(1+3ε).
        let eps = 0.2;
        let g = dense_core_sparse_fringe(&LayeredParams::default(), 5).graph;
        for tau in [3usize, 8, 15] {
            let res = run(&g, &cfg(eps, Schedule::Fixed(tau)));
            let r = tau as i64;
            for v in 0..g.n_right() {
                let c = g.capacity(v as u32) as f64;
                if res.levels[v] < r {
                    assert!(
                        res.alloc[v] >= c / (1.0 + 3.0 * eps) - 1e-9,
                        "τ={tau} v={v}: under-allocation bound violated: alloc {} C {c}",
                        res.alloc[v]
                    );
                }
                if res.levels[v] > -r {
                    assert!(
                        res.alloc[v] <= c * (1.0 + 3.0 * eps) + 1e-9,
                        "τ={tau} v={v}: over-allocation bound violated: alloc {} C {c}",
                        res.alloc[v]
                    );
                }
            }
        }
    }

    #[test]
    fn history_tracks_rounds() {
        let g = random_bipartite(30, 25, 120, 2, 8).graph;
        let res = run(
            &g,
            &ProportionalConfig {
                eps: 0.2,
                schedule: Schedule::Fixed(6),
                track_history: true,
            },
        );
        assert_eq!(res.history.len(), 6);
        assert_eq!(res.history.last().unwrap().round, 6);
        // Match weight is non-trivial and ≤ trivial bound.
        for h in &res.history {
            assert!(h.match_weight >= 0.0);
            assert!(h.match_weight <= g.n_left() as f64 + 1e-9);
        }
    }

    #[test]
    fn rounds_independent_of_n_at_fixed_lambda() {
        // The λ-schedule's round count must not grow with n.
        let eps = 0.1;
        let t_small = {
            let g = union_of_spanning_trees(100, 100, 3, 2, 2).graph;
            run(
                &g,
                &cfg(eps, Schedule::UntilTermination { max_rounds: 10_000 }),
            )
            .rounds
        };
        let t_large = {
            let g = union_of_spanning_trees(1600, 1600, 3, 2, 2).graph;
            run(
                &g,
                &cfg(eps, Schedule::UntilTermination { max_rounds: 10_000 }),
            )
            .rounds
        };
        let tau = tau_known_lambda(eps, 3);
        assert!(t_small <= tau && t_large <= tau);
    }

    #[test]
    fn zero_edge_graph() {
        let g = sparse_alloc_graph::BipartiteBuilder::new(5, 5)
            .build_with_uniform_capacity(2)
            .unwrap();
        let res = run(&g, &cfg(0.1, Schedule::Fixed(3)));
        assert_eq!(res.match_weight, 0.0);
        res.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn deterministic() {
        let g = union_of_spanning_trees(80, 60, 3, 2, 14).graph;
        let a = run(&g, &cfg(0.1, Schedule::Fixed(20)));
        let b = run(&g, &cfg(0.1, Schedule::Fixed(20)));
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.fractional, b.fractional);
    }
}

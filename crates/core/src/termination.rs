//! The λ-oblivious termination condition (paper, end of §4).
//!
//! After `r` rounds, with level sets taken at the *end* of the round and
//! allocation masses from the round's computation, at least one of the
//! following holds once `r ≥ log_{1+ε}(4λ/ε) + 1` — and if either holds the
//! current output is a `(2+10ε)`-approximation:
//!
//! 1. `|N(L_top)| ≤ |L_bot|` — the top level set has few neighbors, or
//! 2. `Σ_{v ∉ L_bot} alloc_v ≥ (1 − ε/2)·|N(L_top)|` — almost all of
//!    `N(L_top)`'s mass is allocated to vertices with bounded
//!    over-allocation.
//!
//! Testing the condition is a global aggregation: `O(m)` work here, `O(1)`
//! rounds in MPC (the MPC executor charges it to its ledger). The paper
//! notes it is *not* known how to check it in `O(1)` LOCAL rounds — which
//! is why the LOCAL algorithm needs the λ-based schedule while MPC can go
//! λ-oblivious.

use sparse_alloc_graph::Bipartite;

use crate::levels::extreme_level_sets;

/// Outcome of a termination test.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationCheck {
    /// Did either condition hold?
    pub terminated: bool,
    /// Condition 1: `|N(L_top)| ≤ |L_bot|`.
    pub cond_few_neighbors: bool,
    /// Condition 2: `Σ_{v ∉ L_bot} alloc_v ≥ (1−ε/2)|N(L_top)|`.
    pub cond_mass_allocated: bool,
    /// `|L_top|` (vertices that rose every round).
    pub top_size: usize,
    /// `|L_bot|` (vertices that fell every round).
    pub bottom_size: usize,
    /// `|N(L_top)|`.
    pub top_neighborhood: usize,
    /// `Σ_{v ∉ L_bot} alloc_v`.
    pub mass_off_bottom: f64,
}

/// The bare §4 predicate over pre-aggregated quantities: returns
/// `(cond_few_neighbors, cond_mass_allocated)`.
///
/// This is the hook reused by incremental engines that evaluate the
/// stopping rule on a local ball (where `top_neighborhood`, `bottom_size`
/// and `mass_off_bottom` are aggregated over the ball instead of the
/// whole graph); [`check`] is the global instantiation.
#[inline]
pub fn condition_holds(
    top_neighborhood: usize,
    bottom_size: usize,
    mass_off_bottom: f64,
    eps: f64,
) -> (bool, bool) {
    let cond_few_neighbors = top_neighborhood <= bottom_size;
    let cond_mass_allocated = mass_off_bottom >= (1.0 - eps / 2.0) * top_neighborhood as f64;
    (cond_few_neighbors, cond_mass_allocated)
}

/// Evaluate the §4 termination condition after `rounds` rounds.
///
/// `levels` are the end-of-round levels; `alloc` the allocation masses
/// computed in that round.
pub fn check(
    g: &Bipartite,
    levels: &[i64],
    alloc: &[f64],
    rounds: usize,
    eps: f64,
) -> TerminationCheck {
    let sets = extreme_level_sets(levels, rounds);

    // |N(L_top)| by marking left neighbors.
    let mut seen = vec![false; g.n_left()];
    let mut top_neighborhood = 0usize;
    for &v in &sets.top {
        for &u in g.right_neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                top_neighborhood += 1;
            }
        }
    }

    let mut in_bottom = vec![false; g.n_right()];
    for &v in &sets.bottom {
        in_bottom[v as usize] = true;
    }
    let mass_off_bottom: f64 = alloc
        .iter()
        .enumerate()
        .filter(|(v, _)| !in_bottom[*v])
        .map(|(_, &a)| a)
        .sum();

    let (cond_few_neighbors, cond_mass_allocated) =
        condition_holds(top_neighborhood, sets.bottom.len(), mass_off_bottom, eps);

    TerminationCheck {
        terminated: cond_few_neighbors || cond_mass_allocated,
        cond_few_neighbors,
        cond_mass_allocated,
        top_size: sets.top.len(),
        bottom_size: sets.bottom.len(),
        top_neighborhood,
        mass_off_bottom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::BipartiteBuilder;

    fn toy() -> Bipartite {
        let mut b = BipartiteBuilder::new(3, 3);
        for (u, v) in [(0u32, 0u32), (1, 0), (1, 1), (2, 2)] {
            b.add_edge(u, v);
        }
        b.build_with_uniform_capacity(1).unwrap()
    }

    #[test]
    fn empty_top_set_terminates() {
        let g = toy();
        // After 5 rounds, no vertex is at level ±5 ⇒ N(L_top) = 0 ≤ |L_bot|.
        let levels = vec![0i64, 2, -3];
        let t = check(&g, &levels, &[0.5, 0.5, 0.5], 5, 0.1);
        assert!(t.terminated);
        assert!(t.cond_few_neighbors);
        assert_eq!(t.top_neighborhood, 0);
    }

    #[test]
    fn condition_one_counts_distinct_neighbors() {
        let g = toy();
        // rounds = 1: top = {v0, v1} (level 1), bottom = {v2} (level −1).
        // N(top) = {u0, u1} (u1 shared) ⇒ 2 > 1 = |bottom| ⇒ cond1 false.
        let levels = vec![1i64, 1, -1];
        let t = check(&g, &levels, &[0.0, 0.0, 0.0], 1, 0.1);
        assert!(!t.cond_few_neighbors);
        assert_eq!(t.top_neighborhood, 2);
        assert_eq!(t.bottom_size, 1);
        // alloc all zero ⇒ cond2 false too.
        assert!(!t.terminated);
    }

    #[test]
    fn condition_two_mass_threshold() {
        let g = toy();
        let levels = vec![1i64, 1, -1];
        // mass off bottom = alloc(v0) + alloc(v1); N(top) = 2.
        // Threshold: (1 − 0.05)·2 = 1.9.
        let t = check(&g, &levels, &[1.0, 0.95, 10.0], 1, 0.1);
        assert!(t.cond_mass_allocated, "1.95 ≥ 1.9");
        assert!(t.terminated);
        let t = check(&g, &levels, &[1.0, 0.85, 10.0], 1, 0.1);
        assert!(!t.cond_mass_allocated, "1.85 < 1.9");
    }

    #[test]
    fn predicate_hook_matches_check() {
        let g = toy();
        let levels = vec![1i64, 1, -1];
        let alloc = [1.0, 0.95, 10.0];
        let t = check(&g, &levels, &alloc, 1, 0.1);
        let (c1, c2) = condition_holds(t.top_neighborhood, t.bottom_size, t.mass_off_bottom, 0.1);
        assert_eq!(c1, t.cond_few_neighbors);
        assert_eq!(c2, t.cond_mass_allocated);
        // The empty ball terminates trivially (0 ≤ 0, 0 ≥ 0).
        assert_eq!(condition_holds(0, 0, 0.0, 0.1), (true, true));
    }

    #[test]
    fn bottom_mass_excluded() {
        let g = toy();
        let levels = vec![1i64, 1, -1];
        // v2 is in the bottom: its huge alloc must not count.
        let t = check(&g, &levels, &[0.0, 0.0, 100.0], 1, 0.1);
        assert!((t.mass_off_bottom - 0.0).abs() < 1e-12);
        assert!(!t.terminated);
    }
}

//! End-to-end solver: Theorem 1 / Theorem 3 as a single call.
//!
//! `fractional (2+ε, O(log λ) rounds) → rounding (§6) → boosting
//! (Appendix B)` ⇒ a `(1+O(ε))`-approximate integral allocation. Every
//! stage is swappable so experiments can ablate them (E11).

use sparse_alloc_graph::{Assignment, Bipartite};

use crate::algo1::{self, ProportionalConfig};
use crate::boosting::{boost_hk, boost_layered, LayeredConfig};
use crate::guessing;
use crate::params::Schedule;
use crate::rounding;

/// Which rounding stage to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounder {
    /// Deterministic greedy rounding by decreasing `x_e` (default; not in
    /// the paper but dominant in practice).
    Greedy,
    /// The paper's §6 sampling rounder, best of `k` repetitions.
    BestOfSampling {
        /// Repetitions (`O(log n)` for the whp guarantee).
        repetitions: usize,
    },
}

/// Which boosting stage to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Booster {
    /// Capacitated Hopcroft–Karp with walk budget `2k−1`.
    Hk {
        /// Walk budget parameter (`k ≈ 1/ε`).
        k: usize,
    },
    /// GGM22-style randomized layered walks.
    Layered {
        /// Matched layers.
        k: usize,
        /// Random layerings to try.
        iterations: usize,
    },
    /// No boosting (ablation).
    None,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The `(1+ε)` parameter driving every stage's schedule.
    pub eps: f64,
    /// Fractional-stage schedule; `None` = λ-oblivious guessing driver
    /// (the paper's headline mode).
    pub schedule: Option<Schedule>,
    /// Rounding stage.
    pub rounder: Rounder,
    /// Boosting stage.
    pub booster: Booster,
    /// Seed for the randomized stages.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            eps: 0.1,
            schedule: None,
            rounder: Rounder::Greedy,
            booster: Booster::Hk { k: 10 },
            seed: 1,
        }
    }
}

/// Pipeline output with per-stage diagnostics.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The final integral allocation.
    pub assignment: Assignment,
    /// Weight of the fractional stage's output.
    pub fractional_weight: f64,
    /// Size after rounding, before boosting.
    pub rounded_size: usize,
    /// LOCAL rounds spent in the fractional stage (across guesses if the
    /// λ-oblivious driver ran).
    pub fractional_rounds: usize,
}

/// Run the full pipeline.
pub fn solve(g: &Bipartite, config: &PipelineConfig) -> PipelineResult {
    // Stage 1: fractional allocation.
    let (frac, rounds) = match config.schedule {
        Some(schedule) => {
            let res = algo1::run(
                g,
                &ProportionalConfig {
                    eps: config.eps,
                    schedule,
                    track_history: false,
                },
            );
            (res.fractional, res.rounds)
        }
        None => {
            let out = guessing::run_with_guessing(g, config.eps);
            (out.result.fractional, out.total_rounds)
        }
    };
    let fractional_weight = frac.weight;

    // Stage 2: rounding.
    let rounded = match config.rounder {
        Rounder::Greedy => rounding::round_greedy(g, &frac),
        Rounder::BestOfSampling { repetitions } => {
            rounding::round_best_of(g, &frac, repetitions, config.seed)
        }
    };
    let rounded_size = rounded.size();

    // Stage 3: boosting.
    let assignment = match config.booster {
        Booster::Hk { k } => boost_hk(g, &rounded, k).0,
        Booster::Layered { k, iterations } => {
            boost_layered(
                g,
                &rounded,
                &LayeredConfig {
                    k,
                    iterations,
                    seed: config.seed,
                },
            )
            .0
        }
        Booster::None => rounded,
    };

    PipelineResult {
        assignment,
        fractional_weight,
        rounded_size,
        fractional_rounds: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{
        power_law, star, union_of_spanning_trees, PowerLawParams,
    };

    #[test]
    fn default_pipeline_is_near_optimal_on_sparse() {
        for seed in [1u64, 2, 3] {
            let g = union_of_spanning_trees(150, 120, 3, 2, seed).graph;
            let out = solve(&g, &PipelineConfig::default());
            out.assignment.validate(&g).unwrap();
            let opt = opt_value(&g);
            let ratio = opt as f64 / out.assignment.size().max(1) as f64;
            // k = 10 boosting ⇒ within 1 + 1/10 of optimal.
            assert!(
                ratio <= 1.1 + 1e-9,
                "seed {seed}: ratio {ratio} (size {} vs OPT {opt})",
                out.assignment.size()
            );
        }
    }

    #[test]
    fn paper_faithful_stages_work() {
        let g = union_of_spanning_trees(120, 100, 2, 2, 5).graph;
        let cfg = PipelineConfig {
            eps: 0.1,
            schedule: Some(Schedule::KnownLambda(2)),
            rounder: Rounder::BestOfSampling { repetitions: 24 },
            booster: Booster::Layered {
                k: 4,
                iterations: 300,
            },
            seed: 7,
        };
        let out = solve(&g, &cfg);
        out.assignment.validate(&g).unwrap();
        let opt = opt_value(&g);
        assert!(
            out.assignment.size() as f64 >= 0.85 * opt as f64,
            "size {} vs OPT {opt}",
            out.assignment.size()
        );
        // Diagnostics are populated and consistent.
        assert!(out.fractional_weight > 0.0);
        assert!(out.rounded_size <= out.assignment.size());
        assert!(out.fractional_rounds > 0);
    }

    #[test]
    fn ablation_no_boost_is_weaker_or_equal() {
        let g = union_of_spanning_trees(100, 80, 3, 2, 9).graph;
        let mut cfg = PipelineConfig::default();
        let boosted = solve(&g, &cfg);
        cfg.booster = Booster::None;
        let unboosted = solve(&g, &cfg);
        assert!(boosted.assignment.size() >= unboosted.assignment.size());
    }

    #[test]
    fn star_pipeline_exact() {
        let g = star(40, 7).graph;
        let out = solve(&g, &PipelineConfig::default());
        out.assignment.validate(&g).unwrap();
        assert_eq!(out.assignment.size(), 7);
    }

    #[test]
    fn power_law_workload() {
        let g = power_law(
            &PowerLawParams {
                n_left: 400,
                n_right: 80,
                exponent: 1.2,
                min_degree: 2,
                max_degree: 64,
                cap: 4,
            },
            3,
        )
        .graph;
        let out = solve(&g, &PipelineConfig::default());
        out.assignment.validate(&g).unwrap();
        let opt = opt_value(&g);
        assert!(
            out.assignment.size() as f64 >= opt as f64 / 1.1 - 1.0,
            "size {} vs OPT {opt}",
            out.assignment.size()
        );
    }

    #[test]
    fn deterministic() {
        let g = union_of_spanning_trees(80, 70, 2, 2, 11).graph;
        let a = solve(&g, &PipelineConfig::default());
        let b = solve(&g, &PipelineConfig::default());
        assert_eq!(a.assignment.mate, b.assignment.mate);
    }
}

//! §6 — from fractional to integral allocation.
//!
//! The paper's randomized rounding: sample each edge independently with
//! probability `x_e/6`; call a vertex *heavy* if it ends up with more
//! sampled edges than its capacity (for `u ∈ L` the capacity is 1), and
//! drop **all** sampled edges at heavy vertices. §6 proves
//! `E[|M|] ≥ wt(M_f)/9`, so a constant fraction survives in expectation;
//! running `O(log n)` independent copies and keeping the best gives a
//! `Θ(1)`-approximation with high probability.
//!
//! `round_greedy` is an additional deterministic rounder (not from the
//! paper): scan edges by decreasing `x_e` and keep every edge that still
//! fits. It dominates the sampling rounder in practice and the pipeline
//! uses it by default; experiments report both.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::{Assignment, Bipartite};

use crate::fractional::FractionalAllocation;

/// One run of the §6 sampling rounder.
pub fn round_sampling(g: &Bipartite, frac: &FractionalAllocation, seed: u64) -> Assignment {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rights = g.edge_right_endpoints();

    // Sample edges with probability x_e / 6.
    let mut sampled_at_left: Vec<u32> = vec![0; g.n_left()];
    let mut sampled_at_right: Vec<u64> = vec![0; g.n_right()];
    let mut sampled_edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..g.n_left() as u32 {
        for e in g.left_edge_range(u) {
            let x = frac.x[e];
            if x > 0.0 && rng.gen_bool((x / 6.0).clamp(0.0, 1.0)) {
                let v = rights[e];
                sampled_at_left[u as usize] += 1;
                sampled_at_right[v as usize] += 1;
                sampled_edges.push((u, v));
            }
        }
    }

    // Drop all edges at heavy vertices.
    let mut assignment = Assignment::empty(g.n_left());
    for (u, v) in sampled_edges {
        let left_heavy = sampled_at_left[u as usize] > 1;
        let right_heavy = sampled_at_right[v as usize] > g.capacity(v);
        if !left_heavy && !right_heavy {
            assignment.mate[u as usize] = Some(v);
        }
    }
    assignment
}

/// Best of `k` independent sampling rounds (the paper's whp amplification;
/// `k = O(log n)`).
pub fn round_best_of(
    g: &Bipartite,
    frac: &FractionalAllocation,
    k: usize,
    seed: u64,
) -> Assignment {
    assert!(k >= 1);
    let mut best: Option<Assignment> = None;
    for i in 0..k {
        let candidate = round_sampling(g, frac, seed.wrapping_add(i as u64));
        let better = best
            .as_ref()
            .map(|b| candidate.size() > b.size())
            .unwrap_or(true);
        if better {
            best = Some(candidate);
        }
    }
    best.expect("k ≥ 1")
}

/// Deterministic greedy rounding by decreasing fractional value.
pub fn round_greedy(g: &Bipartite, frac: &FractionalAllocation) -> Assignment {
    let rights = g.edge_right_endpoints();
    let lefts = g.edge_left_endpoints();
    let mut order: Vec<u32> = (0..g.m() as u32).collect();
    order.sort_by(|&a, &b| {
        frac.x[b as usize]
            .partial_cmp(&frac.x[a as usize])
            .expect("x values are finite")
            .then(a.cmp(&b))
    });
    let mut residual: Vec<u64> = g.capacities().to_vec();
    let mut assignment = Assignment::empty(g.n_left());
    for e in order {
        if frac.x[e as usize] <= 0.0 {
            break;
        }
        let (u, v) = (lefts[e as usize], rights[e as usize]);
        if assignment.mate[u as usize].is_none() && residual[v as usize] > 0 {
            assignment.mate[u as usize] = Some(v);
            residual[v as usize] -= 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo1::{self, ProportionalConfig};
    use crate::params::Schedule;
    use sparse_alloc_graph::generators::{star, union_of_spanning_trees};

    fn fractional_for(g: &Bipartite, eps: f64, lambda: u32) -> FractionalAllocation {
        algo1::run(
            g,
            &ProportionalConfig {
                eps,
                schedule: Schedule::KnownLambda(lambda),
                track_history: false,
            },
        )
        .fractional
    }

    #[test]
    fn sampled_rounding_is_feasible() {
        let g = union_of_spanning_trees(120, 100, 3, 2, 4).graph;
        let frac = fractional_for(&g, 0.1, 3);
        for seed in 0..10 {
            round_sampling(&g, &frac, seed).validate(&g).unwrap();
        }
    }

    #[test]
    fn expectation_bound_holds_empirically() {
        // E[|M|] ≥ wt(M_f)/9: average over many seeds must clear the bound
        // with slack (we use /10 to absorb sampling noise).
        let g = union_of_spanning_trees(400, 300, 3, 2, 11).graph;
        let frac = fractional_for(&g, 0.1, 3);
        let trials = 60;
        let mean: f64 = (0..trials)
            .map(|s| round_sampling(&g, &frac, s).size() as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(
            mean >= frac.weight / 10.0,
            "mean rounded size {mean} below wt/10 = {}",
            frac.weight / 10.0
        );
    }

    #[test]
    fn best_of_amplifies() {
        let g = union_of_spanning_trees(200, 150, 2, 2, 6).graph;
        let frac = fractional_for(&g, 0.1, 2);
        let single = round_sampling(&g, &frac, 1).size();
        let best = round_best_of(&g, &frac, 20, 1).size();
        assert!(best >= single);
        assert!(
            best as f64 >= frac.weight / 9.0 - 1.0,
            "best {best} too small"
        );
        round_best_of(&g, &frac, 20, 1).validate(&g).unwrap();
    }

    #[test]
    fn greedy_rounding_feasible_and_strong() {
        let g = union_of_spanning_trees(150, 120, 3, 2, 8).graph;
        let frac = fractional_for(&g, 0.1, 3);
        let a = round_greedy(&g, &frac);
        a.validate(&g).unwrap();
        // Greedy rounding of a (2+10ε)-approximate fractional solution
        // loses at most another factor 2 (it is maximal on the support):
        assert!(
            a.size() as f64 >= frac.weight / 2.0 - 1.0,
            "greedy {} vs weight {}",
            a.size(),
            frac.weight
        );
    }

    #[test]
    fn star_rounding_respects_capacity() {
        let g = star(30, 4).graph;
        let frac = fractional_for(&g, 0.1, 1);
        let a = round_greedy(&g, &frac);
        a.validate(&g).unwrap();
        assert_eq!(a.size(), 4);
        for seed in 0..5 {
            let s = round_sampling(&g, &frac, seed);
            s.validate(&g).unwrap();
            assert!(s.size() <= 4);
        }
    }

    #[test]
    fn zero_fraction_edges_never_selected() {
        let g = star(5, 2).graph;
        let frac = FractionalAllocation {
            x: vec![0.0; g.m()],
            weight: 0.0,
        };
        assert_eq!(round_sampling(&g, &frac, 3).size(), 0);
        assert_eq!(round_greedy(&g, &frac).size(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = union_of_spanning_trees(80, 60, 2, 2, 2).graph;
        let frac = fractional_for(&g, 0.2, 2);
        assert_eq!(
            round_sampling(&g, &frac, 9).mate,
            round_sampling(&g, &frac, 9).mate
        );
        assert_eq!(round_greedy(&g, &frac).mate, round_greedy(&g, &frac).mate);
    }
}

//! The two aggregation passes at the heart of every round of Algorithm 1/3:
//! `β_u = Σ_{v∈N_u} β_v` for `u ∈ L`, and
//! `alloc_v = Σ_{u∈N_v} β_v / β_u` for `v ∈ R` (§5's reformulation of
//! lines 2–3 of Algorithm 1).
//!
//! Sums are locally normalized by the maximum level in each neighborhood
//! (see [`crate::levels`]), computed in CSR order so results are identical
//! regardless of rayon thread count.

use rayon::prelude::*;
use sparse_alloc_graph::Bipartite;

use crate::levels::PowTable;

/// The left-side aggregate for one `u ∈ L`:
/// `β_u = (1+ε)^{max_level} · norm_sum`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeftAggregate {
    /// `max_{v ∈ N_u} level_v` (meaningless if `deg(u) = 0`).
    pub max_level: i64,
    /// `Σ_{v ∈ N_u} (1+ε)^{level_v − max_level}` — in `[1, deg(u)]`.
    pub norm_sum: f64,
}

impl LeftAggregate {
    /// The aggregate of an isolated left vertex (no neighbors, no mass).
    pub const EMPTY: LeftAggregate = LeftAggregate {
        max_level: i64::MIN,
        norm_sum: 0.0,
    };
}

/// The per-vertex step behind [`left_aggregates`]: the aggregate of one
/// left vertex over an arbitrary neighbor iterator.
///
/// This is the hook incremental engines (the `sparse-alloc-dynamic`
/// repair loop) use to re-run the proportional dynamics on overlay
/// adjacency without materializing a CSR snapshot. Returns
/// [`LeftAggregate::EMPTY`] for an empty neighborhood.
pub fn left_aggregate_of(
    neighbors: impl Iterator<Item = u32> + Clone,
    levels: &[i64],
    pows: &PowTable,
) -> LeftAggregate {
    let Some(max_level) = neighbors.clone().map(|v| levels[v as usize]).max() else {
        return LeftAggregate::EMPTY;
    };
    let norm_sum: f64 = neighbors
        .map(|v| pows.pow_diff(levels[v as usize] - max_level))
        .sum();
    LeftAggregate {
        max_level,
        norm_sum,
    }
}

/// The share `x_{u,v} = β_v / β_u` a left vertex with aggregate `agg`
/// sends to a neighbor at `level_v` (the line-2 quantity of Algorithm 1,
/// locally normalized). The companion per-edge hook to
/// [`left_aggregate_of`].
#[inline]
pub fn alloc_share(level_v: i64, agg: &LeftAggregate, pows: &PowTable) -> f64 {
    debug_assert!(level_v <= agg.max_level, "v ∈ N_u ⇒ level_v ≤ max");
    pows.pow_diff(level_v - agg.max_level) / agg.norm_sum
}

/// Compute all left aggregates for the given right-side levels. `O(m)`.
pub fn left_aggregates(g: &Bipartite, levels: &[i64], pows: &PowTable) -> Vec<LeftAggregate> {
    (0..g.n_left() as u32)
        .into_par_iter()
        .map(|u| left_aggregate_of(g.left_neighbors(u).iter().copied(), levels, pows))
        .collect()
}

/// Compute `alloc_v = Σ_{u ∈ N_v} x_{u,v}` with
/// `x_{u,v} = β_v / β_u = (1+ε)^{level_v − max_level_u} / norm_sum_u`.
/// `O(m)`.
pub fn right_allocs(
    g: &Bipartite,
    levels: &[i64],
    lefts: &[LeftAggregate],
    pows: &PowTable,
) -> Vec<f64> {
    (0..g.n_right() as u32)
        .into_par_iter()
        .map(|v| {
            let lv = levels[v as usize];
            g.right_neighbors(v)
                .iter()
                .map(|&u| alloc_share(lv, &lefts[u as usize], pows))
                .sum()
        })
        .collect()
}

/// Per-edge fractional values `x_{u,v}` (the line-2 quantities of
/// Algorithm 1), indexed by edge id. `O(m)`.
pub fn edge_fractions(
    g: &Bipartite,
    levels: &[i64],
    lefts: &[LeftAggregate],
    pows: &PowTable,
) -> Vec<f64> {
    let mut x = vec![0.0f64; g.m()];
    // Parallelize over left vertices; each writes its own contiguous edge
    // range.
    let chunks: Vec<(u32, std::ops::Range<usize>)> = (0..g.n_left() as u32)
        .map(|u| (u, g.left_edge_range(u)))
        .collect();
    // Split x into per-vertex slices in order.
    let mut rest: &mut [f64] = &mut x;
    let mut slices: Vec<(u32, &mut [f64])> = Vec::with_capacity(chunks.len());
    let mut cursor = 0usize;
    for (u, range) in chunks {
        let (head, tail) = rest.split_at_mut(range.end - cursor);
        slices.push((u, head));
        rest = tail;
        cursor = range.end;
    }
    slices.into_par_iter().for_each(|(u, xs)| {
        let agg = &lefts[u as usize];
        for (&v, slot) in g.left_neighbors(u).iter().zip(xs.iter_mut()) {
            *slot = alloc_share(levels[v as usize], agg, pows);
        }
    });
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::BipartiteBuilder;

    fn toy() -> Bipartite {
        // L = {0,1}, R = {0,1,2}; u0 ~ {v0, v1}, u1 ~ {v1, v2}.
        let mut b = BipartiteBuilder::new(2, 3);
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 1), (1, 2)] {
            b.add_edge(u, v);
        }
        b.build_with_uniform_capacity(1).unwrap()
    }

    #[test]
    fn uniform_levels_give_proportional_split() {
        let g = toy();
        let pows = PowTable::new(0.5);
        let levels = vec![0i64, 0, 0];
        let lefts = left_aggregates(&g, &levels, &pows);
        // Each u has two neighbors with equal β ⇒ norm_sum = 2.
        assert!((lefts[0].norm_sum - 2.0).abs() < 1e-12);
        let allocs = right_allocs(&g, &levels, &lefts, &pows);
        // v0 gets ½ from u0; v1 gets ½ + ½; v2 gets ½.
        assert!((allocs[0] - 0.5).abs() < 1e-12);
        assert!((allocs[1] - 1.0).abs() < 1e-12);
        assert!((allocs[2] - 0.5).abs() < 1e-12);
        let x = edge_fractions(&g, &levels, &lefts, &pows);
        assert!(x.iter().all(|&xi| (xi - 0.5).abs() < 1e-12));
    }

    #[test]
    fn skewed_levels_shift_mass() {
        let g = toy();
        let eps = 1.0; // β = 2^level for easy arithmetic
        let pows = PowTable::new(eps);
        let levels = vec![1i64, 0, 0]; // β = [2, 1, 1]
        let lefts = left_aggregates(&g, &levels, &pows);
        // u0: max level 1, norm_sum = 1 + 1/2 = 1.5 ⇒ β_u0 = 3.
        assert_eq!(lefts[0].max_level, 1);
        assert!((lefts[0].norm_sum - 1.5).abs() < 1e-12);
        let allocs = right_allocs(&g, &levels, &lefts, &pows);
        // x_{u0,v0} = 2/3, x_{u0,v1} = 1/3, x_{u1,v1} = x_{u1,v2} = 1/2.
        assert!((allocs[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((allocs[1] - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((allocs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_left_sum_is_one() {
        // Fractions from each left vertex always sum to 1 (they are a
        // proportional split).
        let g = toy();
        let pows = PowTable::new(0.25);
        let levels = vec![5i64, -3, 12];
        let lefts = left_aggregates(&g, &levels, &pows);
        let x = edge_fractions(&g, &levels, &lefts, &pows);
        for u in 0..g.n_left() as u32 {
            let s: f64 = g.left_edge_range(u).map(|e| x[e]).sum();
            assert!((s - 1.0).abs() < 1e-9, "u = {u}, s = {s}");
        }
    }

    #[test]
    fn huge_level_gaps_underflow_gracefully() {
        let g = toy();
        let pows = PowTable::new(0.5);
        // v2's level is astronomically below v1: its share underflows to 0.
        let levels = vec![0i64, 0, -100_000];
        let lefts = left_aggregates(&g, &levels, &pows);
        let allocs = right_allocs(&g, &levels, &lefts, &pows);
        assert_eq!(allocs[2], 0.0);
        assert!((allocs[1] - 1.5).abs() < 1e-12); // u1 gives ~all to v1
        assert!(allocs.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn isolated_left_vertex_is_skipped() {
        let mut b = BipartiteBuilder::new(2, 1);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let pows = PowTable::new(0.5);
        let lefts = left_aggregates(&g, &[0], &pows);
        assert_eq!(lefts[1].norm_sum, 0.0);
        let allocs = right_allocs(&g, &[0], &lefts, &pows);
        assert!((allocs[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_textbook_brute_force() {
        // The normalized computation must equal the literal textbook
        // formulas (raw (1+ε)^level powers) wherever the latter are
        // representable.
        let g = sparse_alloc_graph::generators::random_bipartite(30, 25, 140, 2, 12).graph;
        let eps = 0.3;
        let pows = PowTable::new(eps);
        let levels: Vec<i64> = (0..25).map(|v| ((v * 7) % 11) as i64 - 5).collect();
        let beta = |l: i64| (1.0 + eps).powi(l as i32);

        let lefts = left_aggregates(&g, &levels, &pows);
        let allocs = right_allocs(&g, &levels, &lefts, &pows);
        let x = edge_fractions(&g, &levels, &lefts, &pows);

        // Brute force per edge and per right vertex.
        for u in 0..g.n_left() as u32 {
            let denom: f64 = g
                .left_neighbors(u)
                .iter()
                .map(|&v| beta(levels[v as usize]))
                .sum();
            for (e, &v) in g.left_edge_range(u).zip(g.left_neighbors(u)) {
                let expect = beta(levels[v as usize]) / denom;
                assert!(
                    (x[e] - expect).abs() <= 1e-12 * expect.max(1e-300),
                    "edge ({u},{v}): {} vs {expect}",
                    x[e]
                );
            }
        }
        for v in 0..g.n_right() as u32 {
            let expect: f64 = g
                .right_neighbors(v)
                .iter()
                .map(|&u| {
                    let denom: f64 = g
                        .left_neighbors(u)
                        .iter()
                        .map(|&w| beta(levels[w as usize]))
                        .sum();
                    beta(levels[v as usize]) / denom
                })
                .sum();
            assert!(
                (allocs[v as usize] - expect).abs() <= 1e-11 * expect.max(1e-300),
                "alloc {v}: {} vs {expect}",
                allocs[v as usize]
            );
        }
    }

    #[test]
    fn per_vertex_hooks_match_bulk_passes() {
        // The single-vertex hooks (used by the dynamic repair engine on
        // overlay adjacency) must agree exactly with the bulk passes.
        let g = sparse_alloc_graph::generators::random_bipartite(30, 25, 140, 2, 4).graph;
        let pows = PowTable::new(0.2);
        let levels: Vec<i64> = (0..25).map(|v| ((v * 5) % 9) as i64 - 4).collect();
        let lefts = left_aggregates(&g, &levels, &pows);
        for u in 0..g.n_left() as u32 {
            let one = left_aggregate_of(g.left_neighbors(u).iter().copied(), &levels, &pows);
            assert_eq!(one, lefts[u as usize], "u = {u}");
        }
        let allocs = right_allocs(&g, &levels, &lefts, &pows);
        for v in 0..g.n_right() as u32 {
            let one: f64 = g
                .right_neighbors(v)
                .iter()
                .map(|&u| alloc_share(levels[v as usize], &lefts[u as usize], &pows))
                .sum();
            assert_eq!(one, allocs[v as usize], "v = {v}");
        }
        assert_eq!(
            left_aggregate_of(std::iter::empty(), &levels, &pows),
            LeftAggregate::EMPTY
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = sparse_alloc_graph::generators::random_bipartite(200, 150, 900, 2, 3).graph;
        let pows = PowTable::new(0.1);
        let levels: Vec<i64> = (0..150).map(|v| (v % 7) as i64 - 3).collect();
        let compute = || {
            let lefts = left_aggregates(&g, &levels, &pows);
            let allocs = right_allocs(&g, &levels, &lefts, &pows);
            let x = edge_fractions(&g, &levels, &lefts, &pows);
            (allocs, x)
        };
        let a = compute();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let b = pool.install(compute);
        assert_eq!(a, b);
    }
}

//! Algorithm 3 — Algorithm 1 with perturbed update thresholds
//! (paper, Appendix A).
//!
//! The update rule becomes: increase `β_v` iff `alloc_v ≤ C_v/(1+k_{v,r}ε)`
//! and decrease iff `alloc_v ≥ C_v(1+k_{v,r}ε)`, with per-vertex, per-round
//! parameters `k_{v,r}`. Lemma 13 shows the sampled MPC execution
//! (Algorithm 2) is, with high probability, *equal* to Algorithm 3 for some
//! `k_{v,r} ∈ [1/4, 4]`; Theorem 16 shows any such run is a
//! `(2+(2k+8)ε)`-approximation after the λ-schedule. This module is the
//! bridge that lets tests connect the sampled executions to the exact
//! analysis.

use sparse_alloc_graph::Bipartite;

use crate::algo1::{run_loop, ProportionalConfig, ProportionalResult};

/// Per-vertex, per-round threshold parameters `(k_lo, k_hi)`.
///
/// The paper uses a single `k_{v,r}` for both sides of the rule; the
/// implementation allows them to differ (the Lemma 13 construction picks
/// different values per case anyway — `1/4`, `1/2`, `3`, `1`).
pub trait ThresholdOracle {
    /// The thresholds for vertex `v` in round `r` (1-based).
    fn thresholds(&self, v: u32, round: usize) -> (f64, f64);
}

/// Algorithm 1's thresholds: `k ≡ 1`.
#[derive(Debug, Clone, Copy)]
pub struct UnitThresholds;

impl ThresholdOracle for UnitThresholds {
    fn thresholds(&self, _: u32, _: usize) -> (f64, f64) {
        (1.0, 1.0)
    }
}

/// The unit oracle (Algorithm 1).
pub fn unit_thresholds() -> UnitThresholds {
    UnitThresholds
}

/// A fixed table of thresholds, `k[v][r − 1]`, for replaying a recorded
/// execution.
#[derive(Debug, Clone)]
pub struct TableThresholds {
    /// `k[v][r-1] = (k_lo, k_hi)`; rounds beyond the table use `(1, 1)`.
    pub table: Vec<Vec<(f64, f64)>>,
}

impl ThresholdOracle for TableThresholds {
    fn thresholds(&self, v: u32, round: usize) -> (f64, f64) {
        self.table
            .get(v as usize)
            .and_then(|per_round| per_round.get(round - 1))
            .copied()
            .unwrap_or((1.0, 1.0))
    }
}

/// Deterministic pseudo-random thresholds in `[1/k_max, k_max]` — used by
/// tests to exercise the robustness claim of Theorem 16 without a sampled
/// execution.
#[derive(Debug, Clone, Copy)]
pub struct JitterThresholds {
    /// Upper bound `k`; lower bound is `1/k`.
    pub k_max: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl ThresholdOracle for JitterThresholds {
    fn thresholds(&self, v: u32, round: usize) -> (f64, f64) {
        // SplitMix-style hash of (seed, v, round) → two values in
        // [1/k_max, k_max].
        let mut z = self
            .seed
            .wrapping_add((v as u64) << 32)
            .wrapping_add(round as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let unit = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;
        let lo = self.k_max.recip();
        let span = self.k_max - lo;
        (lo + span * unit(next()), lo + span * unit(next()))
    }
}

/// Run Algorithm 3 with the given threshold oracle. With
/// [`UnitThresholds`] this is exactly Algorithm 1.
pub fn run_with_thresholds<O: ThresholdOracle>(
    g: &Bipartite,
    config: &ProportionalConfig,
    oracle: &O,
) -> ProportionalResult {
    let (max_rounds, check_termination) = config.schedule.resolve(config.eps, g.n_right());
    run_loop(
        g,
        config.eps,
        max_rounds,
        check_termination,
        config.track_history,
        |v, r| oracle.thresholds(v, r),
        |_, _, _| {},
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo1;
    use crate::params::Schedule;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::union_of_spanning_trees;

    fn cfg(eps: f64, schedule: Schedule) -> ProportionalConfig {
        ProportionalConfig {
            eps,
            schedule,
            track_history: false,
        }
    }

    #[test]
    fn unit_oracle_equals_algo1() {
        let g = union_of_spanning_trees(70, 60, 3, 2, 5).graph;
        let c = cfg(0.15, Schedule::Fixed(25));
        let a = algo1::run(&g, &c);
        let b = run_with_thresholds(&g, &c, &UnitThresholds);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.match_weight, b.match_weight);
    }

    #[test]
    fn theorem16_ratio_with_jitter() {
        // k ∈ [1/4, 4]: Theorem 16 gives (2 + (2·4+8)ε) = 2 + 16ε.
        let eps = 0.05;
        let k = 3u32;
        let g = union_of_spanning_trees(150, 120, k, 2, 9).graph;
        let oracle = JitterThresholds {
            k_max: 4.0,
            seed: 7,
        };
        let res = run_with_thresholds(&g, &cfg(eps, Schedule::KnownLambda(k)), &oracle);
        let opt = opt_value(&g);
        let ratio = algo1::ratio(opt, res.match_weight);
        assert!(
            ratio <= 2.0 + 16.0 * eps + 1e-9,
            "ratio {ratio} exceeds 2+16ε"
        );
        res.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn table_replay_matches_jitter() {
        // Record a jittered run into a table, replay it, get identical
        // levels — the mechanism Lemma 13's equivalence argument uses.
        let g = union_of_spanning_trees(40, 35, 2, 2, 4).graph;
        let c = cfg(0.2, Schedule::Fixed(12));
        let jitter = JitterThresholds {
            k_max: 4.0,
            seed: 3,
        };
        let a = run_with_thresholds(&g, &c, &jitter);

        let table = TableThresholds {
            table: (0..g.n_right() as u32)
                .map(|v| (1..=12).map(|r| jitter.thresholds(v, r)).collect())
                .collect(),
        };
        let b = run_with_thresholds(&g, &c, &table);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.alloc, b.alloc);
    }

    #[test]
    fn jitter_is_deterministic_but_varies() {
        let o = JitterThresholds {
            k_max: 4.0,
            seed: 1,
        };
        assert_eq!(o.thresholds(5, 3), o.thresholds(5, 3));
        assert_ne!(o.thresholds(5, 3), o.thresholds(5, 4));
        assert_ne!(o.thresholds(5, 3), o.thresholds(6, 3));
        for v in 0..50u32 {
            for r in 1..20usize {
                let (lo, hi) = o.thresholds(v, r);
                assert!((0.25..=4.0).contains(&lo));
                assert!((0.25..=4.0).contains(&hi));
            }
        }
    }

    #[test]
    fn out_of_table_rounds_default_to_unit() {
        let t = TableThresholds { table: vec![] };
        assert_eq!(t.thresholds(3, 1), (1.0, 1.0));
    }
}

//! The Lemma 11 sampling machinery.
//!
//! Lemma 11: for a population of `n` values within a spread factor `t²` of
//! each other, `s ≥ 20·t²·log n/ε⁴` uniform samples (with replacement,
//! rescaled by `n/s`) estimate the sum within `1 ± 4ε` with high
//! probability. Algorithm 2 applies it *stratified*: neighbors are grouped
//! by β-level at phase start; within a group values stay within `(1+ε)^{2B}`
//! of each other across a `B`-round phase, so per-group budgets of
//! `t = (1+ε)^{2B}·ε⁻⁵·log n` suffice for the whole phase — with **fresh
//! independent samples per simulated round** (the paper's emphasis).
//!
//! This module provides the counter-based deterministic RNG (the device
//! that makes the shared-memory and distributed executions bit-identical),
//! the grouped-neighborhood structure, and the plain Lemma 11 estimator
//! that experiment E5 stress-tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::Side;

/// Counter-based RNG: a fixed function of
/// `(seed, phase, round, side, vertex, group_key)`. Both execution paths of
/// Algorithm 2 derive their sample draws from this, which is what makes
/// them comparable bit-for-bit.
pub fn sample_rng(
    seed: u64,
    phase: usize,
    round_in_phase: usize,
    side: Side,
    vertex: u32,
    group_key: i64,
) -> SmallRng {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let side_tag = match side {
        Side::Left => 1u64,
        Side::Right => 2u64,
    };
    let mut h = seed ^ GOLDEN;
    for x in [
        phase as u64,
        round_in_phase as u64,
        side_tag,
        vertex as u64,
        group_key as u64,
    ] {
        h = mix(h ^ x.wrapping_mul(GOLDEN));
    }
    SmallRng::seed_from_u64(h)
}

/// A neighborhood partitioned into β-level groups (per vertex, per phase).
///
/// Groups are stored sorted by key; members keep adjacency order. Both
/// properties are load-bearing for cross-path determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedNeighborhood {
    /// Sorted, distinct group keys.
    pub keys: Vec<i64>,
    /// CSR offsets into `members` (length `keys.len() + 1`).
    pub offsets: Vec<u32>,
    /// Neighbor ids, grouped by key.
    pub members: Vec<u32>,
}

impl GroupedNeighborhood {
    /// Partition `neighbors` by `key_of`.
    pub fn build(neighbors: &[u32], key_of: impl Fn(u32) -> i64) -> Self {
        let mut pairs: Vec<(i64, u32)> = neighbors.iter().map(|&w| (key_of(w), w)).collect();
        // Stable by construction: sort by key, ties keep adjacency order.
        pairs.sort_by_key(|&(k, _)| k);
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut members = Vec::with_capacity(pairs.len());
        for (k, w) in pairs {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(members.len() as u32);
                *offsets.last_mut().expect("just pushed") = members.len() as u32;
            }
            members.push(w);
            *offsets.last_mut().expect("non-empty") = members.len() as u32;
        }
        GroupedNeighborhood {
            keys,
            offsets,
            members,
        }
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.keys.len()
    }

    /// Members of group `i`.
    pub fn group(&self, i: usize) -> &[u32] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The largest group key (`None` if the neighborhood is empty).
    pub fn max_key(&self) -> Option<i64> {
        self.keys.last().copied()
    }

    /// Draw the per-round sampling plan for this neighborhood: per group,
    /// `min(t, |G|)` members — all of them when the group fits the budget
    /// (factor 1), otherwise `t` uniform draws *with replacement* rescaled
    /// by `|G|/t`.
    ///
    /// `rng_for(group_key)` supplies the per-group counter RNG. Plans are
    /// the unit shipped into MPC balls; evaluating a plan with
    /// [`RoundPlan::eval`] is *the* numerical kernel of Algorithm 2 — both
    /// execution paths use it, so their float operations agree bit-for-bit.
    pub fn draw_plan(&self, t: usize, mut rng_for: impl FnMut(i64) -> SmallRng) -> RoundPlan {
        debug_assert!(t >= 1);
        let mut per_group = Vec::with_capacity(self.n_groups());
        for (i, &key) in self.keys.iter().enumerate() {
            let group = self.group(i);
            if group.len() <= t {
                per_group.push(PlanGroup {
                    key,
                    factor: 1.0,
                    drawn: group.to_vec(),
                });
            } else {
                let mut rng = rng_for(key);
                let drawn: Vec<u32> = (0..t)
                    .map(|_| group[rng.gen_range(0..group.len())])
                    .collect();
                per_group.push(PlanGroup {
                    key,
                    factor: group.len() as f64 / t as f64,
                    drawn,
                });
            }
        }
        RoundPlan { per_group }
    }

    /// Stratified sum estimate: draw a plan and evaluate it.
    pub fn estimate_sum(
        &self,
        t: usize,
        rng_for: impl FnMut(i64) -> SmallRng,
        f: impl FnMut(u32) -> f64,
    ) -> f64 {
        self.draw_plan(t, rng_for).eval(f)
    }
}

/// One group's share of a sampling plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGroup {
    /// The group's β-level key.
    pub key: i64,
    /// Rescale factor `|G| / samples` (1.0 for exhaustive groups).
    pub factor: f64,
    /// The drawn members (with multiplicity when sampled).
    pub drawn: Vec<u32>,
}

/// A per-(vertex, round) sampling plan: the sparsified view of a
/// neighborhood that Algorithm 2 ships into balls.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundPlan {
    /// Groups in ascending key order.
    pub per_group: Vec<PlanGroup>,
}

impl RoundPlan {
    /// Evaluate `Σ_groups factor · Σ_{drawn} f(member)`.
    ///
    /// The accumulation structure (per-group partial sums, groups in key
    /// order) is part of the cross-path equality contract — do not "just
    /// sum everything".
    pub fn eval(&self, mut f: impl FnMut(u32) -> f64) -> f64 {
        let mut total = 0.0f64;
        for g in &self.per_group {
            let mut acc = 0.0f64;
            for &w in &g.drawn {
                acc += f(w);
            }
            total += g.factor * acc;
        }
        total
    }

    /// All distinct members referenced by this plan.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_group.iter().flat_map(|g| g.drawn.iter().copied())
    }
}

/// The plain Lemma 11 estimator: `s` uniform samples with replacement from
/// `values`, rescaled by `n/s`. Exposed for experiment E5.
pub fn lemma11_estimate(values: &[f64], s: usize, rng: &mut SmallRng) -> f64 {
    assert!(s >= 1 && !values.is_empty());
    let n = values.len();
    let sum: f64 = (0..s).map(|_| values[rng.gen_range(0..n)]).sum();
    sum * n as f64 / s as f64
}

/// The Lemma 11 sample-count bound `s ≥ 20·t²·log n/ε⁴`.
pub fn lemma11_samples(t_spread: f64, n: usize, eps: f64) -> usize {
    (20.0 * t_spread * t_spread * (n.max(2) as f64).ln() / eps.powi(4)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rng_is_a_pure_function() {
        let a: Vec<u64> = {
            let mut r = sample_rng(7, 1, 2, Side::Left, 42, -3);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = sample_rng(7, 1, 2, Side::Left, 42, -3);
            (0..4).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        // Any coordinate change gives a different stream.
        for variant in [
            sample_rng(8, 1, 2, Side::Left, 42, -3),
            sample_rng(7, 2, 2, Side::Left, 42, -3),
            sample_rng(7, 1, 3, Side::Left, 42, -3),
            sample_rng(7, 1, 2, Side::Right, 42, -3),
            sample_rng(7, 1, 2, Side::Left, 43, -3),
            sample_rng(7, 1, 2, Side::Left, 42, -2),
        ] {
            let mut v = variant;
            let first: u64 = v.gen();
            let mut orig = sample_rng(7, 1, 2, Side::Left, 42, -3);
            let orig_first: u64 = orig.gen();
            assert_ne!(first, orig_first);
        }
    }

    #[test]
    fn grouping_partitions_and_sorts() {
        let neighbors = [10u32, 11, 12, 13, 14];
        let keys = [3i64, -1, 3, 0, -1];
        let g = GroupedNeighborhood::build(&neighbors, |w| keys[(w - 10) as usize]);
        assert_eq!(g.keys, vec![-1, 0, 3]);
        assert_eq!(g.group(0), &[11, 14]);
        assert_eq!(g.group(1), &[13]);
        assert_eq!(g.group(2), &[10, 12]);
        assert_eq!(g.max_key(), Some(3));
        assert_eq!(g.n_groups(), 3);
    }

    #[test]
    fn empty_neighborhood() {
        let g = GroupedNeighborhood::build(&[], |_| 0);
        assert_eq!(g.n_groups(), 0);
        assert_eq!(g.max_key(), None);
        let est = g.estimate_sum(5, |_| SmallRng::seed_from_u64(0), |_| 1.0);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn small_groups_are_exact() {
        let neighbors: Vec<u32> = (0..20).collect();
        let g = GroupedNeighborhood::build(&neighbors, |w| (w % 4) as i64);
        // Budget 5 = group size ⇒ exact.
        let est = g.estimate_sum(5, |_| SmallRng::seed_from_u64(1), |w| w as f64);
        let exact: f64 = (0..20).map(|w| w as f64).sum();
        assert!((est - exact).abs() < 1e-9);
    }

    #[test]
    fn sampled_estimate_concentrates() {
        // One big group with values within a 2× spread; many samples ⇒
        // small relative error.
        let neighbors: Vec<u32> = (0..10_000).collect();
        let value = |w: u32| 1.0 + ((w as f64 * 0.618).fract()); // [1, 2)
        let g = GroupedNeighborhood::build(&neighbors, |_| 0);
        let exact: f64 = neighbors.iter().map(|&w| value(w)).sum();
        let mut worst: f64 = 0.0;
        for seed in 0..10u64 {
            let est = g.estimate_sum(2_000, |k| sample_rng(seed, 0, 0, Side::Left, 0, k), value);
            worst = worst.max((est - exact).abs() / exact);
        }
        assert!(worst < 0.05, "relative error {worst}");
    }

    #[test]
    fn lemma11_bound_is_sufficient() {
        // Spread t = 4 population; s from the lemma ⇒ error ≤ 4ε whp.
        let eps = 0.5; // keep s small enough for a fast test
        let values: Vec<f64> = (0..5_000)
            .map(|i| 0.5 * (1.0 + 15.0 * ((i as f64 * 0.37).fract())))
            .collect(); // range [0.5, 8] = spread 16 = t² for t = 4
        let s = lemma11_samples(4.0, values.len(), eps);
        let exact: f64 = values.iter().sum();
        let mut failures = 0;
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let est = lemma11_estimate(&values, s, &mut rng);
            if (est - exact).abs() > 4.0 * eps * exact {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "Lemma 11 bound violated {failures}/20 times");
    }

    #[test]
    fn estimator_is_unbiased_in_the_mean() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 7) as f64 + 1.0).collect();
        let exact: f64 = values.iter().sum();
        let mut mean = 0.0;
        let trials = 200;
        for seed in 0..trials {
            let mut rng = SmallRng::seed_from_u64(seed as u64);
            mean += lemma11_estimate(&values, 50, &mut rng);
        }
        mean /= trials as f64;
        assert!(
            (mean - exact).abs() / exact < 0.02,
            "mean {mean} vs exact {exact}"
        );
    }
}

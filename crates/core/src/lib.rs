//! The paper's contribution: `(1+ε)`-approximate allocation in uniformly
//! sparse graphs, in LOCAL `O_ε(log λ)` rounds and sublinear-space MPC
//! `O_ε(√(log λ)·log log λ)` rounds.
//!
//! Reproduction of *Faster MPC Algorithms for Approximate Allocation in
//! Uniformly Sparse Graphs* (Łącki–Mitrović–Ramachandran–Sheu, SPAA 2025,
//! arXiv:2506.04524).
//!
//! # Map from paper to modules
//!
//! | paper | module |
//! |---|---|
//! | Algorithm 1 (proportional allocation, \[AZM18\]) | [`algo1`] |
//! | Algorithm 3 (perturbed thresholds, Appendix A) | [`algo3`] |
//! | Level sets `L_0 … L_{2τ}`, β arithmetic | [`levels`], [`aggregates`] |
//! | §4 termination condition (λ-oblivious stopping) | [`termination`] |
//! | Lemma 11 sampling estimator | [`estimator`] |
//! | Algorithm 2 (phase-compressed sampled execution) | [`sampled`] |
//! | Algorithm 2 on the MPC cluster (Theorem 10) | [`mpc_exec`] |
//! | §3.2.2 λ-guessing driver | [`guessing`] |
//! | §6 rounding (fractional → integral) | [`rounding`] |
//! | Appendix B boosting to `(1+ε)` | [`boosting`] |
//! | τ / B / t schedules (eq. 4 etc.) | [`params`] |
//! | AZM18 `O(log n/ε²)` baseline schedule | [`params`] |
//! | End-to-end Theorem 1 / Theorem 3 pipeline | [`pipeline`] |
//! | §1 application: load balancing \[ALPZ21\] | [`loadbalance`] |
//! | §1.2.1 extension: b-matching | [`extensions`] |
//!
//! # Quick start
//!
//! ```
//! use sparse_alloc_graph::generators::union_of_spanning_trees;
//! use sparse_alloc_core::{algo1, params::Schedule, pipeline};
//!
//! // A graph with arboricity ≤ 4 and capacities 2.
//! let g = union_of_spanning_trees(200, 150, 4, 2, 7).graph;
//!
//! // (2+10ε)-approximate fractional allocation in O(log λ) LOCAL rounds.
//! let res = algo1::run(&g, &algo1::ProportionalConfig {
//!     eps: 0.1,
//!     schedule: Schedule::KnownLambda(4),
//!     track_history: false,
//! });
//! assert!(res.match_weight > 0.0);
//!
//! // Full pipeline: fractional → rounding → boosting ⇒ integral allocation.
//! let out = pipeline::solve(&g, &pipeline::PipelineConfig::default());
//! out.assignment.validate(&g).unwrap();
//! ```

#![warn(missing_docs)]

pub mod aggregates;
pub mod algo1;
pub mod algo3;
pub mod boosting;
pub mod estimator;
pub mod extensions;
pub mod fractional;
pub mod guessing;
pub mod levels;
pub mod loadbalance;
pub mod mpc_exec;
pub mod params;
pub mod pipeline;
pub mod rounding;
pub mod sampled;
pub mod termination;
pub mod trace;

pub use fractional::FractionalAllocation;
pub use params::Schedule;

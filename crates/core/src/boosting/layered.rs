//! The GGM22 layered-graph walk finder, specialized to allocation
//! (paper, Appendix B).
//!
//! One iteration of the framework (Steps 1–5 with the Appendix-B
//! modifications):
//!
//! 1. **Vertex copies** (`W`): every `v ∈ R` contributes `C_v` copies; the
//!    matched edges of the current allocation form a perfect matching on
//!    the used copies. (Copies are represented implicitly by residual
//!    counters and matched-partner lists.)
//! 2. Free left vertices go to layer `0`; free right copies to layer
//!    `k+1` (allocation-specific: no coin flips needed).
//! 3. Every matched edge is assigned to a layer `i ∈ {1..k}` uniformly at
//!    random, oriented `R→L` (Appendix-B orientation).
//! 4. Every unmatched edge picks a slot `i_e ∈ {0..k}` uniformly at
//!    random, oriented `L→R`: usable only from a walk head in layer `i_e`
//!    to a right copy whose matched edge sits in layer `i_e+1` (or a free
//!    copy, which terminates the walk).
//! 5. Walks grow layer by layer; completed walks are vertex-disjoint by
//!    construction and are flipped.
//!
//! A short augmenting walk survives the random layering with probability
//! `k^{-O(k)}`, so `exp(O(k log k))` iterations catch a constant fraction
//! whp — this is the faithful-but-randomized counterpart of
//! [`crate::boosting::hk`]; experiment E8 compares the two.
//!
//! One deliberate relaxation (documented in `DESIGN.md`): a walk may end at
//! a free right copy from *any* layer, not only layer `k`. This strictly
//! increases the number of walks found per iteration, preserves
//! disjointness, and therefore preserves the GGM22 lower bound on walks
//! found.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse_alloc_graph::{Assignment, Bipartite};

/// Configuration for [`boost_layered`].
#[derive(Debug, Clone, Copy)]
pub struct LayeredConfig {
    /// Number of matched layers `k = O(1/ε)`.
    pub k: usize,
    /// Iterations of the random layering.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            k: 4,
            iterations: 200,
            seed: 1,
        }
    }
}

/// Run the layered boosting. Returns the improved allocation and the
/// per-iteration augmentation counts (diagnostics for E8).
pub fn boost_layered(
    g: &Bipartite,
    a: &Assignment,
    config: &LayeredConfig,
) -> (Assignment, Vec<usize>) {
    assert!(config.k >= 1);
    let mut mate = a.mate.clone();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let lefts = g.edge_left_endpoints();
    let mut per_iteration = Vec::with_capacity(config.iterations);

    for _ in 0..config.iterations {
        per_iteration.push(one_iteration(g, &lefts, &mut mate, config.k, &mut rng));
    }

    (Assignment { mate }, per_iteration)
}

/// One random layering + walk extraction + augmentation. Returns the
/// number of walks flipped.
fn one_iteration(
    g: &Bipartite,
    _lefts: &[u32],
    mate: &mut [Option<u32>],
    k: usize,
    rng: &mut SmallRng,
) -> usize {
    let nl = g.n_left();
    let nr = g.n_right();
    let rights = g.edge_right_endpoints();

    // Step 3/4: random layer for each matched edge (indexed by its left
    // endpoint — matched edges are in bijection with matched left
    // vertices), random slot for every edge.
    let mut matched_layer = vec![0usize; nl];
    let mut edge_slot = vec![0u8; g.m()];
    for slot in edge_slot.iter_mut() {
        *slot = rng.gen_range(0..=k) as u8;
    }

    let mut matched_at: Vec<Vec<u32>> = vec![Vec::new(); nr];
    let mut residual: Vec<u64> = g.capacities().to_vec();
    for (u, m) in mate.iter().enumerate() {
        if let Some(v) = m {
            matched_at[*v as usize].push(u as u32);
            residual[*v as usize] -= 1;
            matched_layer[u] = rng.gen_range(1..=k);
        }
    }

    // Walk bookkeeping: `next_edge[u]` is the unmatched edge the walk uses
    // forward from left vertex u; `prev_left[u]` the previous left vertex.
    let mut next_edge: Vec<Option<u32>> = vec![None; nl];
    let mut prev_left: Vec<Option<u32>> = vec![None; nl];
    let mut on_walk = vec![false; nl];

    let mut active: Vec<u32> = (0..nl as u32)
        .filter(|&u| mate[u as usize].is_none() && g.left_degree(u) > 0)
        .collect();
    for &u in &active {
        on_walk[u as usize] = true;
    }

    let mut completed: Vec<u32> = Vec::new();

    for layer in 0..=k {
        if active.is_empty() {
            break;
        }
        let mut next_active = Vec::new();
        'heads: for u in active.drain(..) {
            for e in g.left_edge_range(u) {
                if edge_slot[e] as usize != layer {
                    continue;
                }
                let v = rights[e];
                if mate[u as usize] == Some(v) {
                    continue; // that's the matched edge, not usable forward
                }
                // Terminal: a free copy of v absorbs the walk.
                if residual[v as usize] > 0 {
                    residual[v as usize] -= 1;
                    next_edge[u as usize] = Some(e as u32);
                    completed.push(u);
                    continue 'heads;
                }
                // Traverse: consume a matched partner of v whose matched
                // edge was assigned to the next layer.
                if layer < k {
                    let found = matched_at[v as usize].iter().copied().find(|&u2| {
                        !on_walk[u2 as usize] && matched_layer[u2 as usize] == layer + 1
                    });
                    if let Some(u2) = found {
                        on_walk[u2 as usize] = true;
                        next_edge[u as usize] = Some(e as u32);
                        prev_left[u2 as usize] = Some(u);
                        next_active.push(u2);
                        continue 'heads;
                    }
                }
            }
            // Walk dies at this head: nothing to undo (flips happen only
            // for completed walks).
        }
        active = next_active;
    }

    // Flip completed walks: every left vertex on the walk re-mates to the
    // right endpoint of its forward edge.
    for &u_end in &completed {
        let mut u = u_end;
        loop {
            let e = next_edge[u as usize].expect("walk vertices store a forward edge");
            mate[u as usize] = Some(rights[e as usize]);
            match prev_left[u as usize] {
                None => break,
                Some(up) => u = up,
            }
        }
    }
    completed.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_flow::greedy::greedy_allocation;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn stays_valid_every_iteration() {
        for seed in 0..5u64 {
            let g = random_bipartite(60, 40, 250, 2, seed).graph;
            let start = greedy_allocation(&g);
            let (out, _) = boost_layered(
                &g,
                &start,
                &LayeredConfig {
                    k: 3,
                    iterations: 50,
                    seed,
                },
            );
            out.validate(&g).unwrap();
            assert!(out.size() >= start.size());
        }
    }

    #[test]
    fn solves_the_classic_trap() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let greedy = greedy_allocation(&g); // size 1, OPT 2
        let (out, _) = boost_layered(
            &g,
            &greedy,
            &LayeredConfig {
                k: 2,
                iterations: 100,
                seed: 3,
            },
        );
        assert_eq!(out.size(), 2);
    }

    #[test]
    fn approaches_optimum_with_iterations() {
        let g = union_of_spanning_trees(80, 60, 3, 2, 4).graph;
        let opt = opt_value(&g) as f64;
        let start = greedy_allocation(&g);
        let (out, counts) = boost_layered(
            &g,
            &start,
            &LayeredConfig {
                k: 4,
                iterations: 400,
                seed: 9,
            },
        );
        out.validate(&g).unwrap();
        assert!(
            out.size() as f64 >= 0.95 * opt,
            "layered boost reached {} of OPT {opt}",
            out.size()
        );
        // Augmentations dry up as the allocation approaches optimal.
        let early: usize = counts[..50].iter().sum();
        let late: usize = counts[counts.len() - 50..].iter().sum();
        assert!(late <= early);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_bipartite(50, 35, 200, 2, 8).graph;
        let start = greedy_allocation(&g);
        let cfg = LayeredConfig {
            k: 3,
            iterations: 30,
            seed: 17,
        };
        let (a, ca) = boost_layered(&g, &start, &cfg);
        let (b, cb) = boost_layered(&g, &start, &cfg);
        assert_eq!(a.mate, b.mate);
        assert_eq!(ca, cb);
    }

    #[test]
    fn empty_allocation_grows() {
        let g = union_of_spanning_trees(40, 30, 2, 2, 2).graph;
        let (out, _) = boost_layered(
            &g,
            &Assignment::empty(g.n_left()),
            &LayeredConfig {
                k: 2,
                iterations: 100,
                seed: 5,
            },
        );
        out.validate(&g).unwrap();
        assert!(out.size() > 0);
    }
}

//! Capacitated Hopcroft–Karp with a walk-length budget.
//!
//! Augmenting walks for allocation alternate unmatched/matched edges,
//! starting at an unmatched `u ∈ L` and ending at a `v ∈ R` with residual
//! capacity. A phase runs a BFS from all free left vertices (levels count
//! matched hops), then a DFS extracts a maximal set of disjoint shortest
//! walks and flips them. Shortest walk length strictly grows between
//! phases, so stopping when it exceeds `2k−1` needs at most `k` phases and
//! leaves an allocation of size ≥ `k/(k+1) · OPT`.

use sparse_alloc_graph::{Assignment, Bipartite};

/// Statistics from a [`boost_hk`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HkStats {
    /// BFS/DFS phases executed.
    pub phases: usize,
    /// Total walks augmented.
    pub augmentations: usize,
    /// Size before boosting.
    pub size_before: usize,
    /// Size after boosting.
    pub size_after: usize,
}

struct State<'g> {
    g: &'g Bipartite,
    mate: Vec<Option<u32>>,
    /// Matched left partners per right vertex.
    matched_at: Vec<Vec<u32>>,
    /// Residual capacity per right vertex.
    residual: Vec<u64>,
}

impl<'g> State<'g> {
    fn new(g: &'g Bipartite, a: &Assignment) -> Self {
        let mut matched_at: Vec<Vec<u32>> = vec![Vec::new(); g.n_right()];
        let mut residual: Vec<u64> = g.capacities().to_vec();
        for (u, m) in a.mate.iter().enumerate() {
            if let Some(v) = m {
                matched_at[*v as usize].push(u as u32);
                residual[*v as usize] -= 1;
            }
        }
        State {
            g,
            mate: a.mate.clone(),
            matched_at,
            residual,
        }
    }

    /// BFS from free left vertices; `dist[u]` counts matched edges used to
    /// reach `u`. Returns whether some right vertex with residual capacity
    /// is reachable within `max_depth` matched hops.
    fn bfs(&self, dist: &mut [u32], max_depth: u32) -> bool {
        const INF: u32 = u32::MAX;
        dist.iter_mut().for_each(|d| *d = INF);
        let mut queue = std::collections::VecDeque::new();
        for (u, m) in self.mate.iter().enumerate() {
            if m.is_none() && self.g.left_degree(u as u32) > 0 {
                dist[u] = 0;
                queue.push_back(u as u32);
            }
        }
        let mut reachable = false;
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize];
            for &v in self.g.left_neighbors(u) {
                if self.residual[v as usize] > 0 {
                    // A walk may end at a free vertex from any depth ≤ the
                    // budget (ending costs no matched hop).
                    reachable = true;
                    continue;
                }
                if d < max_depth {
                    for &u2 in &self.matched_at[v as usize] {
                        if dist[u2 as usize] == u32::MAX {
                            dist[u2 as usize] = d + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        reachable
    }

    /// DFS: extend an alternating walk from `u`; on success the walk has
    /// been flipped and `u` is matched.
    fn dfs(&mut self, u: u32, dist: &[u32], iter: &mut [usize], budget: u32) -> bool {
        let du = dist[u as usize];
        while iter[u as usize] < self.g.left_degree(u) {
            let slot = iter[u as usize];
            iter[u as usize] += 1;
            let v = self.g.left_neighbors(u)[slot];
            if self.residual[v as usize] > 0 {
                self.mate[u as usize] = Some(v);
                self.matched_at[v as usize].push(u);
                self.residual[v as usize] -= 1;
                return true;
            }
            if du + 1 > budget {
                continue;
            }
            // Try to push out one of v's matched partners at the next level.
            let partners = self.matched_at[v as usize].clone();
            for u2 in partners {
                if dist[u2 as usize] == du + 1 && self.dfs(u2, dist, iter, budget) {
                    // u2 has been re-matched elsewhere; u takes its slot.
                    let pos = self.matched_at[v as usize]
                        .iter()
                        .position(|&x| x == u2)
                        .expect("u2 was matched at v");
                    self.matched_at[v as usize][pos] = u;
                    self.mate[u as usize] = Some(v);
                    return true;
                }
            }
        }
        false
    }
}

/// Eliminate all augmenting walks of length ≤ `2k−1` from `a` (at most `k`
/// matched hops per walk, i.e. BFS depth < `k`).
///
/// The result is a valid allocation of size ≥ `k/(k+1) · OPT`.
pub fn boost_hk(g: &Bipartite, a: &Assignment, k: usize) -> (Assignment, HkStats) {
    assert!(k >= 1, "walk budget k ≥ 1");
    let mut st = State::new(g, a);
    let mut stats = HkStats {
        size_before: a.size(),
        ..Default::default()
    };
    let mut dist = vec![0u32; g.n_left()];
    let budget = (k - 1) as u32; // matched hops allowed per walk

    loop {
        if !st.bfs(&mut dist, budget) {
            break;
        }
        stats.phases += 1;
        let mut iter = vec![0usize; g.n_left()];
        let mut augmented_this_phase = 0usize;
        for u in 0..g.n_left() as u32 {
            if st.mate[u as usize].is_none()
                && dist[u as usize] == 0
                && st.dfs(u, &dist, &mut iter, budget)
            {
                augmented_this_phase += 1;
            }
        }
        stats.augmentations += augmented_this_phase;
        if augmented_this_phase == 0 {
            break;
        }
    }

    let out = Assignment { mate: st.mate };
    stats.size_after = out.size();
    (out, stats)
}

/// Length (in edges) of the shortest augmenting walk, if any — the
/// certificate behind the `k/(k+1)` guarantee. `None` means `a` is maximum.
pub fn shortest_augmenting_walk(g: &Bipartite, a: &Assignment) -> Option<usize> {
    let st = State::new(g, a);
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; g.n_left()];
    let mut queue = std::collections::VecDeque::new();
    for (u, m) in st.mate.iter().enumerate() {
        if m.is_none() && g.left_degree(u as u32) > 0 {
            dist[u] = 0;
            queue.push_back(u as u32);
        }
    }
    let mut best: Option<u32> = None;
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        if let Some(b) = best {
            if d >= b {
                continue;
            }
        }
        for &v in g.left_neighbors(u) {
            if st.residual[v as usize] > 0 {
                best = Some(best.map_or(d, |b| b.min(d)));
                continue;
            }
            for &u2 in &st.matched_at[v as usize] {
                if dist[u2 as usize] == INF {
                    dist[u2 as usize] = d + 1;
                    queue.push_back(u2);
                }
            }
        }
    }
    best.map(|matched_hops| 2 * matched_hops as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_flow::greedy::greedy_allocation;
    use sparse_alloc_flow::opt::opt_value;
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn fixes_the_classic_trap() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let greedy = greedy_allocation(&g); // size 1
        let (boosted, stats) = boost_hk(&g, &greedy, 2);
        boosted.validate(&g).unwrap();
        assert_eq!(boosted.size(), 2);
        assert_eq!(stats.size_before, 1);
        assert_eq!(stats.size_after, 2);
        assert!(stats.augmentations >= 1);
    }

    #[test]
    fn guarantee_k_over_k_plus_one() {
        for seed in 0..6u64 {
            let g = union_of_spanning_trees(80, 60, 3, 2, seed).graph;
            let opt = opt_value(&g);
            let start = greedy_allocation(&g);
            for k in [1usize, 2, 3, 5] {
                let (boosted, _) = boost_hk(&g, &start, k);
                boosted.validate(&g).unwrap();
                let bound = (k as f64) / (k as f64 + 1.0) * opt as f64;
                assert!(
                    boosted.size() as f64 >= bound - 1e-9,
                    "seed {seed} k {k}: {} < {bound} (OPT {opt})",
                    boosted.size()
                );
                // Certificate: no augmenting walk of length ≤ 2k−1 remains.
                if let Some(len) = shortest_augmenting_walk(&g, &boosted) {
                    assert!(len > 2 * k - 1, "walk of length {len} remains at k={k}");
                }
            }
        }
    }

    #[test]
    fn large_k_reaches_optimum() {
        for seed in 0..4u64 {
            let g = random_bipartite(60, 40, 300, 3, seed).graph;
            let opt = opt_value(&g);
            let (boosted, _) = boost_hk(&g, &Assignment::empty(g.n_left()), 1_000);
            assert_eq!(boosted.size() as u64, opt, "seed {seed}");
            boosted.validate(&g).unwrap();
            assert_eq!(shortest_augmenting_walk(&g, &boosted), None);
        }
    }

    #[test]
    fn respects_capacities_throughout() {
        let g = union_of_spanning_trees(50, 20, 2, 3, 7).graph;
        let (boosted, _) = boost_hk(&g, &Assignment::empty(g.n_left()), 4);
        boosted.validate(&g).unwrap();
    }

    #[test]
    fn monotone_in_k() {
        let g = random_bipartite(70, 50, 350, 2, 9).graph;
        let start = greedy_allocation(&g);
        let mut last = 0usize;
        for k in [1usize, 2, 4, 8] {
            let (boosted, _) = boost_hk(&g, &start, k);
            assert!(boosted.size() >= last, "k={k} shrank the allocation");
            last = boosted.size();
        }
    }

    #[test]
    fn never_decreases() {
        let g = random_bipartite(40, 30, 150, 2, 3).graph;
        let start = greedy_allocation(&g);
        let (boosted, stats) = boost_hk(&g, &start, 3);
        assert!(boosted.size() >= start.size());
        assert_eq!(stats.size_after - stats.size_before, stats.augmentations);
    }

    #[test]
    fn shortest_walk_on_empty_allocation_is_one() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        assert_eq!(shortest_augmenting_walk(&g, &Assignment::empty(2)), Some(1));
    }
}

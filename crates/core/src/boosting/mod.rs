//! Boosting a constant-factor allocation to `(1+ε)` (paper, Appendix B).
//!
//! The paper plugs its constant-approximate allocation into the framework
//! of Ghaffari–Grunau–Mitrović \[GGM22\]: repeatedly find short augmenting
//! walks (length ≤ `2k+1`, `k = O(1/ε)`) and flip them. The observable
//! contract is classical: **an allocation admitting no augmenting walk of
//! length ≤ `2k−1` is a `k/(k+1)`-fraction of optimal**, so eliminating
//! short walks boosts any constant factor to `1 + O(1/k)`.
//!
//! Two implementations (see `DESIGN.md`, substitutions):
//!
//! * [`hk`] — deterministic capacitated Hopcroft–Karp: BFS/DFS phases that
//!   find maximal sets of disjoint shortest augmenting walks, stopping once
//!   the shortest exceeds the budget. This is the behavioral equivalent of
//!   what GGM22's framework guarantees, minus the MPC round compression.
//! * [`layered`] — the randomized layered-graph construction of
//!   [GGM22, §4] as specialized in Appendix B (vertex copies, random layer
//!   assignment, orientation `R→L` for matched and `L→R` for unmatched
//!   edges), finding walks layer by layer. Matches the paper's actual
//!   construction; needs `exp(O(k))` iterations to catch walks whp.

pub mod hk;
pub mod layered;

pub use hk::{boost_hk, shortest_augmenting_walk, HkStats};
pub use layered::{boost_layered, LayeredConfig};

//! Extensions beyond the paper's stated results.
//!
//! The paper closes with an open question: `o(log n)`-round `Θ(1)`-
//! approximate **b-matching** in sublinear MPC (§1.2.1 — "our work on the
//! allocation problem can be seen as the first step towards answering that
//! question"). This module takes the obvious next step available with the
//! machinery built here: reduce b-matching to allocation by splitting each
//! left vertex `u` into `b_u` unit copies and run the full `(1+ε)`
//! allocation pipeline on the split instance.
//!
//! Two caveats, both documented because they are exactly where the open
//! question lives:
//!
//! 1. the left split multiplies left degrees into the graph, so the split
//!    instance's arboricity can grow by up to `max_u b_u` — the same
//!    failure mode as Remark 1, only on the milder side (budgets are
//!    usually small constants, unlike the `Θ(n)` capacities of the star
//!    example);
//! 2. two copies of `u` may match the same `v` (the split graph cannot see
//!    that they are the same vertex); the merge step drops duplicates and
//!    greedily repairs, which can lose a small fraction.
//!
//! Tests measure the end-to-end quality against the exact b-matching
//! oracle in `sparse-alloc-flow`.

use sparse_alloc_graph::{Bipartite, BipartiteBuilder, EdgeId};

use crate::pipeline::{solve, PipelineConfig};

/// A b-matching as selected edge ids of the original graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BMatchingSolution {
    /// Selected edge ids, sorted ascending.
    pub edges: Vec<EdgeId>,
    /// Matches lost to duplicate-copy collisions before repair
    /// (diagnostic).
    pub collisions: usize,
}

impl BMatchingSolution {
    /// Number of selected edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }
}

/// Solve b-matching approximately via the left-split reduction + the
/// allocation pipeline. Right budgets are `g`'s capacities; left budgets
/// in `left_b` (a zero budget excludes the vertex).
pub fn solve_bmatching_via_split(
    g: &Bipartite,
    left_b: &[u64],
    config: &PipelineConfig,
) -> BMatchingSolution {
    assert_eq!(left_b.len(), g.n_left(), "left budget vector length");

    // Split: copy c of u is a fresh left vertex; useful copies are capped
    // by deg(u) (extra copies can never match).
    let mut copy_origin: Vec<u32> = Vec::new();
    for u in 0..g.n_left() as u32 {
        let copies = left_b[u as usize].min(g.left_degree(u) as u64) as usize;
        for _ in 0..copies {
            copy_origin.push(u);
        }
    }
    let mut builder =
        BipartiteBuilder::with_edge_capacity(copy_origin.len(), g.n_right(), copy_origin.len() * 4);
    for (cid, &u) in copy_origin.iter().enumerate() {
        for &v in g.left_neighbors(u) {
            builder.add_edge(cid as u32, v);
        }
    }
    let split = builder
        .build(g.capacities().to_vec())
        .expect("split edges are in range");

    let result = solve(&split, config);

    // Merge: map copy matches back to original edges, dropping duplicate
    // (u, v) pairs.
    let mut selected: Vec<(u32, u32)> = result
        .assignment
        .pairs()
        .map(|(cid, v)| (copy_origin[cid as usize], v))
        .collect();
    let before = selected.len();
    selected.sort_unstable();
    selected.dedup();
    let collisions = before - selected.len();

    // Greedy repair: collided budget can sometimes be reused on another
    // untaken edge.
    let mut left_load = vec![0u64; g.n_left()];
    let mut right_load = vec![0u64; g.n_right()];
    let mut taken: std::collections::HashSet<(u32, u32)> = selected.iter().copied().collect();
    for &(u, v) in &selected {
        left_load[u as usize] += 1;
        right_load[v as usize] += 1;
    }
    // Greedy completion: any residual left budget grabs an untaken edge
    // with residual right budget (this also mops up slack the pipeline
    // left behind, not only collision losses).
    let mut final_edges: Vec<(u32, u32)> = selected;
    for u in 0..g.n_left() as u32 {
        while left_load[u as usize] < left_b[u as usize] {
            let Some(&v) = g
                .left_neighbors(u)
                .iter()
                .find(|&&v| right_load[v as usize] < g.capacity(v) && !taken.contains(&(u, v)))
            else {
                break;
            };
            taken.insert((u, v));
            left_load[u as usize] += 1;
            right_load[v as usize] += 1;
            final_edges.push((u, v));
        }
    }
    final_edges.sort_unstable();

    // Translate (u, v) pairs to edge ids via the left CSR.
    let rights = g.edge_right_endpoints();
    let mut edges: Vec<EdgeId> = final_edges
        .into_iter()
        .map(|(u, v)| {
            let e = g
                .left_edge_range(u)
                .find(|&e| rights[e] == v)
                .expect("selected pair is an edge");
            e as EdgeId
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();

    // Final stage: native b-matching augmentation on the *original* graph
    // (no copy collisions possible here), with the same walk budget the
    // allocation pipeline's booster uses.
    let k = match config.booster {
        crate::pipeline::Booster::Hk { k } => k,
        crate::pipeline::Booster::Layered { k, .. } => k,
        crate::pipeline::Booster::None => 0,
    };
    if k > 0 {
        edges = boost_bmatching(g, left_b, &edges, k);
    }
    BMatchingSolution { edges, collisions }
}

/// Capacitated-both-sides Hopcroft–Karp: eliminate all augmenting walks of
/// length ≤ `2k−1` from a b-matching. An alternating walk starts at a left
/// vertex with residual budget, uses an unselected edge forward and a
/// selected edge backward, and ends at a right vertex with residual
/// budget; the standard symmetric-difference argument gives
/// `|M| ≥ k/(k+1)·OPT` once none remain.
pub fn boost_bmatching(g: &Bipartite, left_b: &[u64], edges: &[EdgeId], k: usize) -> Vec<EdgeId> {
    assert!(k >= 1);
    let lefts = g.edge_left_endpoints();
    let rights = g.edge_right_endpoints();
    let mut selected = vec![false; g.m()];
    let mut left_load = vec![0u64; g.n_left()];
    let mut right_load = vec![0u64; g.n_right()];
    let mut selected_at_right: Vec<Vec<EdgeId>> = vec![Vec::new(); g.n_right()];
    for &e in edges {
        selected[e as usize] = true;
        left_load[lefts[e as usize] as usize] += 1;
        right_load[rights[e as usize] as usize] += 1;
        selected_at_right[rights[e as usize] as usize].push(e);
    }
    let budget = (k - 1) as u32;
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; g.n_left()];

    loop {
        // BFS layering from residual-budget left vertices.
        dist.iter_mut().for_each(|d| *d = INF);
        let mut queue = std::collections::VecDeque::new();
        for u in 0..g.n_left() {
            if left_load[u] < left_b[u] && g.left_degree(u as u32) > 0 {
                dist[u] = 0;
                queue.push_back(u as u32);
            }
        }
        let mut reachable = false;
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize];
            for e in g.left_edge_range(u) {
                if selected[e] {
                    continue;
                }
                let v = rights[e];
                if right_load[v as usize] < g.capacity(v) {
                    reachable = true;
                    continue;
                }
                if d < budget {
                    for &e2 in &selected_at_right[v as usize] {
                        let u2 = lefts[e2 as usize];
                        if dist[u2 as usize] == INF {
                            dist[u2 as usize] = d + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        if !reachable {
            break;
        }

        // DFS phase: disjoint augmenting walks along the layering.
        let mut iter = vec![0usize; g.n_left()];
        let mut augmented = 0usize;
        for u in 0..g.n_left() as u32 {
            while left_load[u as usize] < left_b[u as usize]
                && dist[u as usize] == 0
                && dfs_bm(
                    g,
                    &lefts,
                    rights,
                    left_b,
                    &dist,
                    &mut iter,
                    &mut selected,
                    &mut right_load,
                    &mut selected_at_right,
                    u,
                    budget,
                )
            {
                left_load[u as usize] += 1;
                augmented += 1;
            }
        }
        if augmented == 0 {
            break;
        }
    }

    (0..g.m() as u32)
        .filter(|&e| selected[e as usize])
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn dfs_bm(
    g: &Bipartite,
    lefts: &[u32],
    rights: &[u32],
    _left_b: &[u64],
    dist: &[u32],
    iter: &mut [usize],
    selected: &mut [bool],
    right_load: &mut [u64],
    selected_at_right: &mut [Vec<EdgeId>],
    u: u32,
    budget: u32,
) -> bool {
    let du = dist[u as usize];
    while iter[u as usize] < g.left_degree(u) {
        let slot = iter[u as usize];
        iter[u as usize] += 1;
        let e = g.left_edge_range(u).start + slot;
        if selected[e] {
            continue;
        }
        let v = rights[e];
        if right_load[v as usize] < g.capacity(v) {
            selected[e] = true;
            right_load[v as usize] += 1;
            selected_at_right[v as usize].push(e as EdgeId);
            return true;
        }
        if du + 1 > budget {
            continue;
        }
        let candidates = selected_at_right[v as usize].clone();
        for e2 in candidates {
            let u2 = lefts[e2 as usize];
            if dist[u2 as usize] == du + 1
                && dfs_bm(
                    g,
                    lefts,
                    rights,
                    _left_b,
                    dist,
                    iter,
                    selected,
                    right_load,
                    selected_at_right,
                    u2,
                    budget,
                )
            {
                // u2 gained a new edge elsewhere; re-point (u2, v) to u.
                selected[e2 as usize] = false;
                selected[e] = true;
                let pos = selected_at_right[v as usize]
                    .iter()
                    .position(|&x| x == e2)
                    .expect("e2 selected at v");
                selected_at_right[v as usize][pos] = e as EdgeId;
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sparse_alloc_flow::bmatching::{bmatching_value, BMatching};
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};

    fn check(g: &Bipartite, left_b: &[u64], min_fraction: f64) {
        let sol = solve_bmatching_via_split(g, left_b, &PipelineConfig::default());
        // Validity via the oracle crate's checker.
        BMatching {
            edges: sol.edges.clone(),
        }
        .validate(g, left_b)
        .unwrap();
        let opt = bmatching_value(g, left_b);
        assert!(
            sol.size() as f64 >= min_fraction * opt as f64 - 1.0,
            "got {} of b-matching OPT {opt}",
            sol.size()
        );
    }

    #[test]
    fn unit_budgets_match_allocation_quality() {
        let g = union_of_spanning_trees(120, 100, 3, 2, 4).graph;
        check(&g, &vec![1; g.n_left()], 1.0 / 1.1);
    }

    #[test]
    fn uniform_budgets() {
        let g = union_of_spanning_trees(80, 60, 3, 3, 9).graph;
        check(&g, &vec![2; g.n_left()], 0.85);
    }

    #[test]
    fn heterogeneous_budgets() {
        let g = random_bipartite(60, 40, 400, 4, 7).graph;
        let mut rng = SmallRng::seed_from_u64(3);
        let left_b: Vec<u64> = (0..g.n_left()).map(|_| rng.gen_range(0..=3)).collect();
        check(&g, &left_b, 0.85);
    }

    #[test]
    fn zero_budgets_respected() {
        let g = random_bipartite(30, 20, 150, 2, 5).graph;
        let left_b = vec![0u64; g.n_left()];
        let sol = solve_bmatching_via_split(&g, &left_b, &PipelineConfig::default());
        assert_eq!(sol.size(), 0);
    }

    #[test]
    fn native_boost_reaches_k_over_k_plus_one() {
        // From an empty b-matching, boost_bmatching alone must reach the
        // k/(k+1) guarantee against the exact oracle.
        for seed in [1u64, 2, 3] {
            let g = random_bipartite(40, 25, 260, 3, seed).graph;
            let mut rng = SmallRng::seed_from_u64(seed);
            let left_b: Vec<u64> = (0..g.n_left()).map(|_| rng.gen_range(1..=3)).collect();
            let opt = bmatching_value(&g, &left_b);
            for k in [1usize, 2, 4, 50] {
                let edges = boost_bmatching(&g, &left_b, &[], k);
                BMatching {
                    edges: edges.clone(),
                }
                .validate(&g, &left_b)
                .unwrap();
                let bound = k as f64 / (k as f64 + 1.0) * opt as f64;
                assert!(
                    edges.len() as f64 >= bound - 1e-9,
                    "seed {seed} k {k}: {} < {bound} (OPT {opt})",
                    edges.len()
                );
            }
            // Unbounded walks ⇒ exact optimum.
            let edges = boost_bmatching(&g, &left_b, &[], 10_000);
            assert_eq!(edges.len() as u64, opt, "seed {seed}");
        }
    }

    #[test]
    fn native_boost_preserves_existing_selection_validity() {
        let g = union_of_spanning_trees(60, 40, 2, 2, 8).graph;
        let left_b = vec![2u64; g.n_left()];
        // Start from a greedy-ish selection: every third edge if feasible.
        let lefts = g.edge_left_endpoints();
        let rights = g.edge_right_endpoints();
        let mut left_load = vec![0u64; g.n_left()];
        let mut right_load = vec![0u64; g.n_right()];
        let mut start = Vec::new();
        for e in (0..g.m()).step_by(3) {
            let (u, v) = (lefts[e] as usize, rights[e] as usize);
            if left_load[u] < left_b[u] && right_load[v] < g.capacity(v as u32) {
                left_load[u] += 1;
                right_load[v] += 1;
                start.push(e as u32);
            }
        }
        let before = start.len();
        let boosted = boost_bmatching(&g, &left_b, &start, 6);
        BMatching {
            edges: boosted.clone(),
        }
        .validate(&g, &left_b)
        .unwrap();
        assert!(boosted.len() >= before);
    }

    #[test]
    fn collisions_are_reported_and_repaired() {
        // Dense instance with large budgets: collisions plausible; whatever
        // happens, the output is valid and the diagnostic is consistent.
        let g = random_bipartite(20, 10, 180, 6, 11).graph;
        let left_b = vec![4u64; g.n_left()];
        let sol = solve_bmatching_via_split(&g, &left_b, &PipelineConfig::default());
        BMatching {
            edges: sol.edges.clone(),
        }
        .validate(&g, &left_b)
        .unwrap();
        let opt = bmatching_value(&g, &left_b);
        assert!(sol.size() as f64 >= 0.8 * opt as f64);
    }
}

//! Round schedules and sampling budgets — every constant the paper pins
//! down, in one place.

/// τ for the known-λ schedule (Theorem 9):
/// `τ = ⌈log_{1+ε}(4λ/ε)⌉ + 1` rounds guarantee a `(2+10ε)`-approximate
/// fractional allocation.
pub fn tau_known_lambda(eps: f64, lambda: u32) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "ε ∈ (0, 1]");
    let lambda = lambda.max(1) as f64;
    ((4.0 * lambda / eps).ln() / (1.0 + eps).ln()).ceil() as usize + 1
}

/// τ for the AZM18 / Theorem 20 schedule:
/// `τ = ⌈2·log(2|R|/ε)/ε²⌉ + ⌈1/ε⌉` rounds guarantee a `(1+18ε)`-approximate
/// fractional allocation on *any* bipartite graph (no arboricity needed).
pub fn tau_azm(eps: f64, n_right: usize) -> usize {
    assert!(eps > 0.0 && eps <= 1.0, "ε ∈ (0, 1]");
    let r = (n_right.max(1)) as f64;
    (2.0 * (2.0 * r / eps).ln() / (eps * eps)).ceil() as usize + (1.0 / eps).ceil() as usize
}

/// The paper-faithful phase length of eq. (4):
/// `B_ε = min(√(α·log n), √(log λ)) / √(8ε)`, divided by 48 for the
/// correctness proof. For any machine-scale input this is ≤ 1 — a constants
/// artifact the paper acknowledges ("we are concerned only with
/// asymptotics"); see `DESIGN.md` §6.
pub fn phase_len_paper(eps: f64, n: usize, lambda: u32, alpha: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0);
    assert!(alpha > 0.0 && alpha < 1.0);
    let log_n = (n.max(2) as f64).log2();
    let log_lambda = (lambda.max(2) as f64).log2();
    let b = ((alpha * log_n).sqrt().min(log_lambda.sqrt())) / (8.0 * eps).sqrt();
    ((b / 48.0).floor() as usize).max(1)
}

/// The practical phase length used by the experiment sweeps: the same
/// `√(min(α log n, log λ))` shape without the analysis constants.
pub fn phase_len_practical(eps: f64, n: usize, lambda: u32, alpha: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0);
    assert!(alpha > 0.0 && alpha < 1.0);
    let log_n = (n.max(2) as f64).log2();
    let log_lambda = (lambda.max(2) as f64).log2();
    ((alpha * log_n).min(log_lambda).sqrt().floor() as usize).max(1)
}

/// The paper's per-group sample budget: `t = (1+ε)^{2B} · ε⁻⁵ · log n`
/// (§5, parameters of Algorithm 2).
pub fn sample_budget_paper(eps: f64, b: usize, n: usize) -> usize {
    let t = (1.0 + eps).powi(2 * b as i32) * eps.powi(-5) * (n.max(2) as f64).ln();
    t.ceil() as usize
}

/// A scaled sample budget, `scale · (1+ε)^{2B} · log₂ n`, for sweeps that
/// keep the `(1+ε)^{2B}` spread-compensation (the load-bearing part of
/// Lemma 11) while dropping the `ε⁻⁵` analysis constant.
pub fn sample_budget_scaled(eps: f64, b: usize, n: usize, scale: f64) -> usize {
    let t = scale * (1.0 + eps).powi(2 * b as i32) * (n.max(2) as f64).log2();
    (t.ceil() as usize).max(1)
}

/// How many LOCAL rounds the algorithms run / simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Exactly this many rounds.
    Fixed(usize),
    /// `τ = ⌈log_{1+ε}(4λ/ε)⌉ + 1` from a known arboricity bound
    /// (Theorem 9).
    KnownLambda(u32),
    /// Run until the §4 termination condition holds (checked every round),
    /// with a hard cap.
    UntilTermination {
        /// Upper bound on rounds (the AZM schedule is a natural cap).
        max_rounds: usize,
    },
    /// The AZM18 `(1+18ε)` schedule, `τ = O(log(|R|/ε)/ε²)` (Theorem 20).
    Azm,
}

impl Schedule {
    /// Resolve to a concrete `(max_rounds, check_termination)` pair.
    pub fn resolve(&self, eps: f64, n_right: usize) -> (usize, bool) {
        match *self {
            Schedule::Fixed(r) => (r, false),
            Schedule::KnownLambda(lambda) => (tau_known_lambda(eps, lambda), false),
            Schedule::UntilTermination { max_rounds } => (max_rounds, true),
            Schedule::Azm => (tau_azm(eps, n_right), false),
        }
    }
}

/// Guess sequence for the λ-oblivious driver (§3.2.2): the `i`-th trial uses
/// `√(log λ_i) = 2^i`, i.e. `λ_i = 2^{4^i}`, so the work is geometric and
/// dominated by the final trial.
pub fn lambda_guess(i: u32) -> u32 {
    let exp = 4u64.saturating_pow(i).min(31);
    2u32.saturating_pow(exp as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_grows_with_lambda_not_n() {
        let t1 = tau_known_lambda(0.1, 1);
        let t16 = tau_known_lambda(0.1, 16);
        let t256 = tau_known_lambda(0.1, 256);
        assert!(t1 < t16 && t16 < t256);
        // Doubling λ adds ~log_{1+ε}2 ≈ 7.3 rounds at ε=0.1: check additive.
        let d1 = tau_known_lambda(0.1, 32) as i64 - tau_known_lambda(0.1, 16) as i64;
        let d2 = tau_known_lambda(0.1, 64) as i64 - tau_known_lambda(0.1, 32) as i64;
        assert!(
            (d1 - d2).abs() <= 1,
            "log growth should be additive per doubling"
        );
    }

    #[test]
    fn tau_azm_grows_with_n() {
        assert!(tau_azm(0.1, 1_000) < tau_azm(0.1, 1_000_000));
        // And it dwarfs the λ schedule for small λ.
        assert!(tau_azm(0.1, 1_000_000) > 10 * tau_known_lambda(0.1, 4));
    }

    #[test]
    fn paper_phase_len_degenerates_to_one() {
        // The ÷48 constant forces B = 1 at machine scale — documented.
        assert_eq!(phase_len_paper(0.1, 1 << 20, 16, 0.5), 1);
    }

    #[test]
    fn practical_phase_len_tracks_sqrt_log_lambda() {
        let b4 = phase_len_practical(0.1, 1 << 30, 16, 0.9); // √log₂16 = 2
        let b16 = phase_len_practical(0.1, 1 << 30, 1 << 16, 0.9); // √16 = 4
        assert_eq!(b4, 2);
        assert_eq!(b16, 4);
    }

    #[test]
    fn sample_budgets_ordered() {
        let paper = sample_budget_paper(0.25, 2, 1 << 16);
        let scaled = sample_budget_scaled(0.25, 2, 1 << 16, 1.0);
        assert!(
            paper > scaled,
            "paper budget {paper} should exceed scaled {scaled}"
        );
        assert!(scaled >= 16);
    }

    #[test]
    fn guess_sequence() {
        assert_eq!(lambda_guess(0), 2);
        assert_eq!(lambda_guess(1), 16);
        assert_eq!(lambda_guess(2), 65536);
        // i = 3 would be 2^64: saturates instead of overflowing.
        assert_eq!(lambda_guess(3), 2147483648);
    }

    #[test]
    fn schedule_resolution() {
        assert_eq!(Schedule::Fixed(7).resolve(0.1, 100), (7, false));
        let (r, term) = Schedule::KnownLambda(4).resolve(0.1, 100);
        assert_eq!(r, tau_known_lambda(0.1, 4));
        assert!(!term);
        assert_eq!(
            Schedule::UntilTermination { max_rounds: 99 }.resolve(0.1, 100),
            (99, true)
        );
        assert_eq!(Schedule::Azm.resolve(0.2, 500).0, tau_azm(0.2, 500));
    }

    #[test]
    #[should_panic(expected = "ε ∈ (0, 1]")]
    fn zero_eps_rejected() {
        tau_known_lambda(0.0, 4);
    }
}

//! Algorithm 2 on the MPC cluster — Theorem 10, measured.
//!
//! This module executes the same numerical process as [`crate::sampled`]
//! but distributed over the [`sparse_alloc_mpc::Cluster`], paying for every
//! communication round and every word of machine space:
//!
//! per phase (`B` simulated LOCAL rounds):
//!
//! 1. **level dissemination** — right records send their β-level to each
//!    left neighbor's home (1 round);
//! 2. left records rebuild their exact `β_u` aggregate and group key, and
//!    send the key to each right neighbor's home (1 round);
//! 3. both sides draw their per-round **sampling plans** (Lemma 11
//!    budgets; 0 rounds) — the sparsified communication graph `H` is the
//!    union of plan members;
//! 4. **graph exponentiation** on `H` to radius `2B` (one simulated round
//!    consumes two hops: `v` reads `β̂_u`, which reads neighbor levels),
//!    `2⌈log₂ 2B⌉` rounds — the §3.2.1 ball collection;
//! 5. **hydration** — ball members' sparsified records (levels, plans,
//!    rescale factors) ship to each center's home (2 rounds); this volume
//!    is the paper's `n·2^{O(B²)}` memory term and is enforced against `S`
//!    in strict mode;
//! 6. **local simulation** — every machine replays the `B` rounds for its
//!    hosted right vertices inside their balls (0 rounds).
//!
//! The §4 termination test costs 3 more rounds per checkpoint (two exact
//! aggregation exchanges + a reduce).
//!
//! **Equality contract**: with the same seed/budget/phase length, the final
//! levels equal [`crate::sampled::run_sampled`]'s bit-for-bit — the
//! cone-of-influence inside the radius-`2B` ball contains every input of
//! the center's trajectory, and both paths evaluate the identical
//! [`crate::estimator::RoundPlan`] kernel in the identical order. Tests
//! assert this.

use std::collections::HashMap;

use sparse_alloc_graph::{Bipartite, Side};
use sparse_alloc_mpc::primitives::ball::{grow_balls, BallInput};
use sparse_alloc_mpc::{Cluster, Ledger, MpcConfig, MpcError, Words};

use crate::aggregates::LeftAggregate;
use crate::estimator::{sample_rng, GroupedNeighborhood, RoundPlan};
use crate::fractional::{finalize_from_levels, FractionalAllocation};
use crate::levels::{update_level, PowTable};
use crate::sampled::{left_key, SampleBudget};
use crate::termination::{self, TerminationCheck};

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct MpcExecConfig {
    /// The `(1+ε)` parameter.
    pub eps: f64,
    /// Phase length `B`.
    pub phase_len: usize,
    /// Total LOCAL rounds to simulate.
    pub tau: usize,
    /// Per-group sample budget.
    pub budget: SampleBudget,
    /// Counter-RNG seed (must match the shared-memory run to compare).
    pub seed: u64,
    /// Evaluate the §4 termination condition at phase ends.
    pub check_termination: bool,
    /// The cluster to run on.
    pub mpc: MpcConfig,
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct MpcExecResult {
    /// Final β-levels per right vertex.
    pub levels: Vec<i64>,
    /// LOCAL rounds simulated.
    pub rounds: usize,
    /// Phases executed.
    pub phases: usize,
    /// Exact allocation masses for the final levels.
    pub alloc: Vec<f64>,
    /// `Σ_v min(C_v, alloc_v)`.
    pub match_weight: f64,
    /// Feasible fractional output.
    pub fractional: FractionalAllocation,
    /// Termination info if a checkpoint fired.
    pub termination: Option<TerminationCheck>,
    /// The full MPC accounting: rounds, words, space peaks.
    pub ledger: Ledger,
}

/// The sparsified per-vertex record shipped inside balls.
#[derive(Debug, Clone, PartialEq)]
struct Slim {
    gid: u32,
    side: Side,
    capacity: u64,
    level: i64,
    ceiling: i64,
    plans: Vec<RoundPlan>,
}

impl Words for Slim {
    fn words(&self) -> usize {
        5 + plans_words(&self.plans)
    }
}

fn plans_words(plans: &[RoundPlan]) -> usize {
    plans
        .iter()
        .map(|p| 1 + p.per_group.iter().map(|g| 2 + g.drawn.len()).sum::<usize>())
        .sum()
}

/// A vertex's home record.
#[derive(Debug, Clone)]
struct Record {
    gid: u32,
    /// Side-local id (`u` for left, `v` for right).
    vid: u32,
    side: Side,
    capacity: u64,
    level: i64,
    /// Neighbor gids, ascending (CSR order).
    neighbors: Vec<u32>,
    /// Phase scratch: neighbor levels (left records) / left keys (right
    /// records), aligned with `neighbors`.
    neighbor_data: Vec<i64>,
    /// Phase scratch: exponent ceiling (left) / unused (right).
    ceiling: i64,
    /// Phase scratch: this vertex's group key (left only).
    key: i64,
    /// Phase scratch: per-round sampling plans.
    plans: Vec<RoundPlan>,
    /// Phase scratch: hydration requesters.
    pending: Vec<u32>,
    /// Phase scratch: ball member ids (right only).
    ball_ids: Vec<u32>,
    /// Phase scratch: hydrated ball records (right only).
    ball: Vec<Slim>,
    /// Termination scratch: exact left aggregate `(max_level, norm_sum)`.
    exact_agg: (i64, f64),
    /// Termination scratch: exact alloc (right only).
    exact_alloc: f64,
}

impl Words for Record {
    fn words(&self) -> usize {
        8 + self.neighbors.len()
            + self.neighbor_data.len()
            + plans_words(&self.plans)
            + self.pending.len()
            + self.ball_ids.len()
            + self.ball.iter().map(Words::words).sum::<usize>()
    }
}

fn home(gid: u32, p: usize) -> usize {
    gid as usize % p
}

fn build_records(g: &Bipartite) -> Vec<Record> {
    let nl = g.n_left() as u32;
    let blank = |gid: u32, vid: u32, side: Side, capacity: u64, neighbors: Vec<u32>| Record {
        gid,
        vid,
        side,
        capacity,
        level: 0,
        neighbors,
        neighbor_data: Vec::new(),
        ceiling: 0,
        key: 0,
        plans: Vec::new(),
        pending: Vec::new(),
        ball_ids: Vec::new(),
        ball: Vec::new(),
        exact_agg: (i64::MIN, 0.0),
        exact_alloc: 0.0,
    };
    let mut records = Vec::with_capacity(g.n());
    for u in 0..nl {
        let neighbors: Vec<u32> = g.left_neighbors(u).iter().map(|&v| nl + v).collect();
        records.push(blank(u, u, Side::Left, 0, neighbors));
    }
    for v in 0..g.n_right() as u32 {
        let neighbors: Vec<u32> = g.right_neighbors(v).to_vec();
        records.push(blank(nl + v, v, Side::Right, g.capacity(v), neighbors));
    }
    records
}

/// Disseminate right levels to left homes (1 round); left records rebuild
/// their exact aggregate `(max_level, norm_sum)`, group key, and exponent
/// ceiling from the refreshed neighbor levels.
fn levels_to_left(
    cluster: &mut Cluster<Record>,
    label: &'static str,
    p: usize,
    pows: &PowTable,
    eps: f64,
    phase_len: usize,
) -> Result<(), MpcError> {
    cluster.side_channel(
        label,
        |_, items| {
            let mut out = Vec::new();
            for r in items {
                if r.side == Side::Right {
                    for &u in &r.neighbors {
                        out.push((home(u, p), (u, r.gid, r.level)));
                    }
                }
            }
            out
        },
        |_, items, msgs| {
            let mut by_target: HashMap<u32, Vec<(u32, i64)>> = HashMap::new();
            for (u, v_gid, level) in msgs {
                by_target.entry(u).or_default().push((v_gid, level));
            }
            for r in items.iter_mut() {
                if r.side != Side::Left {
                    continue;
                }
                let Some(incoming) = by_target.get(&r.gid) else {
                    r.neighbor_data.clear();
                    continue;
                };
                r.neighbor_data = vec![0i64; r.neighbors.len()];
                for &(v_gid, level) in incoming {
                    let idx = r
                        .neighbors
                        .binary_search(&v_gid)
                        .expect("message from a neighbor");
                    r.neighbor_data[idx] = level;
                }
                // Exact aggregate in CSR order (bit-identical to
                // `aggregates::left_aggregates`).
                let max_level = r.neighbor_data.iter().copied().max().unwrap_or(i64::MIN);
                let norm_sum: f64 = r
                    .neighbor_data
                    .iter()
                    .map(|&l| pows.pow_diff(l - max_level))
                    .sum();
                r.exact_agg = (max_level, norm_sum);
                if norm_sum > 0.0 {
                    r.key = left_key(
                        &LeftAggregate {
                            max_level,
                            norm_sum,
                        },
                        eps,
                    );
                }
                r.ceiling = max_level + phase_len as i64;
            }
        },
    )
}

/// Disseminate left keys (or exact aggregates) to right homes (1 round).
fn keys_to_right(
    cluster: &mut Cluster<Record>,
    label: &'static str,
    p: usize,
    exact: bool,
    pows: &PowTable,
) -> Result<(), MpcError> {
    cluster.side_channel(
        label,
        |_, items| {
            let mut out = Vec::new();
            for r in items {
                if r.side == Side::Left && !r.neighbors.is_empty() {
                    for &v in &r.neighbors {
                        // (target, source, key, max_level, norm_sum)
                        out.push((home(v, p), (v, r.gid, r.key, r.exact_agg.0, r.exact_agg.1)));
                    }
                }
            }
            out
        },
        |_, items, msgs| {
            let mut by_target: HashMap<u32, Vec<(u32, i64, i64, f64)>> = HashMap::new();
            for (v, u_gid, key, m, s) in msgs {
                by_target.entry(v).or_default().push((u_gid, key, m, s));
            }
            for r in items.iter_mut() {
                if r.side != Side::Right {
                    continue;
                }
                let Some(incoming) = by_target.get(&r.gid) else {
                    r.neighbor_data.clear();
                    r.exact_alloc = 0.0;
                    continue;
                };
                r.neighbor_data = vec![0i64; r.neighbors.len()];
                let mut aggs: Vec<(i64, f64)> = vec![(i64::MIN, 0.0); r.neighbors.len()];
                for &(u_gid, key, m, s) in incoming {
                    let idx = r
                        .neighbors
                        .binary_search(&u_gid)
                        .expect("message from a neighbor");
                    r.neighbor_data[idx] = key;
                    aggs[idx] = (m, s);
                }
                if exact {
                    // Exact alloc in CSR order, matching
                    // `aggregates::right_allocs` bit-for-bit.
                    r.exact_alloc = aggs
                        .iter()
                        .map(|&(m, s)| pows.pow_diff(r.level - m) / s)
                        .sum();
                }
            }
        },
    )
}

/// Gather `(level, alloc)` per right vertex to evaluate the termination
/// condition; charges one reduce round.
fn gather_right_state(
    cluster: &mut Cluster<Record>,
    n_right: usize,
    nl: u32,
) -> Result<(Vec<i64>, Vec<f64>), MpcError> {
    // Model the reduce: every machine ships its right summaries to machine
    // 0 (3 words per right vertex).
    cluster.side_channel(
        "reduce",
        |_, items| {
            items
                .iter()
                .filter(|r| r.side == Side::Right)
                .map(|r| (0usize, (r.gid, r.level, r.exact_alloc)))
                .collect()
        },
        |_, _, _| {},
    )?;
    // Simulation-side collection (deterministic; the data just moved to
    // machine 0 in the model above).
    let mut levels = vec![0i64; n_right];
    let mut alloc = vec![0f64; n_right];
    for r in cluster.iter_items() {
        if r.side == Side::Right {
            levels[(r.gid - nl) as usize] = r.level;
            alloc[(r.gid - nl) as usize] = r.exact_alloc;
        }
    }
    Ok((levels, alloc))
}

/// Run Algorithm 2 distributed. See the module docs for the round budget.
pub fn run_mpc(g: &Bipartite, config: &MpcExecConfig) -> Result<MpcExecResult, MpcError> {
    assert!(config.phase_len >= 1);
    let eps = config.eps;
    let pows = PowTable::new(eps);
    let nl = g.n_left() as u32;
    let p = config.mpc.machines;
    let t_budget = config.budget.resolve(eps, config.phase_len, g.n());

    let mut cluster = Cluster::from_items(config.mpc.clone(), build_records(g))?;
    cluster = cluster.exchange_by("load", |r| home(r.gid, p))?;

    let mut rounds = 0usize;
    let mut phases = 0usize;
    let mut termination_info: Option<TerminationCheck> = None;

    while rounds < config.tau {
        let b_this = config.phase_len.min(config.tau - rounds);

        // Steps 1–2: refresh levels and keys.
        levels_to_left(
            &mut cluster,
            "phase-levels",
            p,
            &pows,
            eps,
            config.phase_len,
        )?;
        keys_to_right(&mut cluster, "phase-keys", p, false, &pows)?;

        // Step 3: draw plans (0 rounds).
        let (seed, phase) = (config.seed, phases);
        cluster.update_local("draw-plans", |_, items| {
            for r in items.iter_mut() {
                if r.neighbors.is_empty() {
                    r.plans.clear();
                    continue;
                }
                let key_of: HashMap<u32, i64> = r
                    .neighbors
                    .iter()
                    .copied()
                    .zip(r.neighbor_data.iter().copied())
                    .collect();
                let groups = GroupedNeighborhood::build(&r.neighbors, |w| key_of[&w]);
                r.plans = (0..b_this)
                    .map(|s| {
                        groups.draw_plan(t_budget, |key| {
                            sample_rng(seed, phase, s, r.side, r.vid, key)
                        })
                    })
                    .collect();
            }
        })?;

        // Step 4: graph exponentiation on the sampled union graph H.
        let adjacency: Vec<BallInput> = cluster
            .iter_items()
            .map(|r| {
                let mut out: Vec<u32> = r.plans.iter().flat_map(|p| p.members()).collect();
                out.sort_unstable();
                out.dedup();
                BallInput {
                    vertex: r.gid,
                    neighbors: out,
                }
            })
            .collect();
        let (balls, ball_ledger) = grow_balls(config.mpc.clone(), adjacency, 2 * b_this as u32)?;
        cluster.absorb_ledger(&ball_ledger);
        let ball_map: HashMap<u32, Vec<u32>> =
            balls.into_iter().map(|b| (b.center, b.members)).collect();
        cluster.update_local("store-balls", |_, items| {
            for r in items.iter_mut() {
                if r.side == Side::Right {
                    r.ball_ids = ball_map.get(&r.gid).cloned().unwrap_or_default();
                }
                r.pending.clear();
                r.ball.clear();
            }
        })?;

        // Step 5: hydration (request + reply rounds).
        cluster.side_channel(
            "hydrate-request",
            |_, items| {
                let mut out = Vec::new();
                for r in items {
                    if r.side == Side::Right {
                        for &w in &r.ball_ids {
                            out.push((home(w, p), (w, r.gid)));
                        }
                    }
                }
                out
            },
            |_, items, msgs| {
                let mut by_target: HashMap<u32, Vec<u32>> = HashMap::new();
                for (w, requester) in msgs {
                    by_target.entry(w).or_default().push(requester);
                }
                for r in items.iter_mut() {
                    if let Some(reqs) = by_target.get(&r.gid) {
                        r.pending = reqs.clone();
                    }
                }
            },
        )?;
        cluster.side_channel(
            "hydrate-reply",
            |_, items| {
                let mut out = Vec::new();
                for r in items {
                    if r.pending.is_empty() {
                        continue;
                    }
                    let slim = Slim {
                        gid: r.gid,
                        side: r.side,
                        capacity: r.capacity,
                        level: r.level,
                        ceiling: r.ceiling,
                        plans: r.plans.clone(),
                    };
                    for &requester in &r.pending {
                        out.push((home(requester, p), (requester, slim.clone())));
                    }
                }
                out
            },
            |_, items, msgs| {
                let mut by_target: HashMap<u32, Vec<Slim>> = HashMap::new();
                for (requester, slim) in msgs {
                    by_target.entry(requester).or_default().push(slim);
                }
                for r in items.iter_mut() {
                    if r.side == Side::Right {
                        if let Some(mut slims) = by_target.remove(&r.gid) {
                            slims.sort_by_key(|s| s.gid);
                            r.ball = slims;
                        }
                    }
                }
            },
        )?;

        // Step 6: local simulation of the phase (0 rounds).
        cluster.update_local("simulate", |_, items| {
            for r in items.iter_mut() {
                if r.side != Side::Right {
                    continue;
                }
                r.level = simulate_center(r, b_this, &pows, eps);
            }
            // Clear phase scratch (peaks already recorded by the ledger).
            for r in items.iter_mut() {
                r.plans.clear();
                r.pending.clear();
                r.ball_ids.clear();
                r.ball.clear();
            }
        })?;

        rounds += b_this;
        phases += 1;

        if config.check_termination {
            levels_to_left(&mut cluster, "term-levels", p, &pows, eps, config.phase_len)?;
            keys_to_right(&mut cluster, "term-alloc", p, true, &pows)?;
            let (levels, alloc) = gather_right_state(&mut cluster, g.n_right(), nl)?;
            let t = termination::check(g, &levels, &alloc, rounds, eps);
            let stop = t.terminated;
            termination_info = Some(t);
            if stop {
                break;
            }
        }
    }

    // Final exact output (2 aggregation rounds + reduce).
    levels_to_left(
        &mut cluster,
        "final-levels",
        p,
        &pows,
        eps,
        config.phase_len,
    )?;
    keys_to_right(&mut cluster, "final-alloc", p, true, &pows)?;
    let (levels, alloc) = gather_right_state(&mut cluster, g.n_right(), nl)?;
    let match_weight = crate::algo1::match_weight_of(g, &alloc);
    let fractional = finalize_from_levels(g, &levels, eps);
    let (_, ledger) = cluster.into_items();

    Ok(MpcExecResult {
        levels,
        rounds,
        phases,
        alloc,
        match_weight,
        fractional,
        termination: termination_info,
        ledger,
    })
}

/// Result of the distributed λ-oblivious driver.
#[derive(Debug)]
pub struct MpcGuessingResult {
    /// The accepted trial's result (its ledger covers only that trial).
    pub result: MpcExecResult,
    /// λ guesses tried, in order.
    pub guesses: Vec<u32>,
    /// Combined accounting across all trials.
    pub total_ledger: Ledger,
    /// Total LOCAL rounds simulated across trials.
    pub total_rounds: usize,
}

/// Theorem 3 end-to-end: run the distributed Algorithm 2 **without knowing
/// λ**, guessing `√(log λ_i) = 2^i` and doubling on failure (§3.2.2).
///
/// Trial `i` simulates up to `τ(λ_i)` LOCAL rounds with phase length
/// `B_i = 2^i` (the guess *also* sets the compression depth, per the
/// paper), evaluating the §4 condition at every phase boundary; an
/// unterminated trial is discarded and the guess doubles. Costs are
/// geometric, so `total_ledger.rounds` is a constant factor over the final
/// trial's.
pub fn run_mpc_with_guessing(
    g: &Bipartite,
    base: &MpcExecConfig,
) -> Result<MpcGuessingResult, MpcError> {
    let azm_cap = crate::params::tau_azm(base.eps, g.n_right());
    let mut guesses = Vec::new();
    let mut total_ledger = Ledger::default();
    let mut total_rounds = 0usize;

    for i in 0.. {
        let lambda_i = crate::params::lambda_guess(i);
        let tau_i = crate::params::tau_known_lambda(base.eps, lambda_i).min(azm_cap);
        let capped = tau_i >= azm_cap;
        guesses.push(lambda_i);

        let cfg = MpcExecConfig {
            tau: tau_i,
            phase_len: 1usize << i.min(4),
            check_termination: true,
            ..base.clone()
        };
        let result = run_mpc(g, &cfg)?;
        total_rounds += result.rounds;
        total_ledger.absorb(&result.ledger);

        let terminated = result
            .termination
            .as_ref()
            .map(|t| t.terminated)
            .unwrap_or(false);
        if terminated || capped {
            return Ok(MpcGuessingResult {
                result,
                guesses,
                total_ledger,
                total_rounds,
            });
        }
    }
    unreachable!("the AZM cap guarantees termination")
}

/// Replay `b` rounds for one right vertex inside its hydrated ball.
///
/// Levels of ball members evolve locally; a member's value is only used
/// while its cone of influence stays inside the ball, which the radius-`2B`
/// collection guarantees for the center.
fn simulate_center(center: &Record, b: usize, pows: &PowTable, eps: f64) -> i64 {
    // Local views: self + ball members.
    let self_slim = Slim {
        gid: center.gid,
        side: center.side,
        capacity: center.capacity,
        level: center.level,
        ceiling: center.ceiling,
        plans: center.plans.clone(),
    };
    let mut slims: HashMap<u32, &Slim> = center.ball.iter().map(|s| (s.gid, s)).collect();
    slims.insert(center.gid, &self_slim);

    // Level state for right members; validity horizon bookkeeping.
    let mut level: HashMap<u32, i64> = slims
        .values()
        .filter(|s| s.side == Side::Right)
        .map(|s| (s.gid, s.level))
        .collect();
    let mut valid: HashMap<u32, bool> = level.keys().map(|&gid| (gid, true)).collect();

    for s in 0..b {
        // Left estimates are pure functions of current levels; memoize per
        // round. `None` marks "not computable inside this ball".
        let mut left_cache: HashMap<u32, Option<(i64, f64)>> = HashMap::new();
        let mut left_estimate = |u: u32,
                                 slims: &HashMap<u32, &Slim>,
                                 level: &HashMap<u32, i64>,
                                 valid: &HashMap<u32, bool>|
         -> Option<(i64, f64)> {
            if let Some(cached) = left_cache.get(&u) {
                return *cached;
            }
            let est = (|| {
                let rec = slims.get(&u)?;
                let plan = rec.plans.get(s)?;
                // All inputs must be valid right members.
                for v in plan.members() {
                    if !valid.get(&v).copied().unwrap_or(false) {
                        return None;
                    }
                }
                let ceiling = rec.ceiling;
                let sum = plan.eval(|v| pows.pow_diff(level[&v] - ceiling));
                Some((ceiling, sum))
            })();
            left_cache.insert(u, est);
            est
        };

        // Simultaneous update: compute all new levels from the old state.
        let mut new_level: HashMap<u32, i64> = HashMap::with_capacity(level.len());
        let mut new_valid: HashMap<u32, bool> = HashMap::with_capacity(valid.len());
        for (&gid, &lv) in &level {
            if !valid[&gid] {
                new_level.insert(gid, lv);
                new_valid.insert(gid, false);
                continue;
            }
            let rec = slims[&gid];
            // A record with no plan for this round is an *isolated* vertex
            // (plans are drawn for every simulated round whenever the
            // vertex has neighbors): its allocation is exactly 0, matching
            // the shared-memory path's empty-groups estimate.
            let computable = match rec.plans.get(s) {
                None => (true, 0.0),
                Some(plan) => {
                    let mut ok = true;
                    let alloc = plan.eval(|u| match left_estimate(u, &slims, &level, &valid) {
                        Some((m_u, s_u)) => pows.pow_diff(lv - m_u) / s_u,
                        None => {
                            ok = false;
                            0.0
                        }
                    });
                    (ok, alloc)
                }
            };
            match computable {
                (true, alloc) => {
                    new_level.insert(gid, lv + update_level(alloc, rec.capacity, eps, 1.0, 1.0));
                    new_valid.insert(gid, true);
                }
                _ => {
                    new_level.insert(gid, lv);
                    new_valid.insert(gid, false);
                }
            }
        }
        level = new_level;
        valid = new_valid;
    }

    assert!(
        valid[&center.gid],
        "ball radius must cover the center's cone of influence"
    );
    level[&center.gid]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::{run_sampled, SampledConfig};
    use sparse_alloc_graph::generators::{random_bipartite, union_of_spanning_trees};

    fn shared_cfg(
        eps: f64,
        tau: usize,
        b: usize,
        budget: SampleBudget,
        term: bool,
    ) -> SampledConfig {
        SampledConfig {
            eps,
            phase_len: b,
            tau,
            budget,
            seed: 42,
            check_termination: term,
        }
    }

    fn mpc_cfg(
        eps: f64,
        tau: usize,
        b: usize,
        budget: SampleBudget,
        term: bool,
        machines: usize,
    ) -> MpcExecConfig {
        MpcExecConfig {
            eps,
            phase_len: b,
            tau,
            budget,
            seed: 42,
            check_termination: term,
            mpc: MpcConfig::lenient(machines, usize::MAX / 4),
        }
    }

    #[test]
    fn equals_shared_memory_exact_budget() {
        let g = union_of_spanning_trees(40, 35, 2, 2, 5).graph;
        let eps = 0.2;
        let shared = run_sampled(&g, &shared_cfg(eps, 8, 2, SampleBudget::Paper, false));
        let dist = run_mpc(&g, &mpc_cfg(eps, 8, 2, SampleBudget::Paper, false, 4)).unwrap();
        assert_eq!(shared.levels, dist.levels);
        assert_eq!(shared.rounds, dist.rounds);
        assert_eq!(shared.phases, dist.phases);
        assert_eq!(shared.alloc, dist.alloc);
        assert_eq!(shared.fractional, dist.fractional);
    }

    #[test]
    fn equals_shared_memory_sampling_budget() {
        // Small fixed budget forces real sampling — the hard equality case.
        let g = random_bipartite(60, 50, 240, 2, 9).graph;
        let eps = 0.25;
        let budget = SampleBudget::Fixed(3);
        let shared = run_sampled(&g, &shared_cfg(eps, 6, 2, budget, false));
        let dist = run_mpc(&g, &mpc_cfg(eps, 6, 2, budget, false, 5)).unwrap();
        assert_eq!(shared.levels, dist.levels, "sampled paths diverged");
        assert_eq!(shared.match_weight, dist.match_weight);
    }

    #[test]
    fn equals_shared_memory_with_termination() {
        let g = union_of_spanning_trees(80, 70, 2, 2, 7).graph;
        let eps = 0.15;
        let shared = run_sampled(
            &g,
            &shared_cfg(eps, 200, 2, SampleBudget::Scaled(1.0), true),
        );
        let dist = run_mpc(
            &g,
            &mpc_cfg(eps, 200, 2, SampleBudget::Scaled(1.0), true, 4),
        )
        .unwrap();
        assert_eq!(shared.levels, dist.levels);
        assert_eq!(shared.rounds, dist.rounds);
        assert_eq!(
            shared.termination.map(|t| t.terminated),
            dist.termination.map(|t| t.terminated)
        );
    }

    #[test]
    fn machine_count_does_not_change_results() {
        let g = random_bipartite(50, 40, 200, 3, 11).graph;
        let eps = 0.2;
        let budget = SampleBudget::Fixed(4);
        let a = run_mpc(&g, &mpc_cfg(eps, 6, 3, budget, false, 2)).unwrap();
        let b = run_mpc(&g, &mpc_cfg(eps, 6, 3, budget, false, 8)).unwrap();
        assert_eq!(a.levels, b.levels);
        // Costs differ, results don't.
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn ledger_accounts_phases_and_balls() {
        let g = union_of_spanning_trees(60, 50, 2, 2, 3).graph;
        let res = run_mpc(&g, &mpc_cfg(0.2, 8, 4, SampleBudget::Fixed(2), false, 4)).unwrap();
        let l = &res.ledger;
        assert_eq!(res.phases, 2);
        // Per phase: levels + keys + ball rounds + request + reply; plus
        // load and the final aggregation.
        assert!(l.rounds_labeled("phase-levels") == 2);
        assert!(l.rounds_labeled("phase-keys") == 2);
        assert!(l.rounds_labeled("hydrate-request") == 2);
        assert!(l.rounds_labeled("hydrate-reply") == 2);
        assert!(l.rounds_labeled("final-levels") == 1);
        assert!(l.rounds >= 10);
        assert!(l.words_total > 0);
        assert!(l.peak_storage > 0);
    }

    #[test]
    fn strict_space_violation_is_surfaced() {
        // A tiny space budget cannot hold the records: structured error,
        // not a wrong answer.
        let g = random_bipartite(100, 80, 600, 2, 2).graph;
        let cfg = MpcExecConfig {
            eps: 0.2,
            phase_len: 2,
            tau: 4,
            budget: SampleBudget::Fixed(4),
            seed: 1,
            check_termination: false,
            mpc: MpcConfig::strict(4, 64),
        };
        assert!(matches!(
            run_mpc(&g, &cfg),
            Err(MpcError::SpaceExceeded { .. })
        ));
    }

    #[test]
    fn lambda_oblivious_distributed_driver() {
        use sparse_alloc_flow::opt::opt_value;
        let eps = 0.15;
        let g = union_of_spanning_trees(120, 100, 3, 2, 19).graph;
        let base = mpc_cfg(
            eps,
            0, /* overridden */
            1,
            SampleBudget::Scaled(1.0),
            true,
            4,
        );
        let out = run_mpc_with_guessing(&g, &base).unwrap();
        assert!(!out.guesses.is_empty());
        assert!(out.total_ledger.rounds >= out.result.ledger.rounds);
        assert!(out.total_rounds >= out.result.rounds);
        // The accepted trial certifies (2+10ε) — with sampling slack, test
        // the looser Theorem 17 envelope.
        let opt = opt_value(&g);
        let ratio = crate::algo1::ratio(opt, out.result.match_weight);
        assert!(ratio <= 2.0 + 16.0 * eps + 1e-9, "ratio {ratio}");
        out.result.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn phase_longer_than_tau_truncates() {
        // B = 8 but τ = 3: one truncated phase, still equal to the
        // shared-memory path.
        let g = union_of_spanning_trees(30, 25, 2, 2, 3).graph;
        let eps = 0.3;
        let budget = SampleBudget::Fixed(2);
        let shared = run_sampled(&g, &shared_cfg(eps, 3, 8, budget, false));
        let dist = run_mpc(&g, &mpc_cfg(eps, 3, 8, budget, false, 3)).unwrap();
        assert_eq!(shared.levels, dist.levels);
        assert_eq!(dist.phases, 1);
        assert_eq!(dist.rounds, 3);
    }

    #[test]
    fn boundary_eps_equality() {
        // ε = 1.0 is the largest step the update rule admits.
        let g = random_bipartite(40, 30, 150, 2, 21).graph;
        let budget = SampleBudget::Fixed(3);
        let shared = run_sampled(&g, &shared_cfg(1.0, 6, 2, budget, false));
        let dist = run_mpc(&g, &mpc_cfg(1.0, 6, 2, budget, false, 4)).unwrap();
        assert_eq!(shared.levels, dist.levels);
        shared.fractional.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn disconnected_components_and_isolated_vertices() {
        // Two disjoint stars plus isolated vertices on both sides.
        let mut b = sparse_alloc_graph::BipartiteBuilder::new(10, 6);
        for u in 0..4u32 {
            b.add_edge(u, 0);
        }
        for u in 4..8u32 {
            b.add_edge(u, 1);
        }
        // u8, u9 isolated; v2..v5 isolated.
        let g = b.build_with_uniform_capacity(2).unwrap();
        let budget = SampleBudget::Fixed(2);
        let shared = run_sampled(&g, &shared_cfg(0.25, 5, 2, budget, false));
        let dist = run_mpc(&g, &mpc_cfg(0.25, 5, 2, budget, false, 3)).unwrap();
        assert_eq!(shared.levels, dist.levels);
        dist.fractional.validate(&g, 1e-9).unwrap();
        // The two stars saturate their capacity-2 centers.
        assert!((dist.match_weight - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_output_is_feasible() {
        let g = union_of_spanning_trees(70, 60, 3, 2, 13).graph;
        let res = run_mpc(&g, &mpc_cfg(0.2, 10, 2, SampleBudget::Fixed(3), false, 4)).unwrap();
        res.fractional.validate(&g, 1e-9).unwrap();
        assert!(res.match_weight > 0.0);
    }
}

//! Convergence traces: per-round snapshots of the proportional-allocation
//! dynamics, exportable as JSON lines for plotting.
//!
//! The level-set structure (`L_0 … L_{2τ}`, §4) *is* the algorithm's state
//! of progress; a trace records its evolution — match weight, extreme
//! level-set sizes, and a histogram of levels — so convergence plots like
//! E1's `t90` column can be produced outside the harness.
//!
//! ```
//! use sparse_alloc_core::trace::{trace_run, TraceConfig};
//! use sparse_alloc_graph::generators::star;
//!
//! let g = star(10, 2).graph;
//! let trace = trace_run(&g, &TraceConfig { eps: 0.25, rounds: 8 });
//! assert_eq!(trace.records.len(), 8);
//! // The star converges immediately: weight = capacity from round 1.
//! assert!((trace.records[0].match_weight - 2.0).abs() < 1e-9);
//! let json = trace.to_json_lines();
//! assert_eq!(json.lines().count(), 8);
//! ```

use serde::Serialize;
use sparse_alloc_graph::Bipartite;

use crate::algo1::{self, ProportionalConfig};
use crate::params::Schedule;
use crate::termination;

/// What to trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// The `(1+ε)` parameter.
    pub eps: f64,
    /// Rounds to run and record.
    pub rounds: usize,
}

/// One per-round snapshot.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceRecord {
    /// Round number (1-based).
    pub round: usize,
    /// `Σ_v min(C_v, alloc_v)` after this round's computation.
    pub match_weight: f64,
    /// Vertices whose β rose every round so far (`|L_top|`).
    pub top_size: usize,
    /// Vertices whose β fell every round so far (`|L_bot|`).
    pub bottom_size: usize,
    /// `|N(L_top)|`.
    pub top_neighborhood: usize,
    /// Whether the §4 termination condition held at this round.
    pub terminated: bool,
    /// Histogram of levels as `(level, count)`, sorted by level.
    pub level_histogram: Vec<(i64, usize)>,
}

/// A full trace.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Trace {
    /// ε used.
    pub eps: f64,
    /// Snapshots, one per round.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Serialize as JSON lines (one record per line) for plotting tools.
    pub fn to_json_lines(&self) -> String {
        self.records
            .iter()
            .map(|r| serde_json::to_string(r).expect("trace records serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// First round whose match weight reaches `fraction` of the final one.
    pub fn rounds_to_fraction(&self, fraction: f64) -> Option<usize> {
        let final_mw = self.records.last()?.match_weight;
        self.records
            .iter()
            .find(|r| r.match_weight >= fraction * final_mw)
            .map(|r| r.round)
    }
}

fn histogram(levels: &[i64]) -> Vec<(i64, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for &l in levels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Run Algorithm 1 for `config.rounds` rounds, recording a snapshot after
/// every round via the solver's observer hook — a single pass, one extra
/// `O(m)` termination evaluation per round.
pub fn trace_run(g: &Bipartite, config: &TraceConfig) -> Trace {
    let mut records = Vec::with_capacity(config.rounds);
    let eps = config.eps;
    let _ = algo1::run_with_observer(
        g,
        &ProportionalConfig {
            eps,
            schedule: Schedule::Fixed(config.rounds),
            track_history: false,
        },
        |round, levels, alloc| {
            let check = termination::check(g, levels, alloc, round, eps);
            records.push(TraceRecord {
                round,
                match_weight: algo1::match_weight_of(g, alloc),
                top_size: check.top_size,
                bottom_size: check.bottom_size,
                top_neighborhood: check.top_neighborhood,
                terminated: check.terminated,
                level_histogram: histogram(levels),
            });
        },
    );
    Trace {
        eps: config.eps,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::generators::{escape_blocks, star};

    #[test]
    fn star_trace_shape() {
        let g = star(12, 3).graph;
        let t = trace_run(
            &g,
            &TraceConfig {
                eps: 0.5,
                rounds: 6,
            },
        );
        assert_eq!(t.records.len(), 6);
        // The center only sinks: bottom set is always {center}.
        for r in &t.records {
            assert_eq!(r.bottom_size, 1);
            assert_eq!(r.top_size, 0);
            assert!((r.match_weight - 3.0).abs() < 1e-9);
        }
        // Histogram has exactly one entry (one right vertex).
        assert_eq!(t.records[5].level_histogram, vec![(-6, 1)]);
    }

    #[test]
    fn escape_trace_shows_convergence() {
        let g = escape_blocks(4, 4).graph;
        let t = trace_run(
            &g,
            &TraceConfig {
                eps: 0.25,
                rounds: 20,
            },
        );
        // Match weight is (weakly) increasing towards |L| on this family.
        let first = t.records.first().unwrap().match_weight;
        let last = t.records.last().unwrap().match_weight;
        assert!(last > first);
        assert!(last >= 0.95 * g.n_left() as f64);
        let t90 = t.rounds_to_fraction(0.9).expect("reaches 90%");
        assert!(t90 > 1 && t90 <= 20, "t90 = {t90}");
    }

    #[test]
    fn json_lines_parse_back() {
        let g = star(5, 2).graph;
        let t = trace_run(
            &g,
            &TraceConfig {
                eps: 0.5,
                rounds: 3,
            },
        );
        let json = t.to_json_lines();
        for line in json.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("round").is_some());
            assert!(v.get("match_weight").is_some());
            assert!(v.get("level_histogram").is_some());
        }
    }

    #[test]
    fn histogram_sums_to_n_right() {
        let g = escape_blocks(3, 2).graph;
        let t = trace_run(
            &g,
            &TraceConfig {
                eps: 0.2,
                rounds: 4,
            },
        );
        for r in &t.records {
            let total: usize = r.level_histogram.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, g.n_right());
        }
    }
}

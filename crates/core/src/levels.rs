//! Integer β-levels and the negative-power lookup table.
//!
//! Algorithm 1 only ever multiplies or divides a priority `β_v` by `(1+ε)`,
//! so `β_v = (1+ε)^{level_v}` with an *integer* level is an exact
//! representation: level-set membership (`L_0 … L_{2τ}`, §4) becomes integer
//! comparison and no float drift can move a vertex across level sets.
//!
//! All β arithmetic in the solvers is *locally normalized*: a sum
//! `Σ_v (1+ε)^{level_v}` is evaluated as
//! `(1+ε)^{m} · Σ_v (1+ε)^{level_v − m}` with `m = max level`, so only
//! non-positive exponents are materialized. That keeps every computation in
//! range no matter how far absolute levels drift (proportional shares are
//! invariant under a global β rescaling), and exponents below the f64
//! denormal range honestly underflow to the 0 they mathematically round to.

/// Lookup table for `(1+ε)^{-i}`, `i ≥ 0`.
#[derive(Debug, Clone)]
pub struct PowTable {
    eps: f64,
    neg: Vec<f64>,
}

impl PowTable {
    /// Build a table for the given ε. The table extends to the underflow
    /// horizon (`(1+ε)^{-i} < 1e-320`), beyond which powers are exactly 0.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε ∈ (0, 1]");
        let base = 1.0 + eps;
        let horizon = (737.0 / base.ln()).ceil() as usize + 2;
        let mut neg = Vec::with_capacity(horizon);
        let mut x = 1.0f64;
        for _ in 0..horizon {
            neg.push(x);
            x /= base;
        }
        PowTable { eps, neg }
    }

    /// The ε this table was built for.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// `(1+ε)^{-i}` (0.0 past the underflow horizon).
    #[inline]
    pub fn pow_neg(&self, i: u64) -> f64 {
        self.neg.get(i as usize).copied().unwrap_or(0.0)
    }

    /// `(1+ε)^{d}` for `d ≤ 0` given as the difference `level − max_level`.
    #[inline]
    pub fn pow_diff(&self, diff: i64) -> f64 {
        debug_assert!(diff <= 0, "pow_diff expects non-positive exponent");
        self.pow_neg((-diff) as u64)
    }
}

/// The level update rule: `β ← β(1+ε)` iff `alloc ≤ C/(1+k_lo·ε)`,
/// `β ← β/(1+ε)` iff `alloc ≥ C·(1+k_hi·ε)`, else unchanged.
///
/// Algorithm 1 is the special case `k_lo = k_hi = 1`; Algorithm 3 allows
/// `k ∈ [1/4, 4]` (Lemma 13).
#[inline]
pub fn update_level(alloc: f64, capacity: u64, eps: f64, k_lo: f64, k_hi: f64) -> i64 {
    let c = capacity as f64;
    if alloc <= c / (1.0 + k_lo * eps) {
        1
    } else if alloc >= c * (1.0 + k_hi * eps) {
        -1
    } else {
        0
    }
}

/// Level-set snapshot after `rounds` rounds: the top set `L_{2τ}` (vertices
/// whose β rose every round) and the bottom set `L_0` (fell every round).
#[derive(Debug, Clone, Default)]
pub struct LevelSets {
    /// Right vertices with `level == rounds`.
    pub top: Vec<u32>,
    /// Right vertices with `level == −rounds`.
    pub bottom: Vec<u32>,
}

/// Extract the extreme level sets from the level vector.
pub fn extreme_level_sets(levels: &[i64], rounds: usize) -> LevelSets {
    let r = rounds as i64;
    let mut sets = LevelSets::default();
    for (v, &l) in levels.iter().enumerate() {
        if l == r {
            sets.top.push(v as u32);
        } else if l == -r {
            sets.bottom.push(v as u32);
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_table_values() {
        let t = PowTable::new(0.5);
        assert_eq!(t.pow_neg(0), 1.0);
        assert!((t.pow_neg(1) - 1.0 / 1.5).abs() < 1e-15);
        assert!((t.pow_neg(10) - 1.5f64.powi(-10)).abs() < 1e-15);
        assert_eq!(t.pow_diff(0), 1.0);
        assert!((t.pow_diff(-3) - 1.5f64.powi(-3)).abs() < 1e-15);
    }

    #[test]
    fn pow_table_underflows_to_zero() {
        let t = PowTable::new(1.0);
        // 2^{-2000} is far past the f64 denormal range.
        assert_eq!(t.pow_neg(2000), 0.0);
        // But values near the horizon are still monotone non-negative.
        assert!(t.pow_neg(1000) >= 0.0);
    }

    #[test]
    fn update_level_rule() {
        // C = 10, ε = 0.1: low threshold 10/1.1 ≈ 9.09, high 11.
        assert_eq!(update_level(5.0, 10, 0.1, 1.0, 1.0), 1);
        assert_eq!(update_level(9.0909, 10, 0.1, 1.0, 1.0), 1);
        assert_eq!(update_level(10.0, 10, 0.1, 1.0, 1.0), 0);
        assert_eq!(update_level(11.0, 10, 0.1, 1.0, 1.0), -1);
        assert_eq!(update_level(15.0, 10, 0.1, 1.0, 1.0), -1);
    }

    #[test]
    fn update_level_with_k() {
        // k_lo = 4 widens the increase region: 10/1.4 ≈ 7.14.
        assert_eq!(update_level(7.0, 10, 0.1, 4.0, 1.0), 1);
        assert_eq!(update_level(7.2, 10, 0.1, 4.0, 1.0), 0);
        // k_hi = 1/4 narrows the decrease threshold: 10·1.025.
        assert_eq!(update_level(10.3, 10, 0.1, 1.0, 0.25), -1);
        assert_eq!(update_level(10.3, 10, 0.1, 1.0, 1.0), 0);
    }

    #[test]
    fn extreme_sets() {
        let levels = vec![3, -3, 0, 3, -2];
        let s = extreme_level_sets(&levels, 3);
        assert_eq!(s.top, vec![0, 3]);
        assert_eq!(s.bottom, vec![1]);
        let s0 = extreme_level_sets(&levels, 5);
        assert!(s0.top.is_empty() && s0.bottom.is_empty());
    }
}

//! Fractional allocations: the output object of Algorithms 1/2/3.
//!
//! Lines 5–6 of Algorithm 1 turn the raw proportional fractions `x` into a
//! feasible fractional allocation `x'` by scaling each over-allocated right
//! vertex back to its capacity: `x'_{u,v} = min(1, C_v/alloc_v) · x_{u,v}`.
//! The objective is `MatchWeight = Σ_v min(C_v, alloc_v)`.

use sparse_alloc_graph::Bipartite;

use crate::aggregates::{edge_fractions, left_aggregates, right_allocs, LeftAggregate};
use crate::levels::PowTable;

/// A feasible fractional allocation with its per-edge values.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalAllocation {
    /// Per-edge values `x'_{u,v} ∈ [0, 1]`, indexed by edge id.
    pub x: Vec<f64>,
    /// The objective `Σ_e x'_e` (equals `Σ_v min(C_v, alloc_v)` up to
    /// floating error when produced by the solvers).
    pub weight: f64,
}

impl FractionalAllocation {
    /// Validate feasibility within tolerance `tol`:
    /// every `x ∈ [0, 1+tol]`, left sums ≤ `1+tol`, right sums ≤
    /// `C_v(1+tol)`.
    pub fn validate(&self, g: &Bipartite, tol: f64) -> Result<(), String> {
        if self.x.len() != g.m() {
            return Err(format!(
                "x has {} entries for {} edges",
                self.x.len(),
                g.m()
            ));
        }
        if let Some((e, &xe)) = self
            .x
            .iter()
            .enumerate()
            .find(|(_, &xe)| !(0.0..=1.0 + tol).contains(&xe) || !xe.is_finite())
        {
            return Err(format!("x[{e}] = {xe} out of [0, 1]"));
        }
        for u in 0..g.n_left() as u32 {
            let s: f64 = g.left_edge_range(u).map(|e| self.x[e]).sum();
            if s > 1.0 + tol {
                return Err(format!("left {u} total {s} exceeds 1"));
            }
        }
        for v in 0..g.n_right() as u32 {
            let s: f64 = g
                .right_edge_ids(v)
                .iter()
                .map(|&e| self.x[e as usize])
                .sum();
            let c = g.capacity(v) as f64;
            if s > c * (1.0 + tol) + tol {
                return Err(format!("right {v} total {s} exceeds capacity {c}"));
            }
        }
        let total: f64 = self.x.iter().sum();
        if (total - self.weight).abs() > tol * total.max(1.0) {
            return Err(format!("declared weight {} but Σx = {total}", self.weight));
        }
        Ok(())
    }
}

/// Apply lines 5–6 of Algorithm 1: from final levels, produce the feasible
/// fractional allocation and its weight.
///
/// `alloc` must be the exact allocation masses for `levels` (one extra
/// aggregation pass, which is how the MPC version finishes too — an `O(1)`
/// round exact aggregation).
pub fn finalize(
    g: &Bipartite,
    levels: &[i64],
    lefts: &[LeftAggregate],
    alloc: &[f64],
    pows: &PowTable,
) -> FractionalAllocation {
    let mut x = edge_fractions(g, levels, lefts, pows);
    // Scale each over-allocated right vertex down to capacity.
    for v in 0..g.n_right() as u32 {
        let a = alloc[v as usize];
        let c = g.capacity(v) as f64;
        if a > c {
            let scale = c / a;
            for &e in g.right_edge_ids(v) {
                x[e as usize] *= scale;
            }
        }
    }
    let weight: f64 = alloc
        .iter()
        .zip(g.capacities())
        .map(|(&a, &c)| a.min(c as f64))
        .sum();
    FractionalAllocation { x, weight }
}

/// Compute the full output for a level vector in one call (used by solvers
/// and tests): exact aggregates, alloc, and the finalized allocation.
pub fn finalize_from_levels(g: &Bipartite, levels: &[i64], eps: f64) -> FractionalAllocation {
    let pows = PowTable::new(eps);
    let lefts = left_aggregates(g, levels, &pows);
    let alloc = right_allocs(g, levels, &lefts, &pows);
    finalize(g, levels, &lefts, &alloc, &pows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::generators::{random_bipartite, star};
    use sparse_alloc_graph::BipartiteBuilder;

    #[test]
    fn uniform_star_scales_to_capacity() {
        // Star: 6 leaves, capacity 2. All levels equal ⇒ every leaf sends 1
        // to the center (deg 1 each): alloc = 6 > C = 2 ⇒ scale 1/3.
        let g = star(6, 2).graph;
        let fa = finalize_from_levels(&g, &[0], 0.5);
        fa.validate(&g, 1e-9).unwrap();
        assert!((fa.weight - 2.0).abs() < 1e-9);
        assert!(fa.x.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn under_allocated_untouched() {
        // Two leaves, capacity 5: alloc = 2 < 5, no scaling.
        let g = star(2, 5).graph;
        let fa = finalize_from_levels(&g, &[0], 0.5);
        fa.validate(&g, 1e-9).unwrap();
        assert!((fa.weight - 2.0).abs() < 1e-9);
        assert!(fa.x.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn validate_catches_violations() {
        let mut b = BipartiteBuilder::new(2, 1);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        // Right vertex total = 1.6 > C = 1.
        let bad = FractionalAllocation {
            x: vec![0.8, 0.8],
            weight: 1.6,
        };
        assert!(bad.validate(&g, 1e-9).is_err());
        // Left vertex total > 1.
        let mut b = BipartiteBuilder::new(1, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build_with_uniform_capacity(5).unwrap();
        let bad = FractionalAllocation {
            x: vec![0.7, 0.7],
            weight: 1.4,
        };
        assert!(bad.validate(&g, 1e-9).is_err());
        // Wrong declared weight.
        let bad = FractionalAllocation {
            x: vec![0.3, 0.3],
            weight: 2.0,
        };
        assert!(bad.validate(&g, 1e-9).is_err());
        // NaN.
        let bad = FractionalAllocation {
            x: vec![f64::NAN, 0.0],
            weight: 0.0,
        };
        assert!(bad.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn arbitrary_levels_always_feasible() {
        let g = random_bipartite(40, 30, 200, 3, 9).graph;
        for (seed, eps) in [(1u64, 0.1f64), (2, 0.5), (3, 1.0)] {
            let levels: Vec<i64> = (0..30)
                .map(|v| ((v as u64 * seed * 2654435761) % 13) as i64 - 6)
                .collect();
            let fa = finalize_from_levels(&g, &levels, eps);
            fa.validate(&g, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed} eps {eps}: {e}"));
        }
    }

    #[test]
    fn weight_equals_sum_of_x() {
        let g = random_bipartite(25, 20, 100, 2, 4).graph;
        let fa = finalize_from_levels(&g, &[0; 20], 0.25);
        let total: f64 = fa.x.iter().sum();
        assert!((total - fa.weight).abs() < 1e-9);
    }
}

//! Cross-validation of the two Algorithm-1 implementations: the direct
//! CSR solver (`sparse-alloc-core::algo1`, normalized arithmetic) against
//! the pure message-passing LOCAL program
//! (`sparse-alloc-local::programs::proportional`, raw f64 β values).
//!
//! Agreement of the final β-levels is the evidence that (a) the LOCAL
//! engine implements synchronous-round semantics faithfully and (b) the
//! solver's normalized arithmetic computes the same updates as the
//! textbook formulation.

use sparse_alloc_core::algo1::{self, ProportionalConfig};
use sparse_alloc_core::params::Schedule;
use sparse_alloc_graph::generators::{
    dense_core_sparse_fringe, escape_blocks, random_bipartite, star, union_of_spanning_trees,
    LayeredParams,
};
use sparse_alloc_graph::Bipartite;
use sparse_alloc_local::programs::proportional::ProportionalProgram;
use sparse_alloc_local::LocalEngine;

fn check_equivalence(g: &Bipartite, eps: f64, tau: usize) {
    let direct = algo1::run(
        g,
        &ProportionalConfig {
            eps,
            schedule: Schedule::Fixed(tau),
            track_history: false,
        },
    );
    let program = ProportionalProgram::for_graph(g, eps, tau);
    let engine = LocalEngine::new(g);
    let res = engine.run(&program, 2 * tau + 2);
    assert!(res.metrics.halted, "program must quiesce");
    let engine_levels: Vec<i64> = res.right_states.iter().map(|s| s.level).collect();
    assert_eq!(
        direct.levels, engine_levels,
        "direct solver and message-passing program diverged (ε={eps}, τ={tau})"
    );
}

#[test]
fn star_instances() {
    for cap in [1u64, 3, 10] {
        let g = star(12, cap).graph;
        check_equivalence(&g, 0.5, 8);
    }
}

#[test]
fn forest_unions() {
    for (k, seed) in [(1u32, 1u64), (3, 2), (6, 3)] {
        let g = union_of_spanning_trees(60, 50, k, 2, seed).graph;
        check_equivalence(&g, 0.3, 12);
    }
}

#[test]
fn random_graphs_various_eps() {
    for (eps, seed) in [(0.1f64, 4u64), (0.25, 5), (0.7, 6)] {
        let g = random_bipartite(50, 40, 220, 2, seed).graph;
        check_equivalence(&g, eps, 10);
    }
}

#[test]
fn contended_instances() {
    let g = dense_core_sparse_fringe(&LayeredParams::default(), 9).graph;
    check_equivalence(&g, 0.2, 15);

    let g = escape_blocks(4, 3).graph;
    check_equivalence(&g, 0.25, 14);
}

#[test]
fn message_volume_matches_two_passes_per_round() {
    // Per algorithm round: β_v over every edge (m messages) + β_u replies
    // (≤ m messages): total ≤ 2m per round.
    let g = union_of_spanning_trees(40, 30, 2, 2, 7).graph;
    let tau = 6;
    let program = ProportionalProgram::for_graph(&g, 0.5, tau);
    let res = LocalEngine::new(&g).run(&program, 100);
    assert!(res.metrics.messages <= (2 * g.m() * tau) as u64 + g.m() as u64);
    assert!(res.metrics.messages >= (g.m() * tau) as u64);
}

//! Multi-source BFS as a LOCAL vertex program.
//!
//! The classical "flooding" algorithm: sources start at distance 0; any
//! vertex that learns a distance forwards `d` to its neighbors, who adopt
//! `d + 1` if still unvisited. Runs in `eccentricity + O(1)` rounds, which
//! also makes it a convenient engine-round-throughput benchmark.

use sparse_alloc_graph::{Bipartite, Side};

use crate::program::{LocalProgram, VertexCtx};

/// BFS vertex state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsState {
    /// Discovered distance, if any.
    pub dist: Option<u32>,
    fresh: bool,
}

/// Multi-source BFS program. Construct with the source indicator vectors.
pub struct BfsProgram {
    /// `true` for each left vertex that is a source.
    pub left_sources: Vec<bool>,
    /// `true` for each right vertex that is a source.
    pub right_sources: Vec<bool>,
}

impl LocalProgram for BfsProgram {
    type State = BfsState;
    type Msg = u32;

    fn init(&self, _: &Bipartite, side: Side, id: u32) -> BfsState {
        let is_source = match side {
            Side::Left => self.left_sources[id as usize],
            Side::Right => self.right_sources[id as usize],
        };
        BfsState {
            dist: is_source.then_some(0),
            fresh: is_source,
        }
    }

    fn round(&self, ctx: &mut VertexCtx<'_, u32>, state: &mut BfsState) {
        if state.dist.is_none() {
            if let Some(&d) = ctx.inbox().map(|(_, m)| m).min() {
                state.dist = Some(d + 1);
                state.fresh = true;
            }
        }
        if state.fresh {
            state.fresh = false;
            let d = state.dist.expect("fresh implies discovered");
            for s in 0..ctx.degree() {
                ctx.send(s, d);
            }
        } else {
            ctx.vote_halt();
        }
    }
}

/// Sequential reference BFS over the bipartite graph (global vertex ids:
/// `0..n_left` left, then right offset by `n_left`). Returns `None` for
/// unreachable vertices.
pub fn bfs_distances(
    g: &Bipartite,
    left_sources: &[bool],
    right_sources: &[bool],
) -> Vec<Option<u32>> {
    let nl = g.n_left();
    let n = g.n();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for (u, &s) in left_sources.iter().enumerate() {
        if s {
            dist[u] = Some(0);
            queue.push_back(u);
        }
    }
    for (v, &s) in right_sources.iter().enumerate() {
        if s {
            dist[nl + v] = Some(0);
            queue.push_back(nl + v);
        }
    }
    while let Some(x) = queue.pop_front() {
        let d = dist[x].expect("queued implies discovered");
        let push = |y: usize,
                    dist: &mut Vec<Option<u32>>,
                    queue: &mut std::collections::VecDeque<usize>| {
            if dist[y].is_none() {
                dist[y] = Some(d + 1);
                queue.push_back(y);
            }
        };
        if x < nl {
            for &v in g.left_neighbors(x as u32) {
                push(nl + v as usize, &mut dist, &mut queue);
            }
        } else {
            for &u in g.right_neighbors((x - nl) as u32) {
                push(u as usize, &mut dist, &mut queue);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalEngine;
    use sparse_alloc_graph::generators::{grid, union_of_spanning_trees};

    fn check_against_reference(g: &Bipartite, left_sources: Vec<bool>, right_sources: Vec<bool>) {
        let reference = bfs_distances(g, &left_sources, &right_sources);
        let program = BfsProgram {
            left_sources,
            right_sources,
        };
        let res = LocalEngine::new(g).run(&program, g.n() + 2);
        assert!(res.metrics.halted, "BFS should quiesce");
        let nl = g.n_left();
        for (u, state) in res.left_states.iter().enumerate() {
            assert_eq!(state.dist, reference[u], "left {u}");
        }
        for (v, state) in res.right_states.iter().enumerate() {
            assert_eq!(state.dist, reference[nl + v], "right {v}");
        }
    }

    #[test]
    fn single_source_on_tree() {
        let g = union_of_spanning_trees(30, 25, 1, 1, 4).graph;
        let mut ls = vec![false; 30];
        ls[0] = true;
        check_against_reference(&g, ls, vec![false; 25]);
    }

    #[test]
    fn multi_source_on_grid() {
        let g = grid(9, 7, 1).graph;
        let mut ls = vec![false; g.n_left()];
        let mut rs = vec![false; g.n_right()];
        ls[0] = true;
        ls[g.n_left() - 1] = true;
        rs[g.n_right() / 2] = true;
        check_against_reference(&g, ls, rs);
    }

    #[test]
    fn unreachable_stay_none() {
        // Two components; source only in the first.
        let mut b = sparse_alloc_graph::BipartiteBuilder::new(4, 4);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        b.add_edge(2, 1); // second component
        b.add_edge(3, 2);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let mut ls = vec![false; 4];
        ls[0] = true;
        check_against_reference(&g, ls, vec![false; 4]);
    }

    #[test]
    fn rounds_close_to_eccentricity() {
        // On a path (grid w×1), BFS from one end needs ~w rounds.
        let g = grid(21, 1, 1).graph;
        let mut ls = vec![false; g.n_left()];
        ls[0] = true; // cell (0,0) is the first left vertex
        let program = BfsProgram {
            left_sources: ls,
            right_sources: vec![false; g.n_right()],
        };
        let res = LocalEngine::new(&g).run(&program, 1000);
        assert!(res.metrics.halted);
        assert!(
            (20..=23).contains(&res.metrics.rounds),
            "rounds = {}",
            res.metrics.rounds
        );
    }
}

//! Two-round neighborhood aggregation: each vertex computes the sum of its
//! neighbors' degrees. The minimal non-trivial "aggregate over the
//! neighborhood" pattern — the same shape as one half-round of the paper's
//! Algorithm 1.

use sparse_alloc_graph::{Bipartite, Side};

use crate::program::{LocalProgram, VertexCtx};

/// Computes `Σ_{w ∈ N(v)} deg(w)` at every vertex in two rounds.
pub struct NeighborDegreeSum;

impl LocalProgram for NeighborDegreeSum {
    type State = u64;
    type Msg = u64;

    fn init(&self, _: &Bipartite, _: Side, _: u32) -> u64 {
        0
    }

    fn round(&self, ctx: &mut VertexCtx<'_, u64>, state: &mut u64) {
        match ctx.round() {
            0 => {
                let d = ctx.degree() as u64;
                for s in 0..ctx.degree() {
                    ctx.send(s, d);
                }
            }
            1 => {
                *state = ctx.inbox().map(|(_, &m)| m).sum();
                ctx.vote_halt();
            }
            _ => ctx.vote_halt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalEngine;
    use sparse_alloc_graph::generators::random_bipartite;

    #[test]
    fn matches_direct_computation() {
        let g = random_bipartite(40, 30, 150, 1, 6).graph;
        let res = LocalEngine::new(&g).run(&NeighborDegreeSum, 10);
        assert!(res.metrics.halted);
        assert_eq!(res.metrics.rounds, 2);
        for u in 0..g.n_left() as u32 {
            let expect: u64 = g
                .left_neighbors(u)
                .iter()
                .map(|&v| g.right_degree(v) as u64)
                .sum();
            assert_eq!(res.left_states[u as usize], expect, "left {u}");
        }
        for v in 0..g.n_right() as u32 {
            let expect: u64 = g
                .right_neighbors(v)
                .iter()
                .map(|&u| g.left_degree(u) as u64)
                .sum();
            assert_eq!(res.right_states[v as usize], expect, "right {v}");
        }
    }

    #[test]
    fn message_volume_is_two_m() {
        let g = random_bipartite(20, 20, 80, 1, 2).graph;
        let res = LocalEngine::new(&g).run(&NeighborDegreeSum, 10);
        // Round 0 sends on every directed edge once.
        assert_eq!(res.metrics.messages_per_round[0], 2 * g.m() as u64);
        assert_eq!(res.metrics.messages_per_round[1], 0);
    }
}

//! Reference vertex programs.
//!
//! These serve three purposes: they validate the engine against independent
//! sequential implementations, they document the programming model, and the
//! experiment suite uses [`bfs`] to measure engine round throughput.
//! [`proportional`] is Algorithm 1 expressed as pure message passing,
//! cross-validated against the direct solver in `sparse-alloc-core`.

pub mod bfs;
pub mod degree;
pub mod proportional;

pub use bfs::{bfs_distances, BfsProgram};
pub use degree::NeighborDegreeSum;
pub use proportional::ProportionalProgram;

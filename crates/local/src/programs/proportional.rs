//! Algorithm 1 as a pure message-passing LOCAL program.
//!
//! The hand-optimized solver in `sparse-alloc-core` computes the two
//! aggregation passes directly on CSR arrays. This program implements the
//! *same* algorithm through the engine's per-edge mailboxes, exactly as a
//! LOCAL-model processor would run it:
//!
//! * engine round `2r`   — every `v ∈ R` applies the `(1+ε)` update from
//!   the previous round's replies (for `r ≥ 1`) and sends `β_v` to all
//!   neighbors;
//! * engine round `2r+1` — every `u ∈ L` replies with
//!   `β_u = Σ_{v∈N_u} β_v` on all its edges; `v` will read those replies
//!   next round to compute `alloc_v = β_v · Σ_u 1/β_u`.
//!
//! One algorithm round costs two engine rounds (the paper's §5 notes the
//! two aggregation directions explicitly). The `sparse-alloc-core` test
//! suite asserts that this program's final β-levels equal the direct
//! solver's — the evidence that the engine faithfully implements
//! LOCAL-model semantics.
//!
//! Numerics: β values travel as raw `f64` (`(1+ε)^level`), so this program
//! targets the moderate-`τ` regime of cross-validation tests, not the
//! absolute-level drift the production solver's normalized arithmetic
//! handles.

use sparse_alloc_graph::{Bipartite, Side};

use crate::program::{LocalProgram, VertexCtx};

/// Per-vertex state: right vertices track their β-level; left vertices are
/// stateless relays (level stays 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropState {
    /// Integer β-level (meaningful on the right side).
    pub level: i64,
}

/// Algorithm 1 over the message engine. Runs `tau` algorithm rounds
/// (`2·tau + 1` engine rounds) and then halts.
///
/// A LOCAL processor knows its own part of the input, so the right-side
/// capacities are part of the program's input data.
pub struct ProportionalProgram {
    /// The `(1+ε)` step parameter.
    pub eps: f64,
    /// Algorithm rounds to run.
    pub tau: usize,
    /// `C_v` per right vertex (the processor-local input).
    pub capacities: Vec<u64>,
}

impl ProportionalProgram {
    /// Build from a graph (copies its capacity vector).
    pub fn for_graph(g: &Bipartite, eps: f64, tau: usize) -> Self {
        ProportionalProgram {
            eps,
            tau,
            capacities: g.capacities().to_vec(),
        }
    }

    fn beta(&self, level: i64) -> f64 {
        (1.0 + self.eps).powi(level as i32)
    }
}

impl LocalProgram for ProportionalProgram {
    type State = PropState;
    type Msg = f64;

    fn init(&self, _: &Bipartite, _: Side, _: u32) -> PropState {
        PropState { level: 0 }
    }

    fn round(&self, ctx: &mut VertexCtx<'_, f64>, state: &mut PropState) {
        let engine_round = ctx.round();
        // Engine rounds 0, 2, …, 2τ are right-side rounds (update + send);
        // 1, 3, …, 2τ−1 are left-side reply rounds. The final right-side
        // round 2τ only applies the last update, sends nothing.
        if engine_round > 2 * self.tau {
            ctx.vote_halt();
            return;
        }
        match (ctx.side(), engine_round % 2) {
            (Side::Right, 0) => {
                if engine_round >= 2 {
                    // Replies carry β_u; alloc_v = Σ_u β_v/β_u.
                    let beta_v = self.beta(state.level);
                    let alloc: f64 = ctx.inbox().map(|(_, &beta_u)| beta_v / beta_u).sum();
                    let c = self.capacities[ctx.id() as usize] as f64;
                    if alloc <= c / (1.0 + self.eps) {
                        state.level += 1;
                    } else if alloc >= c * (1.0 + self.eps) {
                        state.level -= 1;
                    }
                }
                if engine_round < 2 * self.tau {
                    let beta_v = self.beta(state.level);
                    for s in 0..ctx.degree() {
                        ctx.send(s, beta_v);
                    }
                } else {
                    ctx.vote_halt();
                }
            }
            (Side::Left, 1) => {
                let beta_u: f64 = ctx.inbox().map(|(_, &b)| b).sum();
                if beta_u > 0.0 {
                    for s in 0..ctx.degree() {
                        ctx.send(s, beta_u);
                    }
                }
            }
            _ => {
                if ctx.side() == Side::Left && engine_round == 2 * self.tau {
                    ctx.vote_halt();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalEngine;
    use sparse_alloc_graph::generators::star;

    #[test]
    fn star_center_level_sinks() {
        // Star with 8 leaves, capacity 2: the center is over-allocated
        // (alloc = 8 at round 1), so its β must fall every round.
        let g = star(8, 2).graph;
        let tau = 5;
        let program = ProportionalProgram::for_graph(&g, 0.5, tau);
        let res = LocalEngine::new(&g).run(&program, 2 * tau + 2);
        assert_eq!(res.right_states[0].level, -(tau as i64));
        assert!(res.metrics.halted);
    }

    #[test]
    fn engine_round_budget_is_two_per_algorithm_round() {
        let g = star(4, 1).graph;
        let tau = 3;
        let program = ProportionalProgram::for_graph(&g, 0.5, tau);
        let res = LocalEngine::new(&g).run(&program, 100);
        assert!(res.metrics.halted);
        assert!(
            res.metrics.rounds <= 2 * tau + 2,
            "rounds {}",
            res.metrics.rounds
        );
    }

    #[test]
    fn under_allocated_vertex_rises() {
        // One leaf, capacity 5: alloc = 1 ≤ 5/1.5 ⇒ level rises each round.
        let g = star(1, 5).graph;
        let tau = 4;
        let program = ProportionalProgram::for_graph(&g, 0.5, tau);
        let res = LocalEngine::new(&g).run(&program, 100);
        assert_eq!(res.right_states[0].level, tau as i64);
    }
}

//! Round and message accounting for LOCAL executions.

/// Metrics accumulated by a [`crate::LocalEngine`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total messages sent across all rounds.
    pub messages: u64,
    /// Messages sent per round (length = `rounds`).
    pub messages_per_round: Vec<u64>,
    /// Whether the run ended because every vertex voted to halt (as opposed
    /// to hitting the round limit).
    pub halted: bool,
}

impl Metrics {
    /// Peak per-round message volume.
    pub fn peak_messages(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages per round (0 if no rounds ran).
    pub fn mean_messages(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let m = Metrics {
            rounds: 3,
            messages: 60,
            messages_per_round: vec![10, 30, 20],
            halted: true,
        };
        assert_eq!(m.peak_messages(), 30);
        assert!((m.mean_messages() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::default();
        assert_eq!(m.peak_messages(), 0);
        assert_eq!(m.mean_messages(), 0.0);
    }
}

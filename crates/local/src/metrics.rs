//! Round and message accounting for LOCAL executions.
//!
//! The type itself lives in the workspace observability crate as
//! [`sparse_alloc_obs::RoundMetrics`], so the whole workspace shares one
//! metrics vocabulary (see `crates/obs`); this module re-exports it
//! under the name this crate has always used.

pub use sparse_alloc_obs::RoundMetrics as Metrics;

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export keeps the historical construction and aggregate
    /// surface (the obs crate holds the behavioral tests).
    #[test]
    fn reexport_preserves_the_metrics_surface() {
        let m = Metrics {
            rounds: 2,
            messages: 30,
            messages_per_round: vec![10, 20],
            halted: true,
        };
        assert_eq!(m.peak_messages(), 20);
        assert!((m.mean_messages() - 15.0).abs() < 1e-12);
    }
}

//! The vertex-program abstraction: what user code implements to run on the
//! [`crate::LocalEngine`].

use sparse_alloc_graph::{Bipartite, Side};

use crate::sync_slice::SyncSlice;

/// A synchronous LOCAL-model vertex program.
///
/// The engine calls [`LocalProgram::init`] once per vertex, then
/// [`LocalProgram::round`] once per vertex per round. Within a round every
/// vertex sees only messages sent in the *previous* round (delivered
/// "at the beginning of the next round", paper §2.2) and may send at most
/// one message per incident edge (re-sending on a slot overwrites).
///
/// Execution is deterministic: vertices cannot observe scheduling order.
pub trait LocalProgram: Sync {
    /// Per-vertex state.
    type State: Send + Sync;
    /// Message payload carried along edges.
    type Msg: Send + Sync;

    /// Construct the initial state of vertex `(side, id)`.
    fn init(&self, g: &Bipartite, side: Side, id: u32) -> Self::State;

    /// Execute one synchronous round at a vertex.
    fn round(&self, ctx: &mut VertexCtx<'_, Self::Msg>, state: &mut Self::State);
}

/// Per-vertex view handed to [`LocalProgram::round`].
///
/// Neighbor *slots* index the vertex's adjacency list: slot `i` refers to
/// the `i`-th neighbor ([`VertexCtx::neighbor`]). Receiving and sending are
/// both slot-addressed, mirroring the port-numbering convention of
/// distributed computing.
pub struct VertexCtx<'a, M> {
    pub(crate) side: Side,
    pub(crate) id: u32,
    pub(crate) round: usize,
    pub(crate) neighbors: &'a [u32],
    /// Maps slot → index into `in_buf`.
    pub(crate) in_map: InMap<'a>,
    pub(crate) in_buf: &'a [Option<M>],
    pub(crate) out_base: usize,
    pub(crate) out_buf: &'a SyncSlice<'a, Option<M>>,
    pub(crate) sent: u64,
    pub(crate) halt: bool,
}

/// Incoming-slot mapping: left vertices read through a permutation
/// (edge id → right-CSR slot); right vertices read through their
/// `right_edge_ids`; both are a base-offset + per-slot index table, except
/// the left side where the in-index is contiguous in edge-id order only
/// after permutation.
pub(crate) enum InMap<'a> {
    /// `in_index(slot) = table[slot]`.
    Table(&'a [u32]),
}

impl<M> VertexCtx<'_, M> {
    /// Which side this vertex is on.
    #[inline]
    pub fn side(&self) -> Side {
        self.side
    }

    /// The vertex id within its side.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of incident edges.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The id (on the opposite side) of the neighbor at `slot`.
    #[inline]
    pub fn neighbor(&self, slot: usize) -> u32 {
        self.neighbors[slot]
    }

    /// The message delivered this round along `slot`, if any.
    #[inline]
    pub fn recv(&self, slot: usize) -> Option<&M> {
        let InMap::Table(t) = self.in_map;
        self.in_buf[t[slot] as usize].as_ref()
    }

    /// Iterate over `(slot, message)` for all non-empty incoming slots.
    pub fn inbox(&self) -> impl Iterator<Item = (usize, &M)> {
        (0..self.degree()).filter_map(move |s| self.recv(s).map(|m| (s, m)))
    }

    /// Send `msg` along `slot`, to be delivered next round. Sending twice on
    /// the same slot in one round overwrites (both sends are counted in the
    /// message metric).
    #[inline]
    pub fn send(&mut self, slot: usize, msg: M) {
        debug_assert!(slot < self.degree(), "send slot out of range");
        // SAFETY: slots `out_base..out_base + degree` belong exclusively to
        // this vertex within the current round (engine invariant).
        unsafe { self.out_buf.write(self.out_base + slot, Some(msg)) };
        self.sent += 1;
    }

    /// Vote to halt. The engine stops early in a round where *every* vertex
    /// votes to halt; the vote does not persist across rounds.
    #[inline]
    pub fn vote_halt(&mut self) {
        self.halt = true;
    }
}

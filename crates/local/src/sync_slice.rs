//! A minimal shared-mutable slice wrapper for disjoint parallel writes.
//!
//! The engine writes each vertex's outgoing mailbox slots from exactly one
//! rayon task, and slot ranges of different vertices are disjoint — the
//! standard "scatter to disjoint indices" pattern. Rust's borrow checker
//! cannot see the disjointness across an index computation, so this wrapper
//! provides the one `unsafe` escape hatch, with the invariant documented at
//! the single call site.

use std::cell::UnsafeCell;

/// A `&[UnsafeCell<T>]`-backed view allowing concurrent writes to *disjoint*
/// indices.
pub(crate) struct SyncSlice<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: `SyncSlice` only permits writes through `write`, whose contract
// requires callers to guarantee index-disjointness across threads.
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice. The returned view borrows `slice` for `'a`.
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T] → &[UnsafeCell<T>]` is sound: we have unique
        // access, and UnsafeCell<T> has the same layout as T.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SyncSlice { cells }
    }

    /// Number of elements.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No two threads may write the same `index` during the lifetime of this
    /// view, and no one may read `index` concurrently with the write.
    #[inline]
    pub(crate) unsafe fn write(&self, index: usize, value: T) {
        *self.cells[index].get() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 1024];
        {
            let view = SyncSlice::new(&mut data);
            (0..1024usize).into_par_iter().for_each(|i| {
                // SAFETY: each index is written by exactly one task.
                unsafe { view.write(i, (i * i) as u64) };
            });
        }
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i * i) as u64);
        }
    }

    #[test]
    fn disjoint_range_writes() {
        // Each task owns a contiguous range, mirroring the engine's use.
        let mut data = vec![0u32; 100];
        let ranges: Vec<std::ops::Range<usize>> = vec![0..10, 10..35, 35..35, 35..80, 80..100];
        {
            let view = SyncSlice::new(&mut data);
            ranges.into_par_iter().enumerate().for_each(|(t, r)| {
                for i in r {
                    // SAFETY: ranges are pairwise disjoint.
                    unsafe { view.write(i, t as u32 + 1) };
                }
            });
        }
        assert!(data.iter().all(|&x| x >= 1));
    }
}

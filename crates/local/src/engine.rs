//! The synchronous LOCAL-model executor.

use rayon::prelude::*;
use sparse_alloc_graph::{Bipartite, Side};

use crate::metrics::Metrics;
use crate::program::{InMap, LocalProgram, VertexCtx};
use crate::sync_slice::SyncSlice;

/// Result of a [`LocalEngine::run`].
#[derive(Debug)]
pub struct RunResult<S> {
    /// Final state of every left vertex.
    pub left_states: Vec<S>,
    /// Final state of every right vertex.
    pub right_states: Vec<S>,
    /// Round/message accounting.
    pub metrics: Metrics,
}

/// Executes [`LocalProgram`]s on a bipartite graph with synchronous-round
/// semantics and per-edge mailboxes.
///
/// # Message buffers
///
/// Left→right messages live in a buffer indexed by *edge id* (contiguous per
/// left vertex); right→left messages live in a buffer indexed by *right-CSR
/// slot* (contiguous per right vertex). Each vertex therefore writes a
/// private contiguous range, which makes the rayon-parallel scatter safe,
/// and reads through a precomputed permutation.
pub struct LocalEngine<'g> {
    g: &'g Bipartite,
    /// edge id → right-CSR slot (inverse of `right_edge_ids`).
    right_slot_of_edge: Vec<u32>,
}

impl<'g> LocalEngine<'g> {
    /// Prepare an engine for `g` (builds the edge→slot permutation, `O(m)`).
    pub fn new(g: &'g Bipartite) -> Self {
        LocalEngine {
            g,
            right_slot_of_edge: g.right_slot_of_edge(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Bipartite {
        self.g
    }

    /// Run `program` for at most `max_rounds` rounds, stopping early in any
    /// round where every vertex votes to halt.
    pub fn run<P: LocalProgram>(&self, program: &P, max_rounds: usize) -> RunResult<P::State> {
        let g = self.g;
        let m = g.m();

        let mut left_states: Vec<P::State> = (0..g.n_left() as u32)
            .into_par_iter()
            .map(|u| program.init(g, Side::Left, u))
            .collect();
        let mut right_states: Vec<P::State> = (0..g.n_right() as u32)
            .into_par_iter()
            .map(|v| program.init(g, Side::Right, v))
            .collect();

        // Double-buffered mailboxes.
        let mut l2r_prev: Vec<Option<P::Msg>> = fill_none(m);
        let mut l2r_next: Vec<Option<P::Msg>> = fill_none(m);
        let mut r2l_prev: Vec<Option<P::Msg>> = fill_none(m);
        let mut r2l_next: Vec<Option<P::Msg>> = fill_none(m);

        let mut metrics = Metrics::default();

        for round in 0..max_rounds {
            let (l2r_next_view, r2l_next_view) =
                (SyncSlice::new(&mut l2r_next), SyncSlice::new(&mut r2l_next));

            // Left phase: read r2l_prev, write l2r_next.
            let (l_sent, l_halt) = left_states
                .par_iter_mut()
                .enumerate()
                .map(|(u, state)| {
                    let u = u as u32;
                    let range = g.left_edge_range(u);
                    let mut ctx = VertexCtx {
                        side: Side::Left,
                        id: u,
                        round,
                        neighbors: g.left_neighbors(u),
                        in_map: InMap::Table(&self.right_slot_of_edge[range.clone()]),
                        in_buf: &r2l_prev,
                        out_base: range.start,
                        out_buf: &l2r_next_view,
                        sent: 0,
                        halt: false,
                    };
                    program.round(&mut ctx, state);
                    (ctx.sent, ctx.halt)
                })
                .reduce(|| (0u64, true), |a, b| (a.0 + b.0, a.1 && b.1));

            // Right phase: read l2r_prev, write r2l_next. Same round — both
            // phases see only prev-round messages.
            let (r_sent, r_halt) = right_states
                .par_iter_mut()
                .enumerate()
                .map(|(v, state)| {
                    let v = v as u32;
                    let slots = g.right_slot_range(v);
                    let mut ctx = VertexCtx {
                        side: Side::Right,
                        id: v,
                        round,
                        neighbors: g.right_neighbors(v),
                        in_map: InMap::Table(g.right_edge_ids(v)),
                        in_buf: &l2r_prev,
                        out_base: slots.start,
                        out_buf: &r2l_next_view,
                        sent: 0,
                        halt: false,
                    };
                    program.round(&mut ctx, state);
                    (ctx.sent, ctx.halt)
                })
                .reduce(|| (0u64, true), |a, b| (a.0 + b.0, a.1 && b.1));

            let sent = l_sent + r_sent;
            metrics.rounds += 1;
            metrics.messages += sent;
            metrics.messages_per_round.push(sent);

            if l_halt && r_halt {
                metrics.halted = true;
                break;
            }

            // Swap buffers; clear the new "next" for reuse.
            std::mem::swap(&mut l2r_prev, &mut l2r_next);
            std::mem::swap(&mut r2l_prev, &mut r2l_next);
            l2r_next.par_iter_mut().for_each(|s| *s = None);
            r2l_next.par_iter_mut().for_each(|s| *s = None);
        }

        RunResult {
            left_states,
            right_states,
            metrics,
        }
    }
}

fn fill_none<M>(m: usize) -> Vec<Option<M>> {
    std::iter::repeat_with(|| None).take(m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_alloc_graph::BipartiteBuilder;

    /// Every vertex sends `1` on every slot each round; state accumulates
    /// the received count. After r ≥ 2 rounds each vertex has received
    /// (r − 1) · degree (round 0 delivers nothing).
    struct CountProgram;
    impl LocalProgram for CountProgram {
        type State = u64;
        type Msg = u64;
        fn init(&self, _: &Bipartite, _: Side, _: u32) -> u64 {
            0
        }
        fn round(&self, ctx: &mut VertexCtx<'_, u64>, state: &mut u64) {
            *state += ctx.inbox().map(|(_, &m)| m).sum::<u64>();
            for s in 0..ctx.degree() {
                ctx.send(s, 1);
            }
        }
    }

    #[test]
    fn mailbox_delivery_counts() {
        let mut b = BipartiteBuilder::new(3, 2);
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 0), (2, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let engine = LocalEngine::new(&g);
        let rounds = 5;
        let res = engine.run(&CountProgram, rounds);
        assert_eq!(res.metrics.rounds, rounds);
        assert!(!res.metrics.halted);
        // messages per round = 2m (both directions on every edge).
        assert_eq!(res.metrics.messages, (rounds as u64) * 2 * g.m() as u64);
        for u in 0..g.n_left() as u32 {
            assert_eq!(
                res.left_states[u as usize],
                (rounds as u64 - 1) * g.left_degree(u) as u64
            );
        }
        for v in 0..g.n_right() as u32 {
            assert_eq!(
                res.right_states[v as usize],
                (rounds as u64 - 1) * g.right_degree(v) as u64
            );
        }
    }

    /// Round 0: left vertices send their id; right vertices store the max
    /// received id in round 1 and halt; left halts from round 1.
    struct MaxIdProgram;
    impl LocalProgram for MaxIdProgram {
        type State = Option<u32>;
        type Msg = u32;
        fn init(&self, _: &Bipartite, _: Side, _: u32) -> Option<u32> {
            None
        }
        fn round(&self, ctx: &mut VertexCtx<'_, u32>, state: &mut Option<u32>) {
            match (ctx.side(), ctx.round()) {
                (Side::Left, 0) => {
                    let id = ctx.id();
                    for s in 0..ctx.degree() {
                        ctx.send(s, id);
                    }
                }
                (Side::Right, 1) => {
                    *state = ctx.inbox().map(|(_, &m)| m).max();
                    ctx.vote_halt();
                }
                _ => ctx.vote_halt(),
            }
        }
    }

    #[test]
    fn halting_and_targeted_delivery() {
        let mut b = BipartiteBuilder::new(4, 2);
        for (u, v) in [(0u32, 0u32), (3, 0), (1, 1), (2, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let res = LocalEngine::new(&g).run(&MaxIdProgram, 100);
        assert!(res.metrics.halted);
        assert_eq!(res.metrics.rounds, 2);
        assert_eq!(res.right_states[0], Some(3));
        assert_eq!(res.right_states[1], Some(2));
    }

    /// Slot-addressed echo: each left vertex sends its slot index; each
    /// right vertex replies with the received value + 100; left checks the
    /// reply arrives on the same slot it sent on.
    struct EchoProgram;
    impl LocalProgram for EchoProgram {
        type State = Vec<u32>;
        type Msg = u32;
        fn init(&self, _: &Bipartite, _: Side, _: u32) -> Vec<u32> {
            Vec::new()
        }
        fn round(&self, ctx: &mut VertexCtx<'_, u32>, state: &mut Vec<u32>) {
            match (ctx.side(), ctx.round()) {
                (Side::Left, 0) => {
                    for s in 0..ctx.degree() {
                        ctx.send(s, s as u32);
                    }
                }
                (Side::Right, 1) => {
                    let incoming: Vec<(usize, u32)> = ctx.inbox().map(|(s, &m)| (s, m)).collect();
                    for (s, m) in incoming {
                        ctx.send(s, m + 100);
                    }
                }
                (Side::Left, 2) => {
                    *state = (0..ctx.degree())
                        .map(|s| *ctx.recv(s).expect("echo reply missing"))
                        .collect();
                    ctx.vote_halt();
                }
                _ => ctx.vote_halt(),
            }
        }
    }

    #[test]
    fn slot_addressing_round_trips() {
        let mut b = BipartiteBuilder::new(3, 3);
        for (u, v) in [(0u32, 0u32), (0, 1), (0, 2), (1, 1), (2, 0), (2, 2)] {
            b.add_edge(u, v);
        }
        let g = b.build_with_uniform_capacity(1).unwrap();
        let res = LocalEngine::new(&g).run(&EchoProgram, 10);
        for u in 0..g.n_left() as u32 {
            let expect: Vec<u32> = (0..g.left_degree(u)).map(|s| s as u32 + 100).collect();
            assert_eq!(res.left_states[u as usize], expect, "left {u}");
        }
    }

    #[test]
    fn zero_rounds() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0);
        let g = b.build_with_uniform_capacity(1).unwrap();
        let res = LocalEngine::new(&g).run(&CountProgram, 0);
        assert_eq!(res.metrics.rounds, 0);
        assert_eq!(res.metrics.messages, 0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Same program, 1-thread pool vs default pool: identical outcome.
        let mut b = BipartiteBuilder::new(50, 40);
        for i in 0..50u32 {
            b.add_edge(i, i % 40);
            b.add_edge(i, (i * 7 + 3) % 40);
        }
        let g = b.build_with_uniform_capacity(2).unwrap();
        let res_par = LocalEngine::new(&g).run(&CountProgram, 7);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let res_seq = pool.install(|| LocalEngine::new(&g).run(&CountProgram, 7));
        assert_eq!(res_par.left_states, res_seq.left_states);
        assert_eq!(res_par.right_states, res_seq.right_states);
        assert_eq!(res_par.metrics, res_seq.metrics);
    }
}

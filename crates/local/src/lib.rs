//! LOCAL-model runtime: synchronous vertex programs on bipartite graphs.
//!
//! The LOCAL model (paper §2.2) places a processor at every vertex;
//! computation proceeds in synchronous rounds, and in each round a vertex
//! may send one message along each incident edge. Messages sent in round
//! `r` are delivered at the beginning of round `r + 1`.
//!
//! This crate provides:
//!
//! * [`LocalProgram`] — the vertex-program trait (state + message types,
//!   an `init` and a `round` callback),
//! * [`LocalEngine`] — the executor: double-buffered per-edge mailboxes,
//!   rayon-parallel vertex execution, deterministic regardless of thread
//!   count, with round/message [`Metrics`],
//! * [`programs`] — reference programs (BFS, degree aggregation) used for
//!   engine validation and as examples.
//!
//! The paper's Algorithm 1 has a hand-optimized implementation in
//! `sparse-alloc-core`; the engine-based version in
//! [`programs::proportional`] is cross-validated against it in that
//! crate's tests, which is the evidence that the engine faithfully
//! implements LOCAL-model semantics.
//!
//! # Example
//!
//! ```
//! use sparse_alloc_local::{LocalEngine, programs::BfsProgram};
//! use sparse_alloc_graph::generators::grid;
//!
//! let g = grid(8, 8, 1).graph;
//! let mut left_sources = vec![false; g.n_left()];
//! left_sources[0] = true;
//! let program = BfsProgram { left_sources, right_sources: vec![false; g.n_right()] };
//!
//! let result = LocalEngine::new(&g).run(&program, 100);
//! assert!(result.metrics.halted);
//! // Every vertex of the connected grid was reached.
//! assert!(result.left_states.iter().all(|s| s.dist.is_some()));
//! assert!(result.right_states.iter().all(|s| s.dist.is_some()));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod program;
pub mod programs;
mod sync_slice;

pub use engine::LocalEngine;
pub use metrics::Metrics;
pub use program::{LocalProgram, VertexCtx};

//! The flight recorder: a fixed-size ring of recent protocol events.
//!
//! Every transport endpoint keeps one of these and notes each frame
//! header it sends or receives (plus injected faults and decode errors).
//! Recording is an O(1) slot write into storage allocated at
//! construction — it never grows, so it can sit on the wire hot path —
//! and on any transport/serving fault the mesh's rings are rendered
//! into a human-readable dump naming the failing peer and phase.

/// What a flight-recorder entry witnessed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A frame was put on the wire.
    Sent,
    /// A frame was taken off the wire and verified.
    Received,
    /// A wire fault: injected, detected on decode, or a dead channel.
    Fault,
}

impl FlightKind {
    fn tag(self) -> &'static str {
        match self {
            FlightKind::Sent => "send",
            FlightKind::Received => "recv",
            FlightKind::Fault => "FAULT",
        }
    }
}

/// One recorded protocol event: a frame header plus direction, or a
/// fault with a static describing note. `Copy` and fixed-size, so the
/// ring never allocates after construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Remote endpoint id (the worker the frame went to / came from).
    pub peer: u32,
    /// Direction or fault marker.
    pub kind: FlightKind,
    /// Protocol phase id from the frame header.
    pub phase: u16,
    /// Epoch stamp from the frame header.
    pub epoch: u64,
    /// Per-direction sequence number from the frame header.
    pub seq: u64,
    /// Payload length in bytes (0 for faults without a frame).
    pub len: u32,
    /// Static note: `""` for plain frames, a short cause for faults.
    pub note: &'static str,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s (oldest overwritten).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Vec<FlightEvent>,
    cap: usize,
    /// Total events ever noted; `head = written % cap` is the next slot.
    written: u64,
}

/// Default ring capacity per endpoint.
pub const DEFAULT_RING: usize = 64;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING)
    }
}

impl FlightRecorder {
    /// A recorder holding the last `cap` events (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(cap),
            cap,
            written: 0,
        }
    }

    /// Note one event. O(1), allocation-free once the ring is full.
    #[inline]
    pub fn note(&mut self, ev: FlightEvent) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            let slot = (self.written % self.cap as u64) as usize;
            self.ring[slot] = ev;
        }
        self.written += 1;
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever noted (including overwritten ones).
    pub fn total_noted(&self) -> u64 {
        self.written
    }

    /// Events oldest → newest.
    pub fn iter_recent(&self) -> impl Iterator<Item = &FlightEvent> {
        let head = (self.written % self.cap as u64) as usize;
        let (tail, front) = if self.ring.len() < self.cap {
            (&self.ring[..0], &self.ring[..])
        } else {
            (&self.ring[head..], &self.ring[..head])
        };
        tail.iter().chain(front.iter())
    }

    /// Render the ring into dump lines, mapping protocol phase ids to
    /// names via `phase_name` (the transport layer does not know the
    /// serving protocol's vocabulary; its caller does).
    pub fn dump_with(&self, phase_name: impl Fn(u16) -> &'static str, out: &mut String) {
        use std::fmt::Write;
        if self.written > self.ring.len() as u64 {
            let _ = writeln!(
                out,
                "  … {} earlier events overwritten",
                self.written - self.ring.len() as u64
            );
        }
        for ev in self.iter_recent() {
            let _ = write!(
                out,
                "  [{:5}] peer {:>2} {:>5} phase {} (#{}) epoch {} seq {} len {}",
                ev.seq,
                ev.peer,
                ev.kind.tag(),
                phase_name(ev.phase),
                ev.phase,
                ev.epoch,
                ev.seq,
                ev.len
            );
            if !ev.note.is_empty() {
                let _ = write!(out, "  — {}", ev.note);
            }
            let _ = writeln!(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> FlightEvent {
        FlightEvent {
            peer: 1,
            kind: FlightKind::Sent,
            phase: 3,
            epoch: 0,
            seq,
            len: 8,
            note: "",
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_in_order() {
        let mut r = FlightRecorder::new(4);
        for s in 0..10 {
            r.note(ev(s));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_noted(), 10);
        let seqs: Vec<u64> = r.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_ring_iterates_in_insertion_order() {
        let mut r = FlightRecorder::new(8);
        for s in 0..3 {
            r.note(ev(s));
        }
        let seqs: Vec<u64> = r.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn dump_names_faults_and_notes_overwrites() {
        let mut r = FlightRecorder::new(2);
        r.note(ev(0));
        r.note(ev(1));
        r.note(FlightEvent {
            peer: 7,
            kind: FlightKind::Fault,
            phase: 5,
            epoch: 2,
            seq: 2,
            len: 0,
            note: "checksum mismatch",
        });
        let mut out = String::new();
        r.dump_with(|p| if p == 5 { "net_route" } else { "?" }, &mut out);
        assert!(out.contains("1 earlier events overwritten"));
        assert!(out.contains("peer  7 FAULT phase net_route (#5)"));
        assert!(out.contains("checksum mismatch"));
    }
}

//! Fixed-size log₂-bucketed histograms.
//!
//! Bucket 0 holds the value 0; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b)`. 64 buckets cover the full `u64` range, so
//! [`Histogram::record`] is branch + increment — no allocation, ever —
//! which is what lets the registry sit on the serving hot path.

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram with exact count/sum/min/max sidecars.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive-exclusive value range `[lo, hi)` of bucket `b` (bucket 0 is
/// the singleton `{0}`, reported as `[0, 1)`).
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket {b} out of range");
    if b == 0 {
        (0, 1)
    } else if b == BUCKETS - 1 {
        (1u64 << (b - 1), u64::MAX)
    } else {
        (1u64 << (b - 1), 1u64 << b)
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one; the result is identical to
    /// having recorded both observation streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`): linear interpolation at
    /// the `⌈q·count⌉`-th observation's rank *within* its bucket
    /// (uniform-in-bucket assumption), clamped to the exact recorded
    /// `[min, max]`. The old bucket-upper-bound answer overstated
    /// percentiles by up to ~2× for wide power-of-two buckets — e.g. p50
    /// of `1..=100` reported 63; interpolation reports 51 (exact: 50).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(b);
                // 1-based rank within this bucket; pos == c lands on the
                // bucket's upper edge (then the [min, max] clamp applies).
                let pos = rank - (seen - c);
                let est = lo + (((hi - lo) as u128 * pos as u128) / c as u128) as u64;
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Occupied buckets as `(lo, hi, count)` triples, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = bucket_bounds(b);
                (lo, hi, c)
            })
    }

    /// Rebuild a histogram from `(lo, hi, count)` triples plus exact
    /// sidecars, as serialized in a trace stream.
    pub fn from_parts(buckets: &[(u64, u64, u64)], sum: u64, min: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for &(lo, _, c) in buckets {
            let b = bucket_of(lo);
            h.counts[b] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket; 1 opens bucket 1; every 2^k opens bucket k+1.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        for k in 0..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k + 1, "2^{k} must open bucket {}", k + 1);
            if k >= 1 {
                assert_eq!(bucket_of(v - 1), k, "2^{k}-1 must close bucket {k}");
            }
            let (lo, hi) = bucket_bounds(k + 1);
            assert_eq!(lo, v);
            assert!(hi > lo);
        }
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_lands_in_the_documented_bucket() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // (lo, hi, count): 0; 1; [2,4)x2; [4,8); [512,1024); [1024,2048); top.
        assert_eq!(
            buckets,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 4, 2),
                (4, 8, 1),
                (512, 1024, 1),
                (1024, 2048, 1),
                (1u64 << 63, u64::MAX, 1),
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let xs = [3u64, 0, 17, 900, 900, 5];
        let ys = [1u64, 64, 63, 4096];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &xs {
            a.record(v);
            whole.record(v);
        }
        for &v in &ys {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket_and_clamp() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Exact p100 = 100; the interpolated answer may not exceed max.
        assert_eq!(h.quantile(1.0), 100);
        // p50 of 1..=100 is 50: rank 50 is the 19th of 32 values in
        // bucket [32,64), so 32 + 32·19/32 = 51 — not the bucket's upper
        // bound 63 the pre-interpolation quantile reported.
        assert_eq!(h.quantile(0.5), 51);
        assert!(h.quantile(0.99) >= 64);
        assert_eq!(Histogram::new().quantile(0.5), 0);
        // Quantiles are monotone in q.
        let mut prev = 0;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            assert!(v >= prev, "quantile must not decrease (q={})", i);
            prev = v;
        }
        // A uniform stream inside one wide bucket interpolates through
        // it instead of pinning every percentile to the upper bound.
        let mut w = Histogram::new();
        for v in 1024..1024 + 512u64 {
            w.record(v);
        }
        // Exact p25 is 1151; interpolating across the full [1024, 2048)
        // bucket estimates 1280 — versus 2047 from the old upper-bound
        // rule, which overstated by nearly 2×.
        let p25 = w.quantile(0.25);
        assert_eq!(p25, 1280, "rank 128 of 512 across a width-1024 bucket");
        // Single observation: every quantile is that observation.
        let mut one = Histogram::new();
        one.record(77);
        assert_eq!(one.quantile(0.01), 77);
        assert_eq!(one.quantile(0.99), 77);
    }

    #[test]
    fn from_parts_round_trips_through_triples() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 70, 900] {
            h.record(v);
        }
        let triples: Vec<_> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&triples, h.sum(), h.min(), h.max());
        assert_eq!(back, h);
    }
}

//! The workspace metrics vocabulary: counters, distributions, and
//! per-phase latency histograms behind one allocation-free registry.
//!
//! Everything is backed by fixed arrays indexed by small enums, so a
//! hot-path update is an array index plus an integer add — the same
//! "pre-size once, never allocate while serving" discipline as
//! `dynamic::stamp`. Export (iterating names, producing snapshots) is
//! the only place that allocates.

use crate::hist::Histogram;

/// Monotonic counters the engines bump on the serving hot path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Augmenting-walk expansions spent by eager repair searches.
    WalkExpansions,
    /// Eager searches the visit cap cut off before they found a walk
    /// (deferred to the epoch sweep).
    SearchCapHits,
    /// Expansions spent by per-epoch certificate sweeps.
    SweepExpansions,
    /// Augmenting walks that succeeded (matching grew or rewired).
    Augmentations,
    /// Matched clients evicted by capacity-shrink repairs.
    Evictions,
    /// Update balls escalated to a global (whole-graph) wave.
    Escalations,
    /// Updates routed to owner shards by the batch scheduler.
    RoutedUpdates,
    /// Simulated words handed off between shards by repair waves.
    HandoffWords,
    /// Frames put on the wire by the networked engine.
    FramesSent,
    /// Frames taken off the wire by the networked engine.
    FramesReceived,
    /// Bytes put on the wire by the networked engine.
    BytesSent,
    /// Bytes taken off the wire by the networked engine.
    BytesReceived,
    /// Transient wire operations retried in place (recv timeouts the
    /// supervisor absorbed with backoff instead of failing the batch).
    NetRetries,
    /// Shard workers respawned on a fresh channel after a fatal fault.
    NetRespawns,
    /// Bytes re-scattered or replayed to re-initialize respawned
    /// workers (the wire cost of recovery).
    ReplayedBytes,
    /// Bytes appended to the write-ahead log.
    WalBytes,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 16] = [
        Counter::WalkExpansions,
        Counter::SearchCapHits,
        Counter::SweepExpansions,
        Counter::Augmentations,
        Counter::Evictions,
        Counter::Escalations,
        Counter::RoutedUpdates,
        Counter::HandoffWords,
        Counter::FramesSent,
        Counter::FramesReceived,
        Counter::BytesSent,
        Counter::BytesReceived,
        Counter::NetRetries,
        Counter::NetRespawns,
        Counter::ReplayedBytes,
        Counter::WalBytes,
    ];

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::WalkExpansions => "walk_expansions",
            Counter::SearchCapHits => "search_cap_hits",
            Counter::SweepExpansions => "sweep_expansions",
            Counter::Augmentations => "augmentations",
            Counter::Evictions => "evictions",
            Counter::Escalations => "escalations",
            Counter::RoutedUpdates => "routed_updates",
            Counter::HandoffWords => "handoff_words",
            Counter::FramesSent => "frames_sent",
            Counter::FramesReceived => "frames_received",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesReceived => "bytes_received",
            Counter::NetRetries => "net_retries",
            Counter::NetRespawns => "net_respawns",
            Counter::ReplayedBytes => "replayed_bytes",
            Counter::WalBytes => "wal_bytes",
        }
    }
}

/// Distributions the engines observe per event (log₂-bucketed).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Width (ball count) of each conflict-free repair wave.
    WaveWidth,
    /// Staged footprint size (vertices) of each scheduled update ball.
    BallSize,
    /// Eager-search radius each repaired update actually needed.
    FootprintRadius,
    /// Vertices visited by each per-epoch certificate sweep.
    SweepSize,
    /// Updates per applied batch.
    BatchSize,
}

impl Dist {
    /// Every distribution, in export order.
    pub const ALL: [Dist; 5] = [
        Dist::WaveWidth,
        Dist::BallSize,
        Dist::FootprintRadius,
        Dist::SweepSize,
        Dist::BatchSize,
    ];

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Dist::WaveWidth => "wave_width",
            Dist::BallSize => "ball_size",
            Dist::FootprintRadius => "footprint_radius",
            Dist::SweepSize => "sweep_size",
            Dist::BatchSize => "batch_size",
        }
    }
}

/// The phase vocabulary. **Labels are the ledger's labels**
/// (`mpc::shard::labels`): a span in a trace and a `RoundRecord` in the
/// simulated cost model that describe the same work carry the same
/// string (asserted by a cross-crate test in `sparse-alloc-mpc`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Conflict-scheduling an update batch into waves.
    BatchSchedule,
    /// Routing an update batch to the shards owning its balls.
    RouteUpdates,
    /// One conflict-free parallel repair wave.
    RepairWave,
    /// Certificate sweep + cross-shard migration commit.
    SweepCommit,
    /// Per-shard resident state observation (census).
    ShardState,
    /// Writing a warm-restart snapshot.
    Checkpoint,
    /// Restoring from a snapshot.
    Restore,
    /// Networked route phase (scatter + echo) on the wire.
    NetRoute,
    /// Networked commit phase (delta shipping) on the wire.
    NetCommit,
    /// Networked census + summary phases on the wire.
    NetCensus,
    /// Networked initial state scatter on the wire.
    NetInit,
    /// Worker recovery on the wire: respawn, state re-scatter, replay.
    NetRecover,
    /// Peer-to-peer repair wave on the wire: footprint dispatch +
    /// outcome/flip acknowledgements over the coordinator spokes.
    NetWave,
    /// Cross-shard walk handoffs on worker↔worker channels.
    NetHandoff,
}

impl Phase {
    /// Every phase, in export order.
    pub const ALL: [Phase; 14] = [
        Phase::BatchSchedule,
        Phase::RouteUpdates,
        Phase::RepairWave,
        Phase::SweepCommit,
        Phase::ShardState,
        Phase::Checkpoint,
        Phase::Restore,
        Phase::NetRoute,
        Phase::NetCommit,
        Phase::NetCensus,
        Phase::NetInit,
        Phase::NetRecover,
        Phase::NetWave,
        Phase::NetHandoff,
    ];

    /// The ledger label this phase shares with the simulated cost model.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BatchSchedule => "batch_schedule",
            Phase::RouteUpdates => "route_updates",
            Phase::RepairWave => "repair_wave",
            Phase::SweepCommit => "sweep_commit",
            Phase::ShardState => "shard_state",
            Phase::Checkpoint => "checkpoint",
            Phase::Restore => "restore",
            Phase::NetRoute => "net_route",
            Phase::NetCommit => "net_commit",
            Phase::NetCensus => "net_census",
            Phase::NetInit => "net_init",
            Phase::NetRecover => "net_recover",
            Phase::NetWave => "net_wave",
            Phase::NetHandoff => "net_handoff",
        }
    }

    /// Inverse of [`Phase::label`]; `None` for a name outside the
    /// vocabulary (how `salloc report` flags a foreign trace).
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.label() == label)
    }
}

/// The allocation-free metrics registry both engines carry.
///
/// `enabled` gates every record call (a single predictable branch); the
/// disabled registry is behaviorally the pre-observability engine, which
/// is what e19's ≤ 5 % overhead gate measures against.
#[derive(Clone, Debug)]
pub struct Registry {
    enabled: bool,
    counters: [u64; Counter::ALL.len()],
    dists: [Histogram; Dist::ALL.len()],
    phases: [Histogram; Phase::ALL.len()],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry (the shipped default).
    pub fn new() -> Self {
        Registry {
            enabled: true,
            counters: [0; Counter::ALL.len()],
            dists: std::array::from_fn(|_| Histogram::new()),
            phases: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// A registry whose record calls are no-ops (seed-equivalent path).
    pub fn disabled() -> Self {
        let mut r = Registry::new();
        r.enabled = false;
        r
    }

    /// Toggle recording at runtime (used by the e19 overhead A/B).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether record calls are live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn inc(&mut self, c: Counter, n: u64) {
        if self.enabled {
            self.counters[c as usize] += n;
        }
    }

    /// Record one observation of a distribution.
    #[inline]
    pub fn observe(&mut self, d: Dist, v: u64) {
        if self.enabled {
            self.dists[d as usize].record(v);
        }
    }

    /// Record a measured phase latency in nanoseconds.
    #[inline]
    pub fn phase_ns(&mut self, p: Phase, ns: u64) {
        if self.enabled {
            self.phases[p as usize].record(ns);
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Distribution histogram.
    pub fn dist(&self, d: Dist) -> &Histogram {
        &self.dists[d as usize]
    }

    /// Per-phase latency histogram (nanoseconds).
    pub fn phase(&self, p: Phase) -> &Histogram {
        &self.phases[p as usize]
    }

    /// Fold another registry into this one (counters add, histograms
    /// merge). `enabled` is untouched.
    pub fn merge(&mut self, other: &Registry) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.dists.iter_mut().zip(other.dists.iter()) {
            a.merge(b);
        }
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
    }
}

/// Wire counters of one transport endpoint, as counted by the mesh.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerWire {
    /// Worker id the coordinator-side endpoint talks to.
    pub peer: u32,
    /// Bytes sent to that worker.
    pub bytes_sent: u64,
    /// Bytes received from that worker.
    pub bytes_received: u64,
    /// Frames sent to that worker.
    pub frames_sent: u64,
    /// Frames received from that worker.
    pub frames_received: u64,
}

/// Per-peer wire counters exported by `mpc::transport::Mesh` — the one
/// source both the e21 wire-traffic report and `salloc report` read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One row per worker endpoint, ordered by worker id.
    pub peers: Vec<PeerWire>,
}

impl MetricsSnapshot {
    /// Total bytes moved in either direction across all peers.
    pub fn total_bytes(&self) -> u64 {
        self.peers
            .iter()
            .map(|p| p.bytes_sent + p.bytes_received)
            .sum()
    }

    /// Total frames moved in either direction across all peers.
    pub fn total_frames(&self) -> u64 {
        self.peers
            .iter()
            .map(|p| p.frames_sent + p.frames_received)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_and_are_unique() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("no_such_phase"), None);
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn registry_records_and_merges() {
        let mut a = Registry::new();
        a.inc(Counter::Escalations, 2);
        a.observe(Dist::WaveWidth, 7);
        a.phase_ns(Phase::RouteUpdates, 1500);
        let mut b = Registry::new();
        b.inc(Counter::Escalations, 3);
        b.observe(Dist::WaveWidth, 9);
        a.merge(&b);
        assert_eq!(a.counter(Counter::Escalations), 5);
        assert_eq!(a.dist(Dist::WaveWidth).count(), 2);
        assert_eq!(a.phase(Phase::RouteUpdates).count(), 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        r.inc(Counter::WalkExpansions, 10);
        r.observe(Dist::BallSize, 10);
        r.phase_ns(Phase::SweepCommit, 10);
        assert_eq!(r.counter(Counter::WalkExpansions), 0);
        assert!(r.dist(Dist::BallSize).is_empty());
        assert!(r.phase(Phase::SweepCommit).is_empty());
    }

    #[test]
    fn snapshot_totals() {
        let snap = MetricsSnapshot {
            peers: vec![
                PeerWire {
                    peer: 0,
                    bytes_sent: 10,
                    bytes_received: 5,
                    frames_sent: 2,
                    frames_received: 1,
                },
                PeerWire {
                    peer: 1,
                    bytes_sent: 1,
                    bytes_received: 2,
                    frames_sent: 3,
                    frames_received: 4,
                },
            ],
        };
        assert_eq!(snap.total_bytes(), 18);
        assert_eq!(snap.total_frames(), 10);
    }
}

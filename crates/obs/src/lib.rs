//! Workspace observability: one metrics vocabulary, phase tracing, and a
//! post-mortem flight recorder.
//!
//! The `mpc::Ledger` meters exactly the quantities the paper's theorems
//! bound — simulated rounds, words, and space. This crate adds the
//! *system* side of the picture without replacing that cost model:
//!
//! * [`Histogram`] — a fixed-size, log₂-bucketed histogram; recording is
//!   a few integer ops, no allocation ever.
//! * [`Registry`] — the workspace metrics vocabulary: named counters
//!   ([`Counter`]), distributions ([`Dist`]), and per-phase latency
//!   histograms keyed by [`Phase`]. Backed by fixed arrays, so the hot
//!   path never allocates (the same discipline as `dynamic::stamp`'s
//!   epoch-stamped scratch).
//! * [`Phase`] — the phase vocabulary, whose string labels are *the
//!   ledger's labels* (`mpc::shard::labels`), so a trace and the
//!   simulated cost model speak the same names.
//! * [`Tracer`] / [`Span`] — monotonic-clock phase spans emitted as a
//!   checksummed JSONL stream ([`trace`] documents the format). A
//!   disabled tracer emits zero events and allocates nothing.
//! * [`FlightRecorder`] — a fixed-size ring of recent protocol events
//!   and frame headers, kept per peer by the transport and dumped on
//!   any wire fault for post-mortem.
//! * [`RoundMetrics`] — LOCAL-model round/message accounting (re-exported
//!   by `sparse_alloc_local` as its `Metrics`).
//! * [`MetricsSnapshot`] — per-peer wire counters exported by the
//!   transport mesh, the single source for e21 and `salloc report`.

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod registry;
pub mod rounds;
pub mod trace;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use hist::Histogram;
pub use registry::{Counter, Dist, MetricsSnapshot, PeerWire, Phase, Registry};
pub use rounds::RoundMetrics;
pub use trace::{read_trace, Span, TraceEvent, Tracer};

//! Round and message accounting for LOCAL-model executions.
//!
//! This lived in `sparse-alloc-local` as its private `Metrics` type;
//! it is part of the workspace metrics vocabulary now, and that crate
//! re-exports it under the old name.

/// Metrics accumulated by a LOCAL-engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total messages sent across all rounds.
    pub messages: u64,
    /// Messages sent per round (length = `rounds`).
    pub messages_per_round: Vec<u64>,
    /// Whether the run ended because every vertex voted to halt (as opposed
    /// to hitting the round limit).
    pub halted: bool,
}

impl RoundMetrics {
    /// Peak per-round message volume.
    pub fn peak_messages(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages per round (0 if no rounds ran).
    pub fn mean_messages(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// The per-round volumes as a log₂-bucketed [`crate::Histogram`],
    /// for merging into a [`crate::Registry`]-style report.
    pub fn message_histogram(&self) -> crate::Histogram {
        let mut h = crate::Histogram::new();
        for &m in &self.messages_per_round {
            h.record(m);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let m = RoundMetrics {
            rounds: 3,
            messages: 60,
            messages_per_round: vec![10, 30, 20],
            halted: true,
        };
        assert_eq!(m.peak_messages(), 30);
        assert!((m.mean_messages() - 20.0).abs() < 1e-12);
        let h = m.message_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn empty_metrics() {
        let m = RoundMetrics::default();
        assert_eq!(m.peak_messages(), 0);
        assert_eq!(m.mean_messages(), 0.0);
        assert!(m.message_histogram().is_empty());
    }
}

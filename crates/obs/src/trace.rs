//! Phase tracing: monotonic-clock spans emitted as checksummed JSONL.
//!
//! # Trace file format
//!
//! One JSON object per line. Every line ends in a `"ck"` field holding
//! the FNV-1a-64 checksum (16 hex digits) of everything before the
//! `,"ck"` suffix — the same hash the wire frames use — so a truncated
//! or bit-flipped trace is detected line-exactly by [`read_trace`].
//!
//! Event kinds (`"ev"`):
//!
//! * `meta` — stream header: `{"ev":"meta","version":1,...}`
//! * `span` — one completed phase:
//!   `{"ev":"span","phase":"route_updates","epoch":3,"seq":17,"depth":1,
//!   "start_ns":…,"dur_ns":…,"words":…}`. `phase` is a ledger label
//!   ([`Phase::label`]), `start_ns` is monotonic time since the tracer
//!   was created, `words` the simulated words the bridged
//!   `mpc::Ledger` recorded for the same work (0 where the ledger has
//!   no row), `depth` the span-nesting depth at open, `seq` the global
//!   emission index (file order).
//! * `hist` — a serialized [`Histogram`]:
//!   `{"ev":"hist","name":"wave_width","count":…,"sum":…,"min":…,
//!   "max":…,"buckets":[[lo,hi,count],…]}`
//! * `counter` — `{"ev":"counter","name":"escalations","value":…}`
//! * `peer` — per-peer wire totals from a [`MetricsSnapshot`]:
//!   `{"ev":"peer","peer":0,"bytes_sent":…,"bytes_received":…,
//!   "frames_sent":…,"frames_received":…}`
//!
//! # Disabled path
//!
//! [`Tracer::disabled`] carries no writer, no buffer, and no shared
//! state; [`Tracer::span`] on it builds a stack-only [`Span`] and
//! [`Span::close`] only reads the clock. Zero events, zero heap
//! allocations — the property the disabled-path test pins down.

use std::io::Write;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sparse_alloc_graph::io::fnv1a64;

use crate::hist::Histogram;
use crate::registry::{Counter, Dist, MetricsSnapshot, Phase, Registry};

struct Out {
    w: Box<dyn Write + Send>,
    seq: u64,
}

struct Inner {
    origin: Instant,
    depth: AtomicU32,
    events: AtomicU64,
    out: Mutex<Out>,
}

/// Handle to a JSONL trace stream (cheap to clone; all clones feed the
/// same stream). The disabled handle is an empty shell.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

/// `Write` adapter sharing a byte buffer with the test that reads it.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Tracer {
    /// The no-op tracer: emits nothing, allocates nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Trace to a writer (takes ownership; lines are written eagerly).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Tracer {
        let t = Tracer {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                depth: AtomicU32::new(0),
                events: AtomicU64::new(0),
                out: Mutex::new(Out { w, seq: 0 }),
            })),
        };
        t.emit_line(|_| r#"{"ev":"meta","version":1"#.to_string());
        t
    }

    /// Trace to a freshly created (truncated) file, buffered.
    pub fn to_file(path: &str) -> std::io::Result<Tracer> {
        let f = std::fs::File::create(path)?;
        Ok(Tracer::to_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Trace into a shared in-memory buffer (for tests).
    pub fn in_memory() -> (Tracer, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let t = Tracer::to_writer(Box::new(SharedBuf(buf.clone())));
        (t, buf)
    }

    /// Whether this handle writes events.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of events emitted so far (always 0 when disabled).
    pub fn events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.events.load(Ordering::Relaxed))
    }

    /// Open a phase span. Always measures (the returned duration feeds
    /// the registry even when tracing is off); emits only if enabled.
    pub fn span(&self, phase: Phase, epoch: u64) -> Span {
        let (start_ns, depth) = match &self.inner {
            Some(i) => (
                i.origin.elapsed().as_nanos() as u64,
                i.depth.fetch_add(1, Ordering::Relaxed),
            ),
            None => (0, 0),
        };
        Span {
            inner: self.inner.clone(),
            phase,
            epoch,
            start: Instant::now(),
            start_ns,
            depth,
            words: 0,
        }
    }

    /// Serialize one histogram under `name`.
    pub fn emit_hist(&self, name: &str, h: &Histogram) {
        if self.inner.is_none() || h.is_empty() {
            return;
        }
        let mut buckets = String::from("[");
        for (i, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{lo},{hi},{c}]"));
        }
        buckets.push(']');
        let (count, sum, min, max) = (h.count(), h.sum(), h.min(), h.max());
        self.emit_line(|_| {
            format!(
                r#"{{"ev":"hist","name":"{name}","count":{count},"sum":{sum},"min":{min},"max":{max},"buckets":{buckets}"#
            )
        });
    }

    /// Serialize one counter value.
    pub fn emit_counter(&self, name: &str, value: u64) {
        if self.inner.is_none() {
            return;
        }
        self.emit_line(|_| format!(r#"{{"ev":"counter","name":"{name}","value":{value}"#));
    }

    /// Serialize a registry: every non-zero counter and non-empty
    /// distribution (phase latency lives in the span events).
    pub fn emit_registry(&self, reg: &Registry) {
        if self.inner.is_none() {
            return;
        }
        for c in Counter::ALL {
            if reg.counter(c) > 0 {
                self.emit_counter(c.name(), reg.counter(c));
            }
        }
        for d in Dist::ALL {
            self.emit_hist(d.name(), reg.dist(d));
        }
    }

    /// Serialize per-peer wire totals.
    pub fn emit_snapshot(&self, snap: &MetricsSnapshot) {
        if self.inner.is_none() {
            return;
        }
        for p in &snap.peers {
            let (peer, bs, br, fs, fr) = (
                p.peer,
                p.bytes_sent,
                p.bytes_received,
                p.frames_sent,
                p.frames_received,
            );
            self.emit_line(|_| {
                format!(
                    r#"{{"ev":"peer","peer":{peer},"bytes_sent":{bs},"bytes_received":{br},"frames_sent":{fs},"frames_received":{fr}"#
                )
            });
        }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        if let Some(i) = &self.inner {
            let _ = i.out.lock().unwrap().w.flush();
        }
    }

    /// Append one checksummed line. `make_body` receives the emission
    /// sequence number and returns the JSON object *without* its closing
    /// brace; the `ck` field and brace are appended here.
    fn emit_line(&self, make_body: impl FnOnce(u64) -> String) {
        let Some(i) = &self.inner else { return };
        let mut out = i.out.lock().unwrap();
        let seq = out.seq;
        out.seq += 1;
        let body = make_body(seq);
        let ck = fnv1a64(body.as_bytes());
        let _ = writeln!(out.w, "{body},\"ck\":\"{ck:016x}\"}}");
        i.events.fetch_add(1, Ordering::Relaxed);
    }
}

/// An open phase span; emits one `span` event when closed (or dropped).
pub struct Span {
    inner: Option<Arc<Inner>>,
    phase: Phase,
    epoch: u64,
    start: Instant,
    start_ns: u64,
    depth: u32,
    words: u64,
}

impl Span {
    /// Attach the simulated words the ledger recorded for this phase.
    pub fn set_words(&mut self, words: u64) {
        self.words = words;
    }

    /// Close the span, returning its measured duration in nanoseconds
    /// (returned on the disabled path too, so the caller can feed the
    /// registry from the same measurement).
    pub fn close(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        if let Some(i) = self.inner.take() {
            i.depth.fetch_sub(1, Ordering::Relaxed);
            let (phase, epoch, depth, start_ns, words) = (
                self.phase.label(),
                self.epoch,
                self.depth,
                self.start_ns,
                self.words,
            );
            Tracer { inner: Some(i) }.emit_line(|seq| {
                format!(
                    r#"{{"ev":"span","phase":"{phase}","epoch":{epoch},"seq":{seq},"depth":{depth},"start_ns":{start_ns},"dur_ns":{dur_ns},"words":{words}"#
                )
            });
        }
        dur_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.finish();
        }
    }
}

// ---------------------------------------------------------------- reader

/// One parsed trace event (see the module docs for the format).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Stream header.
    Meta {
        /// Format version.
        version: u64,
    },
    /// A completed phase span.
    Span {
        /// Ledger label of the phase.
        phase: String,
        /// Serving epoch the span belongs to.
        epoch: u64,
        /// Global emission index.
        seq: u64,
        /// Nesting depth at open.
        depth: u64,
        /// Monotonic start, ns since the tracer was created.
        start_ns: u64,
        /// Measured duration in ns.
        dur_ns: u64,
        /// Simulated words from the bridged ledger row.
        words: u64,
    },
    /// A serialized histogram.
    Hist {
        /// Metric name.
        name: String,
        /// Observation count.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Minimum observation.
        min: u64,
        /// Maximum observation.
        max: u64,
        /// `(lo, hi, count)` bucket triples.
        buckets: Vec<(u64, u64, u64)>,
    },
    /// A counter value.
    Counter {
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// Per-peer wire totals.
    Peer {
        /// Worker id.
        peer: u64,
        /// Bytes sent to the worker.
        bytes_sent: u64,
        /// Bytes received from the worker.
        bytes_received: u64,
        /// Frames sent to the worker.
        frames_sent: u64,
        /// Frames received from the worker.
        frames_received: u64,
    },
}

fn u64_field(line: &str, key: &str, lno: usize) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("line {lno}: missing field '{key}'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<u64>()
        .map_err(|_| format!("line {lno}: field '{key}' is not a number"))
}

fn str_field(line: &str, key: &str, lno: usize) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("line {lno}: missing field '{key}'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("line {lno}: unterminated string '{key}'"))?;
    Ok(rest[..end].to_string())
}

fn buckets_field(line: &str, lno: usize) -> Result<Vec<(u64, u64, u64)>, String> {
    let pat = "\"buckets\":[";
    let at = line
        .find(pat)
        .ok_or_else(|| format!("line {lno}: missing field 'buckets'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find("]]")
        .map(|i| i + 1)
        .or_else(|| if rest.starts_with(']') { Some(0) } else { None })
        .ok_or_else(|| format!("line {lno}: unterminated buckets array"))?;
    let mut triples = Vec::new();
    for part in rest[..end].split("],") {
        let nums: Vec<&str> = part
            .trim_matches(|c| c == '[' || c == ']')
            .split(',')
            .filter(|s| !s.is_empty())
            .collect();
        if nums.is_empty() {
            continue;
        }
        if nums.len() != 3 {
            return Err(format!(
                "line {lno}: bucket triple has {} fields",
                nums.len()
            ));
        }
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("line {lno}: bad bucket number '{s}'"))
        };
        triples.push((parse(nums[0])?, parse(nums[1])?, parse(nums[2])?));
    }
    Ok(triples)
}

/// Parse and checksum-verify a trace stream. Any malformed line — bad
/// checksum, missing field, unknown event — is a hard error naming the
/// line, so a corrupted trace never silently yields a partial report.
pub fn read_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let at = line
            .rfind(",\"ck\":\"")
            .ok_or_else(|| format!("line {lno}: missing checksum"))?;
        let body = &line[..at];
        let tail = &line[at + ",\"ck\":\"".len()..];
        let hex = tail
            .strip_suffix("\"}")
            .ok_or_else(|| format!("line {lno}: malformed checksum suffix"))?;
        let want =
            u64::from_str_radix(hex, 16).map_err(|_| format!("line {lno}: checksum is not hex"))?;
        let got = fnv1a64(body.as_bytes());
        if want != got {
            return Err(format!(
                "line {lno}: checksum mismatch (recorded {want:016x}, computed {got:016x}) — trace is corrupt"
            ));
        }
        let ev = str_field(body, "ev", lno)?;
        events.push(match ev.as_str() {
            "meta" => TraceEvent::Meta {
                version: u64_field(body, "version", lno)?,
            },
            "span" => TraceEvent::Span {
                phase: str_field(body, "phase", lno)?,
                epoch: u64_field(body, "epoch", lno)?,
                seq: u64_field(body, "seq", lno)?,
                depth: u64_field(body, "depth", lno)?,
                start_ns: u64_field(body, "start_ns", lno)?,
                dur_ns: u64_field(body, "dur_ns", lno)?,
                words: u64_field(body, "words", lno)?,
            },
            "hist" => TraceEvent::Hist {
                name: str_field(body, "name", lno)?,
                count: u64_field(body, "count", lno)?,
                sum: u64_field(body, "sum", lno)?,
                min: u64_field(body, "min", lno)?,
                max: u64_field(body, "max", lno)?,
                buckets: buckets_field(body, lno)?,
            },
            "counter" => TraceEvent::Counter {
                name: str_field(body, "name", lno)?,
                value: u64_field(body, "value", lno)?,
            },
            "peer" => TraceEvent::Peer {
                peer: u64_field(body, "peer", lno)?,
                bytes_sent: u64_field(body, "bytes_sent", lno)?,
                bytes_received: u64_field(body, "bytes_received", lno)?,
                frames_sent: u64_field(body, "frames_sent", lno)?,
                frames_received: u64_field(body, "frames_received", lno)?,
            },
            other => return Err(format!("line {lno}: unknown event kind '{other}'")),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PeerWire;

    fn text(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(buf.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn spans_nest_and_order_in_the_stream() {
        let (t, buf) = Tracer::in_memory();
        let outer = t.span(Phase::RouteUpdates, 1);
        let mut inner = t.span(Phase::RepairWave, 1);
        inner.set_words(42);
        let inner_ns = inner.close();
        let outer_ns = outer.close();
        assert!(outer_ns >= inner_ns);
        let after = t.span(Phase::SweepCommit, 1);
        drop(after); // drop without close still emits
        t.flush();

        let evs = read_trace(&text(&buf)).expect("clean stream parses");
        assert!(matches!(evs[0], TraceEvent::Meta { version: 1 }));
        let spans: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span {
                    phase,
                    depth,
                    start_ns,
                    dur_ns,
                    words,
                    seq,
                    ..
                } => Some((phase.clone(), *depth, *start_ns, *dur_ns, *words, *seq)),
                _ => None,
            })
            .collect();
        // Emission order = close order: inner, outer, after.
        assert_eq!(spans[0].0, "repair_wave");
        assert_eq!(spans[1].0, "route_updates");
        assert_eq!(spans[2].0, "sweep_commit");
        // Nesting: inner opened one level below outer and within its window.
        assert_eq!(spans[1].1, 0);
        assert_eq!(spans[0].1, 1);
        assert!(spans[0].2 >= spans[1].2, "inner starts after outer");
        assert!(
            spans[0].2 + spans[0].3 <= spans[1].2 + spans[1].3,
            "inner ends before outer"
        );
        // The sequential span re-opens at depth 0, later in time.
        assert_eq!(spans[2].1, 0);
        assert!(spans[2].2 >= spans[1].2 + spans[1].3);
        // Words bridged from the ledger ride on the span.
        assert_eq!(spans[0].4, 42);
        // seq is strictly increasing in file order.
        assert!(spans.windows(2).all(|w| w[0].5 < w[1].5));
        assert_eq!(t.events(), 4);
    }

    #[test]
    fn corruption_is_detected_line_exactly() {
        let (t, buf) = Tracer::in_memory();
        t.span(Phase::NetRoute, 0).close();
        t.flush();
        let mut bytes = buf.lock().unwrap().clone();
        // Flip one bit inside the second line's body.
        let second = bytes.iter().position(|&b| b == b'\n').unwrap() + 5;
        bytes[second] ^= 1;
        let err = read_trace(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
        assert!(err.contains("line 2"), "wrong line blamed: {err}");
        assert!(err.contains("checksum") || err.contains("missing"), "{err}");
    }

    #[test]
    fn hist_counter_and_peer_events_round_trip() {
        let (t, buf) = Tracer::in_memory();
        let mut reg = Registry::new();
        reg.inc(Counter::Escalations, 3);
        reg.observe(Dist::WaveWidth, 7);
        reg.observe(Dist::WaveWidth, 54);
        t.emit_registry(&reg);
        t.emit_snapshot(&MetricsSnapshot {
            peers: vec![PeerWire {
                peer: 2,
                bytes_sent: 100,
                bytes_received: 50,
                frames_sent: 4,
                frames_received: 3,
            }],
        });
        t.flush();
        let evs = read_trace(&text(&buf)).unwrap();
        assert!(evs.contains(&TraceEvent::Counter {
            name: "escalations".into(),
            value: 3
        }));
        let hist = evs
            .iter()
            .find_map(|e| match e {
                TraceEvent::Hist {
                    name,
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                } if name == "wave_width" => Some((*count, *sum, *min, *max, buckets.clone())),
                _ => None,
            })
            .expect("wave_width histogram present");
        assert_eq!(hist.0, 2);
        assert_eq!(hist.1, 61);
        assert_eq!((hist.2, hist.3), (7, 54));
        let back = Histogram::from_parts(&hist.4, hist.1, hist.2, hist.3);
        assert_eq!(back.count(), 2);
        assert!(evs.contains(&TraceEvent::Peer {
            peer: 2,
            bytes_sent: 100,
            bytes_received: 50,
            frames_sent: 4,
            frames_received: 3
        }));
    }

    #[test]
    fn disabled_tracer_emits_zero_events_and_holds_no_state() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut sp = t.span(Phase::RepairWave, 9);
        sp.set_words(1000);
        let _ns = sp.close();
        t.emit_counter("escalations", 5);
        t.emit_hist("wave_width", &{
            let mut h = Histogram::new();
            h.record(3);
            h
        });
        t.flush();
        // Zero events; the handle carries no Arc, no buffer, no writer —
        // the span above lived entirely on the stack.
        assert_eq!(t.events(), 0);
        assert!(std::mem::size_of::<Tracer>() <= std::mem::size_of::<usize>() * 2);
    }
}
